#include "schema/yaml_lite.hpp"

#include <cassert>

#include "support/strings.hpp"

namespace llhsc::schema::yaml {

namespace {

struct Line {
  int indent = 0;
  std::string content;  // comment-stripped, rtrimmed
  uint32_t number = 0;
};

// Strips '#' comments outside quotes.
std::string strip_comment(std::string_view s) {
  bool in_quotes = false;
  char quote = '\0';
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (in_quotes) {
      if (c == quote) in_quotes = false;
    } else if (c == '"' || c == '\'') {
      in_quotes = true;
      quote = c;
    } else if (c == '#') {
      return std::string(s.substr(0, i));
    }
  }
  return std::string(s);
}

std::vector<Line> split_lines(std::string_view text) {
  std::vector<Line> out;
  uint32_t number = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    std::string_view raw = text.substr(
        start, nl == std::string_view::npos ? std::string_view::npos
                                            : nl - start);
    ++number;
    std::string stripped = strip_comment(raw);
    std::string_view trimmed = support::trim(stripped);
    if (!trimmed.empty()) {
      int indent = 0;
      for (char c : stripped) {
        if (c == ' ') {
          ++indent;
        } else {
          break;
        }
      }
      out.push_back(Line{indent, std::string(trimmed), number});
    }
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  return out;
}

std::string unquote(std::string_view s) {
  s = support::trim(s);
  if (s.size() >= 2 &&
      ((s.front() == '"' && s.back() == '"') ||
       (s.front() == '\'' && s.back() == '\''))) {
    return std::string(s.substr(1, s.size() - 2));
  }
  return std::string(s);
}

class Parser {
 public:
  Parser(std::vector<Line> lines, support::DiagnosticEngine& diags)
      : lines_(std::move(lines)), diags_(&diags) {}

  std::optional<Value> parse_document() {
    if (lines_.empty()) return Value{};  // empty scalar document
    Value v = parse_block(lines_[0].indent);
    if (pos_ < lines_.size()) {
      error("unexpected content (inconsistent indentation?)");
      return std::nullopt;
    }
    if (failed_) return std::nullopt;
    return v;
  }

 private:
  void error(const std::string& msg) {
    if (!failed_) {
      uint32_t line = pos_ < lines_.size() ? lines_[pos_].number : 0;
      diags_->error("yaml-parse", msg,
                    support::SourceLocation{"<yaml>", line, 0});
    }
    failed_ = true;
  }

  // Parses the block starting at the current position with the given indent.
  Value parse_block(int indent) {
    if (pos_ >= lines_.size()) return Value{};
    const Line& first = lines_[pos_];
    if (first.content.rfind("- ", 0) == 0 || first.content == "-") {
      return parse_seq(indent);
    }
    return parse_map(indent);
  }

  Value parse_map(int indent) {
    Value v;
    v.kind = Value::Kind::kMap;
    while (pos_ < lines_.size() && !failed_) {
      const Line& line = lines_[pos_];
      if (line.indent < indent) break;
      if (line.indent > indent) {
        error("unexpected indentation");
        break;
      }
      if (line.content.rfind("- ", 0) == 0 || line.content == "-") break;
      size_t colon = find_key_colon(line.content);
      if (colon == std::string::npos) {
        error("expected 'key: value' in map");
        break;
      }
      std::string key = unquote(line.content.substr(0, colon));
      std::string rest(support::trim(
          std::string_view(line.content).substr(colon + 1)));
      ++pos_;
      if (!rest.empty()) {
        Value scalar;
        scalar.scalar = unquote(rest);
        v.map.emplace_back(std::move(key), std::move(scalar));
      } else {
        // Nested block (or empty value).
        if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
          v.map.emplace_back(std::move(key), parse_block(lines_[pos_].indent));
        } else {
          v.map.emplace_back(std::move(key), Value{});
        }
      }
    }
    return v;
  }

  Value parse_seq(int indent) {
    Value v;
    v.kind = Value::Kind::kSeq;
    while (pos_ < lines_.size() && !failed_) {
      const Line& line = lines_[pos_];
      if (line.indent != indent ||
          !(line.content.rfind("- ", 0) == 0 || line.content == "-")) {
        if (line.indent >= indent && v.seq.empty()) {
          error("expected '- item' in sequence");
        }
        break;
      }
      std::string rest(
          support::trim(std::string_view(line.content).substr(1)));
      if (rest.empty()) {
        // "-" alone: nested block on following lines.
        ++pos_;
        if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
          v.seq.push_back(parse_block(lines_[pos_].indent));
        } else {
          v.seq.push_back(Value{});
        }
        continue;
      }
      size_t colon = find_key_colon(rest);
      if (colon != std::string::npos) {
        // "- key: value" opens an inline map item; continuation keys are
        // indented past the dash.
        int item_indent = line.indent + 2;
        // Rewrite the current line as the first key of the item and reparse.
        lines_[pos_].content = rest;
        lines_[pos_].indent = item_indent;
        v.seq.push_back(parse_map(item_indent));
      } else {
        Value scalar;
        scalar.scalar = unquote(rest);
        v.seq.push_back(std::move(scalar));
        ++pos_;
      }
    }
    return v;
  }

  // Finds the colon separating key from value, respecting quotes.
  static size_t find_key_colon(std::string_view s) {
    bool in_quotes = false;
    char quote = '\0';
    for (size_t i = 0; i < s.size(); ++i) {
      char c = s[i];
      if (in_quotes) {
        if (c == quote) in_quotes = false;
      } else if (c == '"' || c == '\'') {
        in_quotes = true;
        quote = c;
      } else if (c == ':' && (i + 1 == s.size() || s[i + 1] == ' ')) {
        return i;
      }
    }
    return std::string::npos;
  }

  std::vector<Line> lines_;
  support::DiagnosticEngine* diags_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace

const Value* Value::get(std::string_view key) const {
  if (kind != Kind::kMap) return nullptr;
  for (const auto& [k, v] : map) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::optional<std::string> Value::as_string() const {
  if (kind != Kind::kScalar) return std::nullopt;
  return scalar;
}

std::optional<uint64_t> Value::as_integer() const {
  if (kind != Kind::kScalar) return std::nullopt;
  return support::parse_integer(scalar);
}

std::optional<bool> Value::as_bool() const {
  if (kind != Kind::kScalar) return std::nullopt;
  if (scalar == "true" || scalar == "yes") return true;
  if (scalar == "false" || scalar == "no") return false;
  return std::nullopt;
}

std::optional<Value> parse(std::string_view text,
                           support::DiagnosticEngine& diags) {
  Parser p(split_lines(text), diags);
  return p.parse_document();
}

std::vector<Value> parse_stream(std::string_view text,
                                support::DiagnosticEngine& diags) {
  std::vector<Value> docs;
  size_t start = 0;
  while (start <= text.size()) {
    size_t sep = text.find("\n---", start);
    std::string_view doc = text.substr(
        start, sep == std::string_view::npos ? std::string_view::npos
                                             : sep - start);
    // Drop a leading "---" line.
    std::string_view d = doc;
    if (support::starts_with(support::trim(d), "---")) {
      size_t nl = d.find('\n');
      d = nl == std::string_view::npos ? std::string_view{} : d.substr(nl + 1);
    }
    if (!support::trim(d).empty()) {
      if (auto v = parse(d, diags)) docs.push_back(std::move(*v));
    }
    if (sep == std::string_view::npos) break;
    start = sep + 1;  // position at the "---" line; loop strips it
  }
  return docs;
}

}  // namespace llhsc::schema::yaml

namespace llhsc::schema {

namespace {

PropertyType parse_type(const std::string& s) {
  if (s == "string") return PropertyType::kString;
  if (s == "string-list" || s == "stringlist") return PropertyType::kStringList;
  if (s == "cells" || s == "uint32-array") return PropertyType::kCells;
  if (s == "bool" || s == "flag") return PropertyType::kBool;
  if (s == "bytes" || s == "uint8-array") return PropertyType::kBytes;
  return PropertyType::kAny;
}

PropertySchema load_property(const std::string& name, const yaml::Value& v) {
  PropertySchema p;
  p.name = name;
  if (const auto* t = v.get("type")) {
    if (auto s = t->as_string()) p.type = parse_type(*s);
  }
  if (const auto* c = v.get("const")) {
    if (auto iv = c->as_integer()) {
      p.const_cell = *iv;
    } else if (auto s = c->as_string()) {
      p.const_string = *s;
    }
  }
  if (const auto* e = v.get("enum")) {
    if (e->is_seq()) {
      for (const auto& item : e->seq) {
        if (auto iv = item.as_integer()) {
          p.enum_cells.push_back(*iv);
        } else if (auto s = item.as_string()) {
          p.enum_strings.push_back(*s);
        }
      }
    }
  }
  if (const auto* m = v.get("minItems")) {
    if (auto iv = m->as_integer()) p.min_items = static_cast<uint32_t>(*iv);
  }
  if (const auto* m = v.get("maxItems")) {
    if (auto iv = m->as_integer()) p.max_items = static_cast<uint32_t>(*iv);
  }
  if (const auto* pat = v.get("pattern")) {
    if (auto s = pat->as_string()) p.pattern = *s;
  }
  if (const auto* m = v.get("minimum")) {
    if (auto iv = m->as_integer()) p.minimum = *iv;
  }
  if (const auto* m = v.get("maximum")) {
    if (auto iv = m->as_integer()) p.maximum = *iv;
  }
  return p;
}

}  // namespace

std::optional<NodeSchema> load_schema_yaml(std::string_view text,
                                           support::DiagnosticEngine& diags) {
  auto doc = yaml::parse(text, diags);
  if (!doc || !doc->is_map()) {
    diags.error("schema-load", "schema document is not a map");
    return std::nullopt;
  }
  NodeSchema schema;
  if (const auto* id = doc->get("$id")) {
    schema.id = id->as_string().value_or("");
  }
  if (schema.id.empty()) {
    diags.error("schema-load", "schema is missing $id");
    return std::nullopt;
  }
  if (const auto* d = doc->get("description")) {
    schema.description = d->as_string().value_or("");
  }
  if (const auto* sel = doc->get("select")) {
    if (const auto* nn = sel->get("nodeName")) {
      schema.select.node_name_pattern = nn->as_string().value_or("");
    }
    if (const auto* comp = sel->get("compatible")) {
      if (comp->is_seq()) {
        for (const auto& item : comp->seq) {
          if (auto s = item.as_string()) schema.select.compatibles.push_back(*s);
        }
      } else if (auto s = comp->as_string()) {
        schema.select.compatibles.push_back(*s);
      }
    }
  }
  if (const auto* props = doc->get("properties")) {
    if (props->is_map()) {
      for (const auto& [name, v] : props->map) {
        schema.properties.push_back(load_property(name, v));
      }
    }
  }
  if (const auto* req = doc->get("required")) {
    if (req->is_seq()) {
      for (const auto& item : req->seq) {
        if (auto s = item.as_string()) schema.required.push_back(*s);
      }
    }
  }
  if (const auto* ap = doc->get("additionalProperties")) {
    schema.additional_properties = ap->as_bool().value_or(true);
  }
  if (const auto* rs = doc->get("regShapeCheck")) {
    schema.check_reg_shape = rs->as_bool().value_or(true);
  }
  if (const auto* children = doc->get("children")) {
    if (children->is_seq()) {
      for (const auto& item : children->seq) {
        ChildRule rule;
        if (const auto* pat = item.get("pattern")) {
          rule.name_pattern = pat->as_string().value_or("");
        }
        if (const auto* sid = item.get("schema")) {
          rule.schema_id = sid->as_string().value_or("");
        }
        if (const auto* mc = item.get("minCount")) {
          if (auto iv = mc->as_integer()) {
            rule.min_count = static_cast<uint32_t>(*iv);
          }
        }
        if (const auto* mc = item.get("maxCount")) {
          if (auto iv = mc->as_integer()) {
            rule.max_count = static_cast<uint32_t>(*iv);
          }
        }
        schema.child_rules.push_back(std::move(rule));
      }
    }
  }
  return schema;
}

size_t load_schema_stream(std::string_view text, SchemaSet& out,
                          support::DiagnosticEngine& diags) {
  size_t loaded = 0;
  // Split on document markers and feed each to load_schema_yaml so that a
  // broken document does not take down its siblings.
  size_t start = 0;
  while (start <= text.size()) {
    size_t sep = text.find("\n---", start);
    std::string_view doc = text.substr(
        start, sep == std::string_view::npos ? std::string_view::npos
                                             : sep - start);
    std::string_view d = doc;
    if (support::starts_with(support::trim(d), "---")) {
      size_t nl = d.find('\n');
      d = nl == std::string_view::npos ? std::string_view{} : d.substr(nl + 1);
    }
    if (!support::trim(d).empty()) {
      if (auto schema = load_schema_yaml(d, diags)) {
        out.add(std::move(*schema));
        ++loaded;
      }
    }
    if (sep == std::string_view::npos) break;
    start = sep + 1;
  }
  return loaded;
}

}  // namespace llhsc::schema

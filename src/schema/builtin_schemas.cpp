#include "schema/builtin_schemas.hpp"

namespace llhsc::schema {

NodeSchema memory_schema() {
  PropertySchema device_type;
  device_type.name = "device_type";
  device_type.type = PropertyType::kString;
  device_type.const_string = "memory";

  PropertySchema reg;
  reg.name = "reg";
  reg.type = PropertyType::kCells;
  reg.min_items = 1;
  reg.max_items = 1024;

  return SchemaBuilder("memory")
      .description("Common memory node (paper Listing 5)")
      .select_node_name("memory@*")
      .property(std::move(device_type))
      .property(std::move(reg))
      .require("device_type")
      .require("reg")
      .build();
}

NodeSchema cpus_schema() {
  PropertySchema ac;
  ac.name = "#address-cells";
  ac.type = PropertyType::kCells;
  ac.const_cell = 1;

  PropertySchema sc;
  sc.name = "#size-cells";
  sc.type = PropertyType::kCells;
  sc.const_cell = 0;

  ChildRule cpu_children;
  cpu_children.name_pattern = "cpu@*";
  cpu_children.schema_id = "cpu";
  cpu_children.min_count = 1;

  return SchemaBuilder("cpus")
      .description("CPU cluster container")
      .select_node_name("cpus")
      .property(std::move(ac))
      .property(std::move(sc))
      .require("#address-cells")
      .require("#size-cells")
      .child(std::move(cpu_children))
      .no_reg_shape_check()
      .build();
}

NodeSchema cpu_schema() {
  PropertySchema compatible;
  compatible.name = "compatible";
  compatible.type = PropertyType::kString;
  compatible.enum_strings = {"arm,cortex-a53", "arm,cortex-a72", "riscv"};

  PropertySchema device_type;
  device_type.name = "device_type";
  device_type.type = PropertyType::kString;
  device_type.const_string = "cpu";

  PropertySchema enable_method;
  enable_method.name = "enable-method";
  enable_method.type = PropertyType::kString;
  enable_method.enum_strings = {"psci", "spin-table"};

  PropertySchema reg;
  reg.name = "reg";
  reg.type = PropertyType::kCells;
  reg.min_items = 1;
  reg.max_items = 1;

  return SchemaBuilder("cpu")
      .description("Processor core binding (paper Listing 2)")
      .select_node_name("cpu@*")
      .property(std::move(compatible))
      .property(std::move(device_type))
      .property(std::move(enable_method))
      .property(std::move(reg))
      .require("compatible")
      .require("device_type")
      .require("reg")
      // cpu reg is a core index, not an address range, so the parent-derived
      // reg shape rule does not apply.
      .no_reg_shape_check()
      .build();
}

NodeSchema uart_schema() {
  PropertySchema compatible;
  compatible.name = "compatible";
  compatible.type = PropertyType::kString;
  compatible.enum_strings = {"ns16550a", "arm,pl011", "sifive,uart0"};

  PropertySchema reg;
  reg.name = "reg";
  reg.type = PropertyType::kCells;
  reg.min_items = 1;
  reg.max_items = 1;

  return SchemaBuilder("uart")
      .description("Serial I/O port")
      .select_node_name("uart@*")
      .select_compatible("ns16550a")
      .select_compatible("arm,pl011")
      .property(std::move(compatible))
      .property(std::move(reg))
      .require("compatible")
      .require("reg")
      .build();
}

NodeSchema veth_schema() {
  PropertySchema compatible;
  compatible.name = "compatible";
  compatible.type = PropertyType::kString;
  compatible.const_string = "veth";

  PropertySchema reg;
  reg.name = "reg";
  reg.type = PropertyType::kCells;
  reg.min_items = 1;
  reg.max_items = 1;

  PropertySchema id;
  id.name = "id";
  id.type = PropertyType::kCells;
  id.enum_cells = {0, 1, 2, 3};

  return SchemaBuilder("veth")
      .description("Virtual Ethernet device for VM communication (paper "
                   "Listing 4)")
      .select_node_name("veth*")
      .select_compatible("veth")
      .property(std::move(compatible))
      .property(std::move(reg))
      .property(std::move(id))
      .require("compatible")
      .require("reg")
      .require("id")
      .build();
}

SchemaSet builtin_schemas() {
  SchemaSet set;
  set.add(memory_schema());
  set.add(cpus_schema());
  set.add(cpu_schema());
  set.add(uart_schema());
  set.add(veth_schema());
  return set;
}

const char* builtin_schemas_yaml() {
  return R"yaml($id: memory
description: Common memory node (paper Listing 5)
select:
  nodeName: "memory@*"
properties:
  device_type:
    type: string
    const: memory
  reg:
    type: cells
    minItems: 1
    maxItems: 1024
required:
  - device_type
  - reg
---
$id: cpus
description: CPU cluster container
select:
  nodeName: cpus
properties:
  "#address-cells":
    type: cells
    const: 1
  "#size-cells":
    type: cells
    const: 0
required:
  - "#address-cells"
  - "#size-cells"
regShapeCheck: false
children:
  - pattern: "cpu@*"
    schema: cpu
    minCount: 1
---
$id: cpu
description: Processor core binding (paper Listing 2)
select:
  nodeName: "cpu@*"
properties:
  compatible:
    type: string
    enum:
      - arm,cortex-a53
      - arm,cortex-a72
      - riscv
  device_type:
    type: string
    const: cpu
  enable-method:
    type: string
    enum:
      - psci
      - spin-table
  reg:
    type: cells
    minItems: 1
    maxItems: 1
required:
  - compatible
  - device_type
  - reg
regShapeCheck: false
---
$id: uart
description: Serial I/O port
select:
  nodeName: "uart@*"
  compatible:
    - ns16550a
    - arm,pl011
properties:
  compatible:
    type: string
    enum:
      - ns16550a
      - arm,pl011
      - sifive,uart0
  reg:
    type: cells
    minItems: 1
    maxItems: 1
required:
  - compatible
  - reg
---
$id: veth
description: Virtual Ethernet device for VM communication (paper Listing 4)
select:
  nodeName: "veth*"
  compatible: veth
properties:
  compatible:
    type: string
    const: veth
  reg:
    type: cells
    minItems: 1
    maxItems: 1
  id:
    type: cells
    enum:
      - 0
      - 1
      - 2
      - 3
required:
  - compatible
  - reg
  - id
)yaml";
}

}  // namespace llhsc::schema

// A small YAML-subset parser, sufficient for dt-schema-style binding files
// (the paper's Listing 5). Supported: nested block maps, block sequences of
// scalars and of maps ("- key: value" openers), quoted and plain scalars,
// '#' comments, and multi-document streams separated by "---".
// Not supported (by design): anchors, aliases, flow collections, multi-line
// scalars, tags.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "schema/schema.hpp"
#include "support/diagnostics.hpp"

namespace llhsc::schema::yaml {

/// Parsed YAML value. A node is exactly one of scalar / map / sequence.
struct Value {
  enum class Kind : uint8_t { kScalar, kMap, kSeq };
  Kind kind = Kind::kScalar;
  std::string scalar;
  std::vector<std::pair<std::string, Value>> map;
  std::vector<Value> seq;

  [[nodiscard]] bool is_scalar() const { return kind == Kind::kScalar; }
  [[nodiscard]] bool is_map() const { return kind == Kind::kMap; }
  [[nodiscard]] bool is_seq() const { return kind == Kind::kSeq; }

  /// Map lookup; nullptr when absent or not a map.
  [[nodiscard]] const Value* get(std::string_view key) const;
  /// Scalar accessors with shape checking.
  [[nodiscard]] std::optional<std::string> as_string() const;
  [[nodiscard]] std::optional<uint64_t> as_integer() const;
  [[nodiscard]] std::optional<bool> as_bool() const;
};

/// Parses one document. Returns nullopt on structural errors (reported via
/// diags).
[[nodiscard]] std::optional<Value> parse(std::string_view text,
                                         support::DiagnosticEngine& diags);

/// Splits a "---"-separated stream and parses each document.
[[nodiscard]] std::vector<Value> parse_stream(std::string_view text,
                                              support::DiagnosticEngine& diags);

}  // namespace llhsc::schema::yaml

namespace llhsc::schema {

/// Loads one binding schema from its YAML form. Recognised keys:
///   $id, description, select.nodeName, select.compatible (scalar or list),
///   properties.<name>.{type,const,enum,minItems,maxItems,pattern},
///   required (list), additionalProperties (bool), regShapeCheck (bool),
///   children (list of {pattern, schema, minCount, maxCount}).
[[nodiscard]] std::optional<NodeSchema> load_schema_yaml(
    std::string_view text, support::DiagnosticEngine& diags);

/// Loads a whole "---"-separated schema stream into `out`. Returns the number
/// of schemas loaded.
size_t load_schema_stream(std::string_view text, SchemaSet& out,
                          support::DiagnosticEngine& diags);

}  // namespace llhsc::schema

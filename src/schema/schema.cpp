#include "schema/schema.hpp"

#include "support/strings.hpp"

namespace llhsc::schema {

std::string_view to_string(PropertyType t) {
  switch (t) {
    case PropertyType::kAny: return "any";
    case PropertyType::kString: return "string";
    case PropertyType::kStringList: return "string-list";
    case PropertyType::kCells: return "cells";
    case PropertyType::kBool: return "bool";
    case PropertyType::kBytes: return "bytes";
  }
  return "unknown";
}

bool Selector::matches(const dts::Node& node) const {
  if (!node_name_pattern.empty() &&
      (support::glob_match(node_name_pattern, node.name()) ||
       support::glob_match(node_name_pattern, std::string(node.base_name())))) {
    return true;
  }
  if (!compatibles.empty()) {
    const dts::Property* compat = node.find_property("compatible");
    if (compat != nullptr) {
      auto list = compat->as_string_list();
      if (!list) {
        if (auto one = compat->as_string()) list = {{*one}};
      }
      if (list) {
        for (const std::string& node_compat : *list) {
          for (const std::string& wanted : compatibles) {
            if (node_compat == wanted) return true;
          }
        }
      }
    }
  }
  return false;
}

const PropertySchema* NodeSchema::find_property(std::string_view name) const {
  for (const PropertySchema& p : properties) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

void SchemaSet::add(NodeSchema schema) { schemas_.push_back(std::move(schema)); }

const NodeSchema* SchemaSet::find(std::string_view id) const {
  for (const NodeSchema& s : schemas_) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

std::vector<const NodeSchema*> SchemaSet::match(const dts::Node& node) const {
  std::vector<const NodeSchema*> out;
  for (const NodeSchema& s : schemas_) {
    if (s.select.matches(node)) out.push_back(&s);
  }
  return out;
}

}  // namespace llhsc::schema

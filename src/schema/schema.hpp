// dt-schema substrate: an in-memory model of DeviceTree binding schemas
// covering the constraint classes the paper uses (Listing 5 and §IV-B):
// const values, enums, required properties, item-count bounds on `reg`,
// type expectations, name patterns, and the derived reg-shape rule
// (#address-cells + #size-cells divides the reg cell count).
//
// Schemas can be built programmatically (SchemaBuilder), loaded from a YAML
// subset (yaml_lite.hpp) or taken from the builtin set mirroring the paper's
// running example (builtin_schemas.hpp). The constraint *encoding* into
// first-order logic lives in checkers/syntactic.hpp — this module is pure
// data + matching.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dts/tree.hpp"

namespace llhsc::schema {

enum class PropertyType : uint8_t {
  kAny,
  kString,
  kStringList,
  kCells,
  kBool,
  kBytes,
};

[[nodiscard]] std::string_view to_string(PropertyType t);

/// Constraints on one property within a binding.
struct PropertySchema {
  std::string name;
  PropertyType type = PropertyType::kAny;
  /// `const:` — exact required string value.
  std::optional<std::string> const_string;
  /// `const:` — exact required single-cell value.
  std::optional<uint64_t> const_cell;
  /// `enum:` — allowed string values (empty = unconstrained).
  std::vector<std::string> enum_strings;
  /// `enum:` — allowed single-cell values.
  std::vector<uint64_t> enum_cells;
  /// `minItems:` / `maxItems:` — bounds on the number of reg-style entries,
  /// i.e. cell count divided by the entry stride (see SyntacticChecker).
  std::optional<uint32_t> min_items;
  std::optional<uint32_t> max_items;
  /// `pattern:` — glob the string value must match.
  std::optional<std::string> pattern;
  /// `minimum:` / `maximum:` — numeric bounds every cell value must satisfy
  /// (dt-schema uses these for manufacturer-given ranges: clock frequencies,
  /// register windows — paper §II-A).
  std::optional<uint64_t> minimum;
  std::optional<uint64_t> maximum;
};

/// How a schema decides it applies to a node (dt-schema `select`).
struct Selector {
  /// Glob over the node name ("memory@*"). Empty = not name-selected.
  std::string node_name_pattern;
  /// Any of these strings appearing in the node's `compatible` list selects
  /// the schema. Empty = not compatible-selected.
  std::vector<std::string> compatibles;

  [[nodiscard]] bool matches(const dts::Node& node) const;
};

/// Constraints on child nodes of a binding ("a cpus node contains cpu@N
/// children and nothing else").
struct ChildRule {
  /// Glob the child's name must match to be governed by this rule.
  std::string name_pattern;
  /// Schema id the matching children must additionally satisfy ("" = none).
  std::string schema_id;
  std::optional<uint32_t> min_count;
  std::optional<uint32_t> max_count;
};

/// One binding schema (one dt-schema YAML document).
struct NodeSchema {
  std::string id;           // stable identifier, e.g. "memory" or "arm,cpu"
  std::string description;
  Selector select;
  std::vector<PropertySchema> properties;
  std::vector<std::string> required;
  std::vector<ChildRule> child_rules;
  /// When false, properties not listed in `properties` are violations
  /// (dt-schema additionalProperties: false).
  bool additional_properties = true;
  /// Check that the reg cell count is a positive multiple of the parent's
  /// (#address-cells + #size-cells) — the dt-schema structural rule from
  /// §I-A of the paper.
  bool check_reg_shape = true;

  [[nodiscard]] const PropertySchema* find_property(std::string_view name) const;
};

/// A collection of schemas with node matching.
class SchemaSet {
 public:
  void add(NodeSchema schema);
  [[nodiscard]] const std::vector<NodeSchema>& schemas() const { return schemas_; }
  [[nodiscard]] const NodeSchema* find(std::string_view id) const;

  /// All schemas whose selector matches the node (dt-schema applies every
  /// matching document).
  [[nodiscard]] std::vector<const NodeSchema*> match(const dts::Node& node) const;

  [[nodiscard]] size_t size() const { return schemas_.size(); }

 private:
  std::vector<NodeSchema> schemas_;
};

/// Fluent construction for tests and builtin schemas.
class SchemaBuilder {
 public:
  explicit SchemaBuilder(std::string id) { schema_.id = std::move(id); }

  SchemaBuilder& description(std::string d) {
    schema_.description = std::move(d);
    return *this;
  }
  SchemaBuilder& select_node_name(std::string pattern) {
    schema_.select.node_name_pattern = std::move(pattern);
    return *this;
  }
  SchemaBuilder& select_compatible(std::string compat) {
    schema_.select.compatibles.push_back(std::move(compat));
    return *this;
  }
  SchemaBuilder& property(PropertySchema p) {
    schema_.properties.push_back(std::move(p));
    return *this;
  }
  SchemaBuilder& require(std::string name) {
    schema_.required.push_back(std::move(name));
    return *this;
  }
  SchemaBuilder& child(ChildRule rule) {
    schema_.child_rules.push_back(std::move(rule));
    return *this;
  }
  SchemaBuilder& no_additional_properties() {
    schema_.additional_properties = false;
    return *this;
  }
  SchemaBuilder& no_reg_shape_check() {
    schema_.check_reg_shape = false;
    return *this;
  }
  [[nodiscard]] NodeSchema build() { return std::move(schema_); }

 private:
  NodeSchema schema_;
};

}  // namespace llhsc::schema

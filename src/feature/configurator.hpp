// Interactive configuration with decision propagation — the paper's Fig. 1
// workflow: the user selects/deselects features one at a time; after every
// decision the solver computes which undecided features became *forced*
// (must be selected: shown pre-ticked and grayed out) or *forbidden* (cannot
// be selected: grayed out), so "a set of features that violates the
// constraints is never selected by the user" (§IV-A).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "feature/analysis.hpp"

namespace llhsc::feature {

enum class DecisionState : uint8_t {
  kOpen,        // user may still choose either way
  kSelected,    // user decision
  kDeselected,  // user decision
  kForced,      // implied selected by the model + prior decisions
  kForbidden,   // implied deselected
};

[[nodiscard]] std::string_view to_string(DecisionState s);

class Configurator {
 public:
  /// The model must outlive the configurator.
  Configurator(const FeatureModel& model, smt::Backend backend);

  /// Applies a user decision. Returns false (state unchanged) when the
  /// decision contradicts the model + earlier decisions, or targets a
  /// feature that is already forced/forbidden the other way.
  bool select(FeatureId f);
  bool deselect(FeatureId f);
  /// Withdraws a user decision (forced/forbidden states cannot be undone
  /// directly — they follow from other decisions).
  bool retract(FeatureId f);

  [[nodiscard]] DecisionState state(FeatureId f) const {
    return states_.at(f.index);
  }
  /// True when every feature is decided (user or implied) — the
  /// configuration denotes exactly one product.
  [[nodiscard]] bool complete() const;
  /// The selection so far (selected + forced), usable once complete().
  [[nodiscard]] Selection current_selection() const;
  /// Remaining products consistent with the decisions (capped).
  [[nodiscard]] uint64_t remaining_products(uint64_t cap = 1u << 20);

  [[nodiscard]] const FeatureModel& model() const { return *model_; }

 private:
  bool decide(FeatureId f, bool value);
  /// Re-derives forced/forbidden for all non-user-decided features.
  void propagate();
  [[nodiscard]] std::vector<logic::Formula> decision_assumptions() const;

  const FeatureModel* model_;
  smt::Solver solver_;
  Encoding encoding_;
  std::vector<DecisionState> states_;
  std::vector<bool> user_decided_;
};

}  // namespace llhsc::feature

// Automated feature-model analyses (paper §II-B): encoding into
// propositional logic, void detection, product validity, product counting
// and enumeration, dead/core feature detection. All analyses run through the
// smt::Solver facade, so both the builtin SAT backend and Z3 serve them.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "feature/model.hpp"
#include "smt/solver.hpp"

namespace llhsc::feature {

/// The propositional encoding of one model inside a solver: one Boolean
/// variable per feature plus the semantic axioms.
struct Encoding {
  /// variables[i] is the solver variable for FeatureId{i}.
  std::vector<logic::Formula> variables;
  /// The conjunction of all axioms (already asserted unless `assert_axioms`
  /// was false).
  logic::Formula axioms;
};

/// Standard FODA -> propositional logic translation:
///   root; child -> parent; AND-mandatory child <-> parent;
///   OR parent -> any child; XOR parent -> exactly-one child;
///   requires lhs -> rhs; excludes !(lhs & rhs).
/// `prefix` disambiguates variable names when the same model is instantiated
/// several times in one solver (multi-VM encoding).
Encoding encode(const FeatureModel& model, smt::Solver& solver,
                const std::string& prefix = "", bool assert_axioms = true);

/// A product: the set of selected features (indexed by FeatureId).
using Selection = std::vector<bool>;

/// True when the model admits no product at all.
[[nodiscard]] bool is_void(const FeatureModel& model, smt::Solver& solver);

/// Checks one concrete selection against the model with the solver.
[[nodiscard]] bool is_valid_product(const FeatureModel& model,
                                    smt::Solver& solver,
                                    const Selection& selection);

/// Counts all valid products (up to `max_products`). Enumeration is blocking-
/// clause based and leaves the solver state clean (push/pop).
uint64_t count_products(const FeatureModel& model, smt::Solver& solver,
                        uint64_t max_products = UINT64_MAX);

/// Enumerates valid products; stop early by returning false.
uint64_t enumerate_products(const FeatureModel& model, smt::Solver& solver,
                            const std::function<bool(const Selection&)>& on_product,
                            uint64_t max_products = UINT64_MAX);

/// Same enumeration, but reports whether `max_products` cut it short:
/// `*capped` is set iff the cap was reached with at least one further valid
/// product left unenumerated (decided by one extra solver check, so a model
/// with exactly `max_products` products is not flagged). Products stream
/// through the callback one at a time — nothing is materialised, so a 2^20
/// family costs one Selection of working memory, not 2^20.
uint64_t enumerate_products(const FeatureModel& model, smt::Solver& solver,
                            const std::function<bool(const Selection&)>& on_product,
                            uint64_t max_products, bool* capped);

/// Features that can never be selected in any product.
[[nodiscard]] std::vector<FeatureId> dead_features(const FeatureModel& model,
                                                   smt::Solver& solver);

/// Features present in every product.
[[nodiscard]] std::vector<FeatureId> core_features(const FeatureModel& model,
                                                   smt::Solver& solver);

/// Optional features (not marked mandatory) that nevertheless appear in
/// every product — usually a modelling smell (over-constrained cross rules).
[[nodiscard]] std::vector<FeatureId> false_optional_features(
    const FeatureModel& model, smt::Solver& solver);

/// For an invalid selection: the subset of feature decisions (selected or
/// deselected) that conflicts with the model — an unsat core mapped back to
/// features. Empty when the selection is actually valid. The core is not
/// guaranteed minimal but always sufficient.
[[nodiscard]] std::vector<FeatureId> explain_invalid_product(
    const FeatureModel& model, smt::Solver& solver, const Selection& selection);

/// Builds the feature model of the paper's Fig. 1a: CustomSBC with memory,
/// cpus {cpu@0 XOR cpu@1}, uarts {uart@0, uart@1} OR-group (abstract,
/// optional), vEthernet {veth0 XOR veth1} (abstract, optional), and the
/// cross-constraints veth0 -> cpu@0, veth1 -> cpu@1.
[[nodiscard]] FeatureModel running_example_model();

}  // namespace llhsc::feature

// Feature models (FODA-style) for DeviceTree product lines — paper §II-B.
// A model is a tree of features with AND/OR/XOR child decompositions,
// mandatory/optional/abstract markers, and cross-tree requires/excludes
// constraints. feature::encode (analysis.hpp) translates a model into
// propositional logic over an smt::Solver.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace llhsc::feature {

/// Dense handle into a FeatureModel.
struct FeatureId {
  uint32_t index = UINT32_MAX;
  [[nodiscard]] bool valid() const { return index != UINT32_MAX; }
  friend bool operator==(const FeatureId&, const FeatureId&) = default;
};

/// Decomposition semantics of a feature's children.
enum class GroupKind : uint8_t {
  kAnd,          // children individually mandatory or optional
  kOr,           // at least one child when the parent is selected
  kXor,          // exactly one child when the parent is selected
  kCardinality,  // between group_min and group_max children (FODA [m..k])
};

[[nodiscard]] std::string_view to_string(GroupKind k);

struct Feature {
  std::string name;
  FeatureId parent;                 // invalid for the root
  GroupKind group = GroupKind::kAnd;  // decomposition of this feature's children
  uint32_t group_min = 0;           // kCardinality bounds
  uint32_t group_max = 0;
  bool mandatory = false;           // meaningful in kAnd groups
  bool abstract_feature = false;    // structural only; no artifact mapped
  std::vector<FeatureId> children;
};

/// Cross-tree constraint: `lhs` requires / excludes `rhs`.
struct CrossConstraint {
  enum class Kind : uint8_t { kRequires, kExcludes };
  Kind kind = Kind::kRequires;
  FeatureId lhs;
  FeatureId rhs;
};

class FeatureModel {
 public:
  /// Creates the root feature (always selected in every product).
  FeatureId add_root(std::string name);

  /// Adds a child feature. `mandatory` applies to kAnd-group parents.
  FeatureId add_feature(FeatureId parent, std::string name,
                        bool mandatory = false, bool abstract_feature = false);

  /// Sets the decomposition kind for `feature`'s children.
  void set_group(FeatureId feature, GroupKind kind);
  /// Cardinality decomposition: when `feature` is selected, between `min`
  /// and `max` of its children must be selected.
  void set_group_cardinality(FeatureId feature, uint32_t min, uint32_t max);

  void add_requires(FeatureId lhs, FeatureId rhs);
  void add_excludes(FeatureId lhs, FeatureId rhs);

  [[nodiscard]] FeatureId root() const { return root_; }
  [[nodiscard]] const Feature& feature(FeatureId id) const {
    return features_.at(id.index);
  }
  [[nodiscard]] size_t size() const { return features_.size(); }
  [[nodiscard]] const std::vector<CrossConstraint>& cross_constraints() const {
    return constraints_;
  }

  /// Lookup by name (names are expected unique; returns first match).
  [[nodiscard]] std::optional<FeatureId> find(std::string_view name) const;

  /// All feature ids in insertion order (root first).
  [[nodiscard]] std::vector<FeatureId> all_features() const;

  /// Checks a concrete selection (indexed by FeatureId) against the model
  /// semantics without a solver — used to cross-validate the encoding.
  [[nodiscard]] bool is_consistent_selection(
      const std::vector<bool>& selected) const;

 private:
  std::vector<Feature> features_;
  std::vector<CrossConstraint> constraints_;
  FeatureId root_;
};

}  // namespace llhsc::feature

#include "feature/configurator.hpp"

namespace llhsc::feature {

std::string_view to_string(DecisionState s) {
  switch (s) {
    case DecisionState::kOpen: return "open";
    case DecisionState::kSelected: return "selected";
    case DecisionState::kDeselected: return "deselected";
    case DecisionState::kForced: return "forced";
    case DecisionState::kForbidden: return "forbidden";
  }
  return "unknown";
}

Configurator::Configurator(const FeatureModel& model, smt::Backend backend)
    : model_(&model),
      solver_(backend),
      encoding_(encode(model, solver_)),
      states_(model.size(), DecisionState::kOpen),
      user_decided_(model.size(), false) {
  propagate();  // the root (and everything it forces) starts out forced
}

std::vector<logic::Formula> Configurator::decision_assumptions() const {
  auto& fa = const_cast<smt::Solver&>(solver_).formulas();
  std::vector<logic::Formula> out;
  for (uint32_t i = 0; i < model_->size(); ++i) {
    if (!user_decided_[i]) continue;
    out.push_back(states_[i] == DecisionState::kSelected
                      ? encoding_.variables[i]
                      : fa.mk_not(encoding_.variables[i]));
  }
  return out;
}

bool Configurator::decide(FeatureId f, bool value) {
  if (f.index >= model_->size()) return false;
  DecisionState current = states_[f.index];
  // Implied states can only be "decided" in the agreeing direction (a no-op
  // confirmation); contradictions are rejected.
  if (current == DecisionState::kForced) return value;
  if (current == DecisionState::kForbidden) return !value;
  if (user_decided_[f.index]) {
    return states_[f.index] == (value ? DecisionState::kSelected
                                      : DecisionState::kDeselected);
  }
  // Feasibility: the new decision must keep at least one product reachable.
  auto assumptions = decision_assumptions();
  auto& fa = solver_.formulas();
  assumptions.push_back(value ? encoding_.variables[f.index]
                              : fa.mk_not(encoding_.variables[f.index]));
  if (solver_.check_assuming(assumptions) != smt::CheckResult::kSat) {
    return false;
  }
  states_[f.index] =
      value ? DecisionState::kSelected : DecisionState::kDeselected;
  user_decided_[f.index] = true;
  propagate();
  return true;
}

bool Configurator::select(FeatureId f) { return decide(f, true); }
bool Configurator::deselect(FeatureId f) { return decide(f, false); }

bool Configurator::retract(FeatureId f) {
  if (f.index >= model_->size() || !user_decided_[f.index]) return false;
  user_decided_[f.index] = false;
  states_[f.index] = DecisionState::kOpen;
  propagate();
  return true;
}

void Configurator::propagate() {
  auto base = decision_assumptions();
  auto& fa = solver_.formulas();
  for (uint32_t i = 0; i < model_->size(); ++i) {
    if (user_decided_[i]) continue;
    FeatureId f{i};
    // Can the feature still be selected? Deselected?
    auto with = base;
    with.push_back(encoding_.variables[i]);
    bool can_select = solver_.check_assuming(with) == smt::CheckResult::kSat;
    auto without = base;
    without.push_back(fa.mk_not(encoding_.variables[i]));
    bool can_deselect =
        solver_.check_assuming(without) == smt::CheckResult::kSat;
    if (can_select && can_deselect) {
      states_[i] = DecisionState::kOpen;
    } else if (can_select) {
      states_[i] = DecisionState::kForced;
    } else if (can_deselect) {
      states_[i] = DecisionState::kForbidden;
    } else {
      // Decisions themselves are kept satisfiable by decide(), so this is
      // unreachable; keep the state visible if it ever regresses.
      states_[i] = DecisionState::kForbidden;
    }
    (void)f;
  }
}

bool Configurator::complete() const {
  for (uint32_t i = 0; i < model_->size(); ++i) {
    if (states_[i] == DecisionState::kOpen) return false;
  }
  return true;
}

Selection Configurator::current_selection() const {
  Selection sel(model_->size(), false);
  for (uint32_t i = 0; i < model_->size(); ++i) {
    sel[i] = states_[i] == DecisionState::kSelected ||
             states_[i] == DecisionState::kForced;
  }
  return sel;
}

uint64_t Configurator::remaining_products(uint64_t cap) {
  // Count models of (axioms ^ decisions) projected onto the feature vars.
  auto decisions = decision_assumptions();
  auto& fa = solver_.formulas();
  solver_.push();
  for (logic::Formula d : decisions) solver_.add(d);
  uint64_t count = 0;
  while (count < cap) {
    if (solver_.check() != smt::CheckResult::kSat) break;
    ++count;
    std::vector<logic::Formula> block;
    for (uint32_t i = 0; i < model_->size(); ++i) {
      bool v = solver_.model_bool(encoding_.variables[i]);
      block.push_back(v ? fa.mk_not(encoding_.variables[i])
                        : encoding_.variables[i]);
    }
    solver_.add(fa.mk_or(block));
  }
  solver_.pop();
  return count;
}

}  // namespace llhsc::feature

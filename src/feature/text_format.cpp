#include "feature/text_format.hpp"

#include <sstream>

#include "dts/lexer.hpp"
#include "support/strings.hpp"

namespace llhsc::feature {

namespace {

class ModelParser {
 public:
  ModelParser(std::string_view text, std::string filename,
              support::DiagnosticEngine& diags)
      : lexer_(text, std::move(filename), diags), diags_(&diags) {}

  std::optional<FeatureModel> parse() {
    dts::Token kw = lexer_.next();
    if (kw.kind != dts::TokenKind::kIdent || kw.text != "model") {
      error("expected 'model <name> { ... }'", kw.location);
      return std::nullopt;
    }
    dts::Token name = lexer_.next();
    if (name.kind != dts::TokenKind::kIdent) {
      error("expected model name", name.location);
      return std::nullopt;
    }
    FeatureModel model;
    FeatureId root = model.add_root(name.text.str());
    // Optional root group kind: "model X group xor { ... }".
    if (lexer_.peek().kind == dts::TokenKind::kIdent &&
        lexer_.peek().text == "group") {
      lexer_.next();
      dts::Token kind = lexer_.next();
      if (kind.text == "and") {
        model.set_group(root, GroupKind::kAnd);
      } else if (kind.text == "or") {
        model.set_group(root, GroupKind::kOr);
      } else if (kind.text == "xor") {
        model.set_group(root, GroupKind::kXor);
      } else {
        error("group kind must be and/or/xor", kind.location);
        return std::nullopt;
      }
    }
    if (!expect(dts::TokenKind::kLBrace, "'{' after model name")) {
      return std::nullopt;
    }
    if (!parse_body(model, root)) return std::nullopt;
    // Resolve deferred cross-tree constraints now that every feature exists.
    for (const PendingConstraint& pc : pending_) {
      auto lhs = model.find(pc.lhs);
      auto rhs = model.find(pc.rhs);
      if (!lhs || !rhs) {
        error("constraint references unknown feature '" +
                  (lhs ? pc.rhs : pc.lhs) + "'",
              pc.location);
        return std::nullopt;
      }
      if (pc.requires_kind) {
        model.add_requires(*lhs, *rhs);
      } else {
        model.add_excludes(*lhs, *rhs);
      }
    }
    if (failed_) return std::nullopt;
    return model;
  }

 private:
  struct PendingConstraint {
    std::string lhs;
    std::string rhs;
    bool requires_kind = true;
    support::SourceLocation location;
  };

  void error(const std::string& msg, const support::SourceLocation& loc) {
    diags_->error("fm-parse", msg, loc);
    failed_ = true;
  }

  bool expect(dts::TokenKind kind, const char* what) {
    dts::Token t = lexer_.next();
    if (t.kind != kind) {
      error(std::string("expected ") + what, t.location);
      return false;
    }
    return true;
  }

  /// Parses the body between { } for `parent`'s children.
  bool parse_body(FeatureModel& model, FeatureId parent) {
    while (true) {
      dts::Token t = lexer_.next();
      if (t.kind == dts::TokenKind::kRBrace) return true;
      if (t.kind == dts::TokenKind::kEnd) {
        error("unexpected end of file inside model body", t.location);
        return false;
      }
      if (t.kind != dts::TokenKind::kIdent && t.kind != dts::TokenKind::kInt) {
        error("expected feature name or 'constraint', found '" + t.text + "'",
              t.location);
        return false;
      }
      if (t.text == "constraint") {
        if (!parse_constraint(t.location)) return false;
        continue;
      }
      if (!parse_feature(model, parent, t)) return false;
    }
  }

  /// Parses "[m..k]" after 'group'. The shared lexer folds "..2" into one
  /// identifier token, so accept both "m .. k" and the fused form.
  bool parse_cardinality(std::optional<std::pair<uint32_t, uint32_t>>& out) {
    lexer_.next();  // consume '['
    dts::Token lo = lexer_.next();
    dts::Token dots = lexer_.next();
    uint64_t hi_value = 0;
    bool have_hi = false;
    if (dots.kind == dts::TokenKind::kIdent &&
        dots.text.starts_with("..")) {
      if (dots.text.size() > 2) {
        auto v = support::parse_integer(
            std::string_view(dots.text).substr(2));
        if (v) {
          hi_value = *v;
          have_hi = true;
        }
      }
    } else {
      error("expected '..' in cardinality", dots.location);
      return false;
    }
    if (!have_hi) {
      dts::Token hi = lexer_.next();
      if (hi.kind != dts::TokenKind::kInt) {
        error("expected upper bound in cardinality", hi.location);
        return false;
      }
      hi_value = hi.value;
    }
    dts::Token close = lexer_.next();
    if (lo.kind != dts::TokenKind::kInt ||
        close.kind != dts::TokenKind::kRBracket || lo.value > hi_value) {
      error("expected cardinality of the form [m..k] with m <= k",
            lo.location);
      return false;
    }
    out = {static_cast<uint32_t>(lo.value), static_cast<uint32_t>(hi_value)};
    return true;
  }

  bool parse_feature(FeatureModel& model, FeatureId parent,
                     const dts::Token& name) {
    bool mandatory = false;
    bool abstract_feature = false;
    std::optional<GroupKind> group;
    std::optional<std::pair<uint32_t, uint32_t>> cardinality;
    while (lexer_.peek().kind == dts::TokenKind::kIdent) {
      support::Atom word = lexer_.peek().text;
      if (word == "mandatory") {
        lexer_.next();
        mandatory = true;
      } else if (word == "optional") {
        lexer_.next();
      } else if (word == "abstract") {
        lexer_.next();
        abstract_feature = true;
      } else if (word == "group") {
        lexer_.next();
        if (lexer_.peek().kind == dts::TokenKind::kLBracket) {
          // Cardinality: group [m..k]
          if (!parse_cardinality(cardinality)) return false;
        } else {
          dts::Token kind = lexer_.next();
          if (kind.text == "and") {
            group = GroupKind::kAnd;
          } else if (kind.text == "or") {
            group = GroupKind::kOr;
          } else if (kind.text == "xor") {
            group = GroupKind::kXor;
          } else {
            error("group kind must be and/or/xor or [m..k]", kind.location);
            return false;
          }
        }
      } else {
        error("unknown modifier '" + word + "'", lexer_.peek().location);
        return false;
      }
    }
    FeatureId id = model.add_feature(parent, name.text.str(), mandatory,
                                     abstract_feature);
    if (group) model.set_group(id, *group);
    if (cardinality) {
      model.set_group_cardinality(id, cardinality->first, cardinality->second);
    }
    dts::Token t = lexer_.next();
    if (t.kind == dts::TokenKind::kSemi) return true;
    if (t.kind == dts::TokenKind::kLBrace) return parse_body(model, id);
    error("expected ';' or '{' after feature declaration", t.location);
    return false;
  }

  bool parse_constraint(const support::SourceLocation& loc) {
    dts::Token lhs = lexer_.next();
    dts::Token kind = lexer_.next();
    dts::Token rhs = lexer_.next();
    if (lhs.kind != dts::TokenKind::kIdent ||
        rhs.kind != dts::TokenKind::kIdent ||
        (kind.text != "requires" && kind.text != "excludes")) {
      error("expected 'constraint A requires|excludes B;'", loc);
      return false;
    }
    if (!expect(dts::TokenKind::kSemi, "';' after constraint")) return false;
    pending_.push_back(
        {lhs.text.str(), rhs.text.str(), kind.text == "requires", loc});
    return true;
  }

  dts::Lexer lexer_;
  support::DiagnosticEngine* diags_;
  std::vector<PendingConstraint> pending_;
  bool failed_ = false;
};

void print_feature(std::ostringstream& os, const FeatureModel& model,
                   FeatureId id, int depth) {
  const Feature& f = model.feature(id);
  std::string pad(static_cast<size_t>(depth) * 4, ' ');
  os << pad << f.name;
  if (f.mandatory && id != model.root()) os << " mandatory";
  if (f.abstract_feature) os << " abstract";
  if (!f.children.empty() && f.group == GroupKind::kCardinality) {
    os << " group [" << f.group_min << ".." << f.group_max << "]";
  } else if (!f.children.empty() && f.group != GroupKind::kAnd) {
    os << " group " << to_string(f.group);
  }
  if (f.children.empty()) {
    os << ";\n";
    return;
  }
  os << " {\n";
  for (FeatureId c : f.children) print_feature(os, model, c, depth + 1);
  os << pad << "}\n";
}

}  // namespace

std::optional<FeatureModel> parse_model(std::string_view text,
                                        std::string filename,
                                        support::DiagnosticEngine& diags) {
  ModelParser parser(text, std::move(filename), diags);
  return parser.parse();
}

std::string print_model(const FeatureModel& model) {
  std::ostringstream os;
  const Feature& root = model.feature(model.root());
  os << "model " << root.name;
  if (!root.children.empty() && root.group != GroupKind::kAnd) {
    os << " group " << to_string(root.group);
  }
  os << " {\n";
  for (FeatureId c : root.children) print_feature(os, model, c, 1);
  for (const CrossConstraint& cc : model.cross_constraints()) {
    os << "    constraint " << model.feature(cc.lhs).name << ' '
       << (cc.kind == CrossConstraint::Kind::kRequires ? "requires"
                                                       : "excludes")
       << ' ' << model.feature(cc.rhs).name << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace llhsc::feature

#include "feature/analysis.hpp"

namespace llhsc::feature {

Encoding encode(const FeatureModel& model, smt::Solver& solver,
                const std::string& prefix, bool assert_axioms) {
  auto& fa = solver.formulas();
  Encoding enc;
  enc.variables.reserve(model.size());
  for (uint32_t i = 0; i < model.size(); ++i) {
    enc.variables.push_back(
        solver.bool_var(prefix + model.feature(FeatureId{i}).name));
  }

  std::vector<logic::Formula> axioms;
  // Root is present in every product.
  axioms.push_back(enc.variables[model.root().index]);

  for (uint32_t i = 0; i < model.size(); ++i) {
    const Feature& f = model.feature(FeatureId{i});
    logic::Formula fi = enc.variables[i];
    // Child implies parent.
    if (f.parent.valid()) {
      axioms.push_back(fa.mk_implies(fi, enc.variables[f.parent.index]));
    }
    if (f.children.empty()) continue;
    std::vector<logic::Formula> kids;
    kids.reserve(f.children.size());
    for (FeatureId c : f.children) kids.push_back(enc.variables[c.index]);
    switch (f.group) {
      case GroupKind::kAnd:
        for (FeatureId c : f.children) {
          if (model.feature(c).mandatory) {
            // Mandatory child <-> parent (child -> parent already asserted).
            axioms.push_back(fa.mk_implies(fi, enc.variables[c.index]));
          }
        }
        break;
      case GroupKind::kOr:
        axioms.push_back(fa.mk_implies(fi, fa.mk_or(kids)));
        break;
      case GroupKind::kXor:
        axioms.push_back(fa.mk_implies(fi, fa.mk_exactly_one(kids)));
        break;
      case GroupKind::kCardinality: {
        // Count selected children as a bit-vector sum — both backends
        // understand the resulting atoms (builtin blasts, Z3 goes native).
        auto& bv = solver.bitvectors();
        uint32_t width = 1;
        while ((1u << width) <= kids.size()) ++width;
        logic::BvTerm sum = bv.bv_const(0, width);
        logic::BvTerm one = bv.bv_const(1, width);
        logic::BvTerm zero = bv.bv_const(0, width);
        for (logic::Formula kid : kids) {
          sum = bv.bv_add(sum, bv.bv_ite(kid, one, zero));
        }
        logic::Formula in_range =
            fa.mk_and(bv.uge(sum, bv.bv_const(f.group_min, width)),
                      bv.ule(sum, bv.bv_const(f.group_max, width)));
        axioms.push_back(fa.mk_implies(fi, in_range));
        break;
      }
    }
  }
  for (const CrossConstraint& c : model.cross_constraints()) {
    logic::Formula lhs = enc.variables[c.lhs.index];
    logic::Formula rhs = enc.variables[c.rhs.index];
    if (c.kind == CrossConstraint::Kind::kRequires) {
      axioms.push_back(fa.mk_implies(lhs, rhs));
    } else {
      axioms.push_back(fa.mk_not(fa.mk_and(lhs, rhs)));
    }
  }
  enc.axioms = fa.mk_and(axioms);
  if (assert_axioms) solver.add(enc.axioms);
  return enc;
}

bool is_void(const FeatureModel& model, smt::Solver& solver) {
  solver.push();
  Encoding enc = encode(model, solver);
  bool result = solver.check() == smt::CheckResult::kUnsat;
  solver.pop();
  return result;
}

bool is_valid_product(const FeatureModel& model, smt::Solver& solver,
                      const Selection& selection) {
  if (selection.size() != model.size()) return false;
  solver.push();
  Encoding enc = encode(model, solver);
  auto& fa = solver.formulas();
  for (uint32_t i = 0; i < model.size(); ++i) {
    solver.add(selection[i] ? enc.variables[i]
                            : fa.mk_not(enc.variables[i]));
  }
  bool result = solver.check() == smt::CheckResult::kSat;
  solver.pop();
  return result;
}

uint64_t enumerate_products(
    const FeatureModel& model, smt::Solver& solver,
    const std::function<bool(const Selection&)>& on_product,
    uint64_t max_products) {
  return enumerate_products(model, solver, on_product, max_products, nullptr);
}

uint64_t enumerate_products(
    const FeatureModel& model, smt::Solver& solver,
    const std::function<bool(const Selection&)>& on_product,
    uint64_t max_products, bool* capped) {
  solver.push();
  Encoding enc = encode(model, solver);
  auto& fa = solver.formulas();
  if (capped != nullptr) *capped = false;
  uint64_t found = 0;
  while (found < max_products) {
    if (solver.check() != smt::CheckResult::kSat) break;
    Selection sel(model.size());
    for (uint32_t i = 0; i < model.size(); ++i) {
      sel[i] = solver.model_bool(enc.variables[i]);
    }
    ++found;
    bool keep_going = on_product(sel);
    // Block this product.
    std::vector<logic::Formula> diff;
    diff.reserve(model.size());
    for (uint32_t i = 0; i < model.size(); ++i) {
      diff.push_back(sel[i] ? fa.mk_not(enc.variables[i]) : enc.variables[i]);
    }
    solver.add(fa.mk_or(diff));
    if (!keep_going) break;
  }
  // The cap only counts as tripped when a further product actually exists —
  // one extra check, paid only on the cap boundary.
  if (capped != nullptr && found == max_products &&
      solver.check() == smt::CheckResult::kSat) {
    *capped = true;
  }
  solver.pop();
  return found;
}

uint64_t count_products(const FeatureModel& model, smt::Solver& solver,
                        uint64_t max_products) {
  return enumerate_products(
      model, solver, [](const Selection&) { return true; }, max_products);
}

std::vector<FeatureId> dead_features(const FeatureModel& model,
                                     smt::Solver& solver) {
  solver.push();
  Encoding enc = encode(model, solver);
  std::vector<FeatureId> dead;
  for (uint32_t i = 0; i < model.size(); ++i) {
    std::vector<logic::Formula> assume{enc.variables[i]};
    if (solver.check_assuming(assume) == smt::CheckResult::kUnsat) {
      dead.push_back(FeatureId{i});
    }
  }
  solver.pop();
  return dead;
}

std::vector<FeatureId> core_features(const FeatureModel& model,
                                     smt::Solver& solver) {
  solver.push();
  Encoding enc = encode(model, solver);
  auto& fa = solver.formulas();
  std::vector<FeatureId> core;
  for (uint32_t i = 0; i < model.size(); ++i) {
    std::vector<logic::Formula> assume{fa.mk_not(enc.variables[i])};
    if (solver.check_assuming(assume) == smt::CheckResult::kUnsat) {
      core.push_back(FeatureId{i});
    }
  }
  solver.pop();
  return core;
}

std::vector<FeatureId> false_optional_features(const FeatureModel& model,
                                               smt::Solver& solver) {
  std::vector<FeatureId> out;
  for (FeatureId f : core_features(model, solver)) {
    const Feature& feature = model.feature(f);
    if (!feature.mandatory && f != model.root()) out.push_back(f);
  }
  return out;
}

std::vector<FeatureId> explain_invalid_product(const FeatureModel& model,
                                               smt::Solver& solver,
                                               const Selection& selection) {
  if (selection.size() != model.size()) return {};
  solver.push();
  Encoding enc = encode(model, solver);
  auto& fa = solver.formulas();
  std::vector<logic::Formula> assumptions;
  assumptions.reserve(model.size());
  for (uint32_t i = 0; i < model.size(); ++i) {
    assumptions.push_back(selection[i] ? enc.variables[i]
                                       : fa.mk_not(enc.variables[i]));
  }
  std::vector<FeatureId> out;
  if (solver.check_assuming(assumptions) == smt::CheckResult::kUnsat) {
    std::vector<logic::Formula> core = solver.unsat_core();
    for (uint32_t i = 0; i < model.size(); ++i) {
      for (logic::Formula c : core) {
        if (c == assumptions[i]) {
          out.push_back(FeatureId{i});
          break;
        }
      }
    }
  }
  solver.pop();
  return out;
}

FeatureModel running_example_model() {
  FeatureModel m;
  FeatureId root = m.add_root("CustomSBC");
  m.add_feature(root, "memory", /*mandatory=*/true);

  FeatureId cpus = m.add_feature(root, "cpus", /*mandatory=*/true);
  m.set_group(cpus, GroupKind::kXor);
  FeatureId cpu0 = m.add_feature(cpus, "cpu@0");
  FeatureId cpu1 = m.add_feature(cpus, "cpu@1");

  // Note on Fig. 1a: the text calls both `uarts` and `vEthernet` optional,
  // but the reported product count (12) requires at least one UART in every
  // product (2 cpu choices x 3 non-empty UART subsets x 2 vEthernet choices).
  // Fig. 1b/1c also both include UARTs, and Bao needs a console device, so we
  // model `uarts` as mandatory-abstract with an OR group.
  FeatureId uarts =
      m.add_feature(root, "uarts", /*mandatory=*/true, /*abstract=*/true);
  m.set_group(uarts, GroupKind::kOr);
  m.add_feature(uarts, "uart@20000000");
  m.add_feature(uarts, "uart@30000000");

  FeatureId veth = m.add_feature(root, "vEthernet", /*mandatory=*/false,
                                 /*abstract=*/true);
  m.set_group(veth, GroupKind::kXor);
  FeatureId veth0 = m.add_feature(veth, "veth0");
  FeatureId veth1 = m.add_feature(veth, "veth1");

  // "if veth0 is selected, then cpu@0 must be selected (the same applies to
  // veth1 and cpu@1)" — paper §III-A.
  m.add_requires(veth0, cpu0);
  m.add_requires(veth1, cpu1);
  return m;
}

}  // namespace llhsc::feature

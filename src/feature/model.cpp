#include "feature/model.hpp"

#include <cassert>

namespace llhsc::feature {

std::string_view to_string(GroupKind k) {
  switch (k) {
    case GroupKind::kAnd: return "and";
    case GroupKind::kOr: return "or";
    case GroupKind::kXor: return "xor";
    case GroupKind::kCardinality: return "cardinality";
  }
  return "unknown";
}

FeatureId FeatureModel::add_root(std::string name) {
  assert(features_.empty() && "root must be the first feature");
  Feature f;
  f.name = std::move(name);
  f.mandatory = true;
  features_.push_back(std::move(f));
  root_ = FeatureId{0};
  return root_;
}

FeatureId FeatureModel::add_feature(FeatureId parent, std::string name,
                                    bool mandatory, bool abstract_feature) {
  assert(parent.index < features_.size());
  Feature f;
  f.name = std::move(name);
  f.parent = parent;
  f.mandatory = mandatory;
  f.abstract_feature = abstract_feature;
  FeatureId id{static_cast<uint32_t>(features_.size())};
  features_.push_back(std::move(f));
  features_[parent.index].children.push_back(id);
  return id;
}

void FeatureModel::set_group(FeatureId feature, GroupKind kind) {
  assert(feature.index < features_.size());
  features_[feature.index].group = kind;
}

void FeatureModel::set_group_cardinality(FeatureId feature, uint32_t min,
                                         uint32_t max) {
  assert(feature.index < features_.size());
  assert(min <= max);
  Feature& f = features_[feature.index];
  f.group = GroupKind::kCardinality;
  f.group_min = min;
  f.group_max = max;
}

void FeatureModel::add_requires(FeatureId lhs, FeatureId rhs) {
  constraints_.push_back({CrossConstraint::Kind::kRequires, lhs, rhs});
}

void FeatureModel::add_excludes(FeatureId lhs, FeatureId rhs) {
  constraints_.push_back({CrossConstraint::Kind::kExcludes, lhs, rhs});
}

std::optional<FeatureId> FeatureModel::find(std::string_view name) const {
  for (uint32_t i = 0; i < features_.size(); ++i) {
    if (features_[i].name == name) return FeatureId{i};
  }
  return std::nullopt;
}

std::vector<FeatureId> FeatureModel::all_features() const {
  std::vector<FeatureId> out;
  out.reserve(features_.size());
  for (uint32_t i = 0; i < features_.size(); ++i) out.push_back(FeatureId{i});
  return out;
}

bool FeatureModel::is_consistent_selection(
    const std::vector<bool>& selected) const {
  if (selected.size() != features_.size()) return false;
  if (!selected[root_.index]) return false;
  for (uint32_t i = 0; i < features_.size(); ++i) {
    const Feature& f = features_[i];
    // Child implies parent.
    if (f.parent.valid() && selected[i] && !selected[f.parent.index]) {
      return false;
    }
    // Group semantics over children.
    size_t selected_children = 0;
    for (FeatureId c : f.children) {
      if (selected[c.index]) ++selected_children;
    }
    switch (f.group) {
      case GroupKind::kAnd:
        if (selected[i]) {
          for (FeatureId c : f.children) {
            if (features_[c.index].mandatory && !selected[c.index]) {
              return false;
            }
          }
        }
        break;
      case GroupKind::kOr:
        if (selected[i] && !f.children.empty() && selected_children == 0) {
          return false;
        }
        break;
      case GroupKind::kXor:
        if (selected[i] && !f.children.empty() && selected_children != 1) {
          return false;
        }
        break;
      case GroupKind::kCardinality:
        if (selected[i] && !f.children.empty() &&
            (selected_children < f.group_min ||
             selected_children > f.group_max)) {
          return false;
        }
        break;
    }
  }
  for (const CrossConstraint& c : constraints_) {
    bool lhs = selected[c.lhs.index];
    bool rhs = selected[c.rhs.index];
    if (c.kind == CrossConstraint::Kind::kRequires && lhs && !rhs) return false;
    if (c.kind == CrossConstraint::Kind::kExcludes && lhs && rhs) return false;
  }
  return true;
}

}  // namespace llhsc::feature

// Multi-VM (multi-product) feature models for static partitioning — paper
// §IV-A. For a hypervisor hosting m VMs over one platform model, k+1 models
// are instantiated: one copy per VM plus the platform model, which is the
// union of the VM selections. Designated *exclusive* features (CPU cores)
// may be selected by at most one VM — the paper's cross-product XOR
// constraint:
//
//   (f_1^1 v ... v f_n^m  <->  f)  ^  /\ ~(f_i^k ^ f_j^k)  ^  ~(f_i^k ^ f_i^l)
//
// The within-VM alternative (~(f_i^k ^ f_j^k)) comes from each VM copy's XOR
// group; this module adds the union axiom and the across-VM exclusivity.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "feature/analysis.hpp"

namespace llhsc::feature {

struct MultiVmEncoding {
  Encoding platform;
  std::vector<Encoding> vms;
};

/// Instantiates the model once per VM plus a platform copy, asserts per-copy
/// semantics, the union axiom (platform feature <-> selected in some VM) and
/// exclusivity for `exclusive` features.
MultiVmEncoding encode_multivm(const FeatureModel& model, smt::Solver& solver,
                               int num_vms,
                               std::span<const FeatureId> exclusive);

/// One VM's product plus the implied platform union.
struct Allocation {
  std::vector<Selection> vm_selections;
  Selection platform_selection;
};

/// Is there any valid allocation of the model across `num_vms` VMs?
[[nodiscard]] bool allocation_feasible(const FeatureModel& model,
                                       smt::Backend backend, int num_vms,
                                       std::span<const FeatureId> exclusive);

/// Largest m <= limit for which an allocation exists (0 if even one VM is
/// infeasible). The paper's running example yields 2 (one CPU per VM).
[[nodiscard]] int max_feasible_vms(const FeatureModel& model,
                                   smt::Backend backend,
                                   std::span<const FeatureId> exclusive,
                                   int limit = 16);

/// Validates a concrete allocation (paper Fig. 1b + 1c as VM products).
[[nodiscard]] bool check_allocation(const FeatureModel& model,
                                    smt::Solver& solver,
                                    std::span<const FeatureId> exclusive,
                                    const std::vector<Selection>& vm_selections);

/// Enumerates distinct allocations (up to max); the callback may stop early.
uint64_t enumerate_allocations(
    const FeatureModel& model, smt::Solver& solver, int num_vms,
    std::span<const FeatureId> exclusive,
    const std::function<bool(const Allocation&)>& on_allocation,
    uint64_t max_allocations = UINT64_MAX);

}  // namespace llhsc::feature

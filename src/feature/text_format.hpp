// A textual format for feature models, so product lines can be authored
// without recompiling (the cloud-demo use case of §V). Example — the paper's
// Fig. 1a:
//
//   model CustomSBC {
//       memory mandatory;
//       cpus mandatory group xor {
//           cpu@0;
//           cpu@1;
//       }
//       uarts mandatory abstract group or {
//           uart@20000000;
//           uart@30000000;
//       }
//       vEthernet abstract group xor {
//           veth0;
//           veth1;
//       }
//       constraint veth0 requires cpu@0;
//       constraint veth1 requires cpu@1;
//   }
//
// Grammar: feature := NAME modifier* ("group" ("and"|"or"|"xor"))?
// (";" | "{" feature* "}"); modifiers: mandatory, optional (default),
// abstract. Cross-tree rules: "constraint A requires B;" /
// "constraint A excludes B;". The lexer is shared with the DTS language, so
// feature names follow node-name syntax (cpu@0, uart@20000000, ...).
#pragma once

#include <optional>
#include <string>

#include "feature/model.hpp"
#include "support/diagnostics.hpp"

namespace llhsc::feature {

/// Parses the textual format. Returns nullopt on errors (see diags).
[[nodiscard]] std::optional<FeatureModel> parse_model(
    std::string_view text, std::string filename,
    support::DiagnosticEngine& diags);

/// Renders a model back to the textual format (round-trips through
/// parse_model).
[[nodiscard]] std::string print_model(const FeatureModel& model);

}  // namespace llhsc::feature

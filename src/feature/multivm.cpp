#include "feature/multivm.hpp"

namespace llhsc::feature {

MultiVmEncoding encode_multivm(const FeatureModel& model, smt::Solver& solver,
                               int num_vms,
                               std::span<const FeatureId> exclusive) {
  auto& fa = solver.formulas();
  MultiVmEncoding enc;
  // Platform copy: variables only — the platform tree is the *union* of VM
  // selections, so its shape is implied rather than independently decomposed
  // (asserting XOR groups on the union would wrongly forbid e.g. both CPUs
  // appearing in the platform DTS).
  enc.platform = encode(model, solver, "platform.", /*assert_axioms=*/false);
  for (int k = 0; k < num_vms; ++k) {
    enc.vms.push_back(
        encode(model, solver, "vm" + std::to_string(k) + ".", true));
  }

  // Union axiom: platform_i <-> OR_k vm_k_i.
  for (uint32_t i = 0; i < model.size(); ++i) {
    std::vector<logic::Formula> any;
    any.reserve(enc.vms.size());
    for (const Encoding& vm : enc.vms) any.push_back(vm.variables[i]);
    solver.add(fa.mk_iff(enc.platform.variables[i], fa.mk_or(any)));
  }

  // Across-VM exclusivity for designated resources.
  for (FeatureId f : exclusive) {
    for (size_t k = 0; k < enc.vms.size(); ++k) {
      for (size_t l = k + 1; l < enc.vms.size(); ++l) {
        solver.add(fa.mk_not(fa.mk_and(enc.vms[k].variables[f.index],
                                       enc.vms[l].variables[f.index])));
      }
    }
  }
  return enc;
}

bool allocation_feasible(const FeatureModel& model, smt::Backend backend,
                         int num_vms, std::span<const FeatureId> exclusive) {
  smt::Solver solver(backend);
  encode_multivm(model, solver, num_vms, exclusive);
  return solver.check() == smt::CheckResult::kSat;
}

int max_feasible_vms(const FeatureModel& model, smt::Backend backend,
                     std::span<const FeatureId> exclusive, int limit) {
  int best = 0;
  for (int m = 1; m <= limit; ++m) {
    if (!allocation_feasible(model, backend, m, exclusive)) break;
    best = m;
  }
  return best;
}

bool check_allocation(const FeatureModel& model, smt::Solver& solver,
                      std::span<const FeatureId> exclusive,
                      const std::vector<Selection>& vm_selections) {
  for (const Selection& s : vm_selections) {
    if (s.size() != model.size()) return false;
  }
  solver.push();
  auto& fa = solver.formulas();
  MultiVmEncoding enc = encode_multivm(
      model, solver, static_cast<int>(vm_selections.size()), exclusive);
  for (size_t k = 0; k < vm_selections.size(); ++k) {
    for (uint32_t i = 0; i < model.size(); ++i) {
      solver.add(vm_selections[k][i] ? enc.vms[k].variables[i]
                                     : fa.mk_not(enc.vms[k].variables[i]));
    }
  }
  bool ok = solver.check() == smt::CheckResult::kSat;
  solver.pop();
  return ok;
}

uint64_t enumerate_allocations(
    const FeatureModel& model, smt::Solver& solver, int num_vms,
    std::span<const FeatureId> exclusive,
    const std::function<bool(const Allocation&)>& on_allocation,
    uint64_t max_allocations) {
  solver.push();
  auto& fa = solver.formulas();
  MultiVmEncoding enc = encode_multivm(model, solver, num_vms, exclusive);
  uint64_t found = 0;
  while (found < max_allocations) {
    if (solver.check() != smt::CheckResult::kSat) break;
    Allocation alloc;
    alloc.platform_selection.resize(model.size());
    for (uint32_t i = 0; i < model.size(); ++i) {
      alloc.platform_selection[i] = solver.model_bool(enc.platform.variables[i]);
    }
    for (int k = 0; k < num_vms; ++k) {
      Selection sel(model.size());
      for (uint32_t i = 0; i < model.size(); ++i) {
        sel[i] = solver.model_bool(enc.vms[static_cast<size_t>(k)].variables[i]);
      }
      alloc.vm_selections.push_back(std::move(sel));
    }
    ++found;
    bool keep_going = on_allocation(alloc);
    // Block this VM-assignment combination.
    std::vector<logic::Formula> diff;
    for (int k = 0; k < num_vms; ++k) {
      const Encoding& vm = enc.vms[static_cast<size_t>(k)];
      for (uint32_t i = 0; i < model.size(); ++i) {
        diff.push_back(alloc.vm_selections[static_cast<size_t>(k)][i]
                           ? fa.mk_not(vm.variables[i])
                           : vm.variables[i]);
      }
    }
    solver.add(fa.mk_or(diff));
    if (!keep_going) break;
  }
  solver.pop();
  return found;
}

}  // namespace llhsc::feature

#include "fdt/fdt.hpp"

#include <cstring>
#include <map>
#include <string>

#include "support/strings.hpp"

namespace llhsc::fdt {

namespace {

void put_u32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v >> 24));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v));
}

void put_u64(std::vector<uint8_t>& out, uint64_t v) {
  put_u32(out, static_cast<uint32_t>(v >> 32));
  put_u32(out, static_cast<uint32_t>(v));
}

void patch_u32(std::vector<uint8_t>& out, size_t offset, uint32_t v) {
  out[offset] = static_cast<uint8_t>(v >> 24);
  out[offset + 1] = static_cast<uint8_t>(v >> 16);
  out[offset + 2] = static_cast<uint8_t>(v >> 8);
  out[offset + 3] = static_cast<uint8_t>(v);
}

void pad_to(std::vector<uint8_t>& out, size_t alignment) {
  while (out.size() % alignment != 0) out.push_back(0);
}

uint32_t get_u32(std::span<const uint8_t> blob, size_t offset) {
  return (static_cast<uint32_t>(blob[offset]) << 24) |
         (static_cast<uint32_t>(blob[offset + 1]) << 16) |
         (static_cast<uint32_t>(blob[offset + 2]) << 8) |
         static_cast<uint32_t>(blob[offset + 3]);
}

uint64_t get_u64(std::span<const uint8_t> blob, size_t offset) {
  return (static_cast<uint64_t>(get_u32(blob, offset)) << 32) |
         get_u32(blob, offset + 4);
}

/// Deduplicating strings-block builder.
class StringTable {
 public:
  uint32_t intern(const std::string& s) {
    auto it = offsets_.find(s);
    if (it != offsets_.end()) return it->second;
    uint32_t off = static_cast<uint32_t>(data_.size());
    data_.insert(data_.end(), s.begin(), s.end());
    data_.push_back(0);
    offsets_.emplace(s, off);
    return off;
  }
  [[nodiscard]] const std::vector<uint8_t>& data() const { return data_; }

 private:
  std::vector<uint8_t> data_;
  std::map<std::string, uint32_t> offsets_;
};

/// Serialises one property's value chunks into DTB bytes.
bool serialize_value(const dts::Property& p, std::vector<uint8_t>& out,
                     support::DiagnosticEngine& diags) {
  for (const dts::Chunk& chunk : p.chunks) {
    switch (chunk.kind) {
      case dts::ChunkKind::kCells:
        for (const dts::Cell& cell : chunk.cells) {
          if (cell.is_ref) {
            diags.error("fdt-emit",
                        "unresolved reference &" + cell.ref + " in property '" +
                            p.name + "' (run resolve_references first)",
                        p.location);
            return false;
          }
          // Element width follows the /bits/ directive (big-endian).
          uint64_t max = chunk.element_bits >= 64
                             ? UINT64_MAX
                             : (1ull << chunk.element_bits) - 1;
          if (cell.value > max) {
            diags.error("fdt-emit",
                        "cell value " + support::hex(cell.value) +
                            " in property '" + p.name + "' exceeds /bits/ " +
                            std::to_string(chunk.element_bits),
                        p.location);
            return false;
          }
          for (int b = chunk.element_bits - 8; b >= 0; b -= 8) {
            out.push_back(static_cast<uint8_t>(cell.value >> b));
          }
        }
        break;
      case dts::ChunkKind::kString:
        out.insert(out.end(), chunk.text.begin(), chunk.text.end());
        out.push_back(0);
        break;
      case dts::ChunkKind::kBytes:
        out.insert(out.end(), chunk.bytes.begin(), chunk.bytes.end());
        break;
      case dts::ChunkKind::kRef:
        diags.error("fdt-emit",
                    "unresolved path reference &" + chunk.text +
                        " in property '" + p.name + "'",
                    p.location);
        return false;
    }
  }
  return true;
}

bool emit_node(const dts::Node& node, std::vector<uint8_t>& structure,
               StringTable& strings, support::DiagnosticEngine& diags,
               bool is_root) {
  put_u32(structure, kTokBeginNode);
  // The root node's name is empty in DTB.
  const std::string name = is_root ? std::string() : node.name().str();
  structure.insert(structure.end(), name.begin(), name.end());
  structure.push_back(0);
  pad_to(structure, 4);

  for (const dts::Property& p : node.properties()) {
    std::vector<uint8_t> value;
    if (!serialize_value(p, value, diags)) return false;
    put_u32(structure, kTokProp);
    put_u32(structure, static_cast<uint32_t>(value.size()));
    put_u32(structure, strings.intern(p.name.str()));
    structure.insert(structure.end(), value.begin(), value.end());
    pad_to(structure, 4);
  }
  for (const auto& child : node.children()) {
    if (!emit_node(*child, structure, strings, diags, false)) return false;
  }
  put_u32(structure, kTokEndNode);
  return true;
}

}  // namespace

std::optional<std::vector<uint8_t>> emit(const dts::Tree& tree,
                                         support::DiagnosticEngine& diags,
                                         const EmitOptions& options) {
  // Build the structure and strings blocks first.
  std::vector<uint8_t> structure;
  StringTable strings;
  if (!emit_node(tree.root(), structure, strings, diags, true)) {
    return std::nullopt;
  }
  put_u32(structure, kTokEnd);

  constexpr uint32_t kHeaderSize = 40;
  std::vector<uint8_t> out;
  out.reserve(kHeaderSize + structure.size() + strings.data().size() + 64);
  for (uint32_t i = 0; i < kHeaderSize; ++i) out.push_back(0);

  // Memory reservation block (8-byte aligned).
  pad_to(out, 8);
  uint32_t off_mem_rsvmap = static_cast<uint32_t>(out.size());
  for (const dts::MemReserve& mr : tree.memreserves()) {
    put_u64(out, mr.address);
    put_u64(out, mr.size);
  }
  put_u64(out, 0);
  put_u64(out, 0);

  pad_to(out, 4);
  uint32_t off_dt_struct = static_cast<uint32_t>(out.size());
  out.insert(out.end(), structure.begin(), structure.end());
  uint32_t size_dt_struct = static_cast<uint32_t>(structure.size());

  uint32_t off_dt_strings = static_cast<uint32_t>(out.size());
  out.insert(out.end(), strings.data().begin(), strings.data().end());
  uint32_t size_dt_strings = static_cast<uint32_t>(strings.data().size());

  for (uint32_t i = 0; i < options.padding; ++i) out.push_back(0);

  patch_u32(out, 0, kMagic);
  patch_u32(out, 4, static_cast<uint32_t>(out.size()));
  patch_u32(out, 8, off_dt_struct);
  patch_u32(out, 12, off_dt_strings);
  patch_u32(out, 16, off_mem_rsvmap);
  patch_u32(out, 20, kVersion);
  patch_u32(out, 24, kLastCompatibleVersion);
  patch_u32(out, 28, options.boot_cpuid_phys);
  patch_u32(out, 32, size_dt_strings);
  patch_u32(out, 36, size_dt_struct);
  return out;
}

std::optional<Header> read_header(std::span<const uint8_t> blob) {
  if (blob.size() < 40) return std::nullopt;
  Header h;
  h.magic = get_u32(blob, 0);
  h.totalsize = get_u32(blob, 4);
  h.off_dt_struct = get_u32(blob, 8);
  h.off_dt_strings = get_u32(blob, 12);
  h.off_mem_rsvmap = get_u32(blob, 16);
  h.version = get_u32(blob, 20);
  h.last_comp_version = get_u32(blob, 24);
  h.boot_cpuid_phys = get_u32(blob, 28);
  h.size_dt_strings = get_u32(blob, 32);
  h.size_dt_struct = get_u32(blob, 36);
  return h;
}

namespace {

struct StructWalker {
  std::span<const uint8_t> blob;
  size_t pos;
  size_t end;
  size_t strings_off;
  size_t strings_end;
  support::DiagnosticEngine* diags;
  bool failed = false;

  uint32_t next_token() {
    if (pos + 4 > end) {
      fail("structure block overruns its bounds");
      return kTokEnd;
    }
    uint32_t tok = get_u32(blob, pos);
    pos += 4;
    return tok;
  }

  void fail(const std::string& msg) {
    if (!failed) diags->error("fdt-read", msg);
    failed = true;
  }

  std::string read_name() {
    size_t start = pos;
    while (pos < end && blob[pos] != 0) ++pos;
    if (pos >= end) {
      fail("unterminated node name");
      return {};
    }
    std::string name(reinterpret_cast<const char*>(blob.data() + start),
                     pos - start);
    ++pos;  // NUL
    while (pos % 4 != 0) ++pos;
    return name;
  }

  std::string string_at(uint32_t off) {
    size_t abs = strings_off + off;
    if (abs >= strings_end) {
      fail("property name offset outside strings block");
      return {};
    }
    size_t e = abs;
    while (e < strings_end && blob[e] != 0) ++e;
    if (e >= strings_end) {
      fail("unterminated string in strings block");
      return {};
    }
    return std::string(reinterpret_cast<const char*>(blob.data() + abs),
                       e - abs);
  }
};

}  // namespace

std::unique_ptr<dts::Tree> read(std::span<const uint8_t> blob,
                                support::DiagnosticEngine& diags) {
  auto header = read_header(blob);
  if (!header || header->magic != kMagic) {
    diags.error("fdt-read", "bad magic (not a DTB)");
    return nullptr;
  }
  if (header->totalsize > blob.size()) {
    diags.error("fdt-read", "totalsize exceeds buffer");
    return nullptr;
  }
  if (header->last_comp_version > kVersion) {
    diags.error("fdt-read", "incompatible DTB version");
    return nullptr;
  }

  auto tree = std::make_unique<dts::Tree>();

  // Memory reservation block.
  size_t pos = header->off_mem_rsvmap;
  while (pos + 16 <= blob.size()) {
    uint64_t addr = get_u64(blob, pos);
    uint64_t size = get_u64(blob, pos + 8);
    pos += 16;
    if (addr == 0 && size == 0) break;
    tree->memreserves().push_back({addr, size});
  }

  StructWalker w{blob,
                 header->off_dt_struct,
                 std::min<size_t>(
                     static_cast<size_t>(header->off_dt_struct) +
                         header->size_dt_struct,
                     blob.size()),
                 header->off_dt_strings,
                 std::min<size_t>(
                     static_cast<size_t>(header->off_dt_strings) +
                         header->size_dt_strings,
                     blob.size()),
                 &diags};

  std::vector<dts::Node*> stack;
  bool seen_root = false;
  while (!w.failed) {
    uint32_t tok = w.next_token();
    if (tok == kTokNop) continue;
    if (tok == kTokEnd) {
      if (!stack.empty()) w.fail("FDT_END inside an open node");
      break;
    }
    if (tok == kTokBeginNode) {
      std::string name = w.read_name();
      if (stack.empty()) {
        if (seen_root) {
          w.fail("multiple root nodes");
          break;
        }
        seen_root = true;
        stack.push_back(&tree->root());
      } else {
        stack.push_back(
            &stack.back()->add_child(std::make_unique<dts::Node>(name)));
      }
    } else if (tok == kTokEndNode) {
      if (stack.empty()) {
        w.fail("unbalanced FDT_END_NODE");
        break;
      }
      stack.pop_back();
    } else if (tok == kTokProp) {
      if (stack.empty()) {
        w.fail("property outside of a node");
        break;
      }
      if (w.pos + 8 > w.end) {
        w.fail("truncated FDT_PROP");
        break;
      }
      uint32_t len = get_u32(blob, w.pos);
      uint32_t nameoff = get_u32(blob, w.pos + 4);
      w.pos += 8;
      if (w.pos + len > w.end) {
        w.fail("property value overruns structure block");
        break;
      }
      dts::Property p;
      p.name = w.string_at(nameoff);
      if (len > 0) {
        std::vector<uint8_t> bytes(blob.begin() + static_cast<long>(w.pos),
                                   blob.begin() + static_cast<long>(w.pos + len));
        p.chunks.push_back(dts::Chunk::make_bytes(std::move(bytes)));
      }
      stack.back()->set_property(std::move(p));
      w.pos += len;
      while (w.pos % 4 != 0) ++w.pos;
    } else {
      w.fail("unknown token " + support::hex(tok));
      break;
    }
  }
  if (w.failed || !seen_root) {
    if (!seen_root && !w.failed) diags.error("fdt-read", "no root node");
    return nullptr;
  }
  return tree;
}

bool verify(std::span<const uint8_t> blob, support::DiagnosticEngine& diags) {
  size_t errors_before = diags.error_count();
  auto header = read_header(blob);
  if (!header) {
    diags.error("fdt-verify", "blob smaller than the DTB header");
    return false;
  }
  if (header->magic != kMagic) {
    diags.error("fdt-verify", "bad magic");
    return false;
  }
  if (header->version < header->last_comp_version) {
    diags.error("fdt-verify", "version < last_comp_version");
  }
  if (header->totalsize > blob.size() || header->totalsize < 40) {
    diags.error("fdt-verify", "implausible totalsize");
    return false;
  }
  auto in_range = [&](uint32_t off, uint32_t size) {
    return off >= 40 && static_cast<uint64_t>(off) + size <= header->totalsize;
  };
  if (!in_range(header->off_dt_struct, header->size_dt_struct)) {
    diags.error("fdt-verify", "structure block out of range");
    return false;
  }
  if (!in_range(header->off_dt_strings, header->size_dt_strings)) {
    diags.error("fdt-verify", "strings block out of range");
    return false;
  }
  if (header->off_dt_struct % 4 != 0) {
    diags.error("fdt-verify", "structure block misaligned");
  }
  if (header->off_mem_rsvmap % 8 != 0) {
    diags.error("fdt-verify", "memory reservation block misaligned");
  }
  // Token stream sanity: delegate to the reader on a throwaway tree.
  support::DiagnosticEngine sub;
  if (read(blob, sub) == nullptr) {
    diags.error("fdt-verify", "token stream malformed: " + sub.render());
  }
  return diags.error_count() == errors_before;
}

std::optional<std::vector<uint32_t>> bytes_as_cells(
    const dts::Property& property) {
  if (property.chunks.size() != 1 ||
      property.chunks[0].kind != dts::ChunkKind::kBytes) {
    return std::nullopt;
  }
  const auto& bytes = property.chunks[0].bytes;
  if (bytes.size() % 4 != 0) return std::nullopt;
  std::vector<uint32_t> cells;
  cells.reserve(bytes.size() / 4);
  for (size_t i = 0; i < bytes.size(); i += 4) {
    cells.push_back((static_cast<uint32_t>(bytes[i]) << 24) |
                    (static_cast<uint32_t>(bytes[i + 1]) << 16) |
                    (static_cast<uint32_t>(bytes[i + 2]) << 8) |
                    static_cast<uint32_t>(bytes[i + 3]));
  }
  return cells;
}

std::optional<std::string> bytes_as_string(const dts::Property& property) {
  if (property.chunks.size() != 1 ||
      property.chunks[0].kind != dts::ChunkKind::kBytes) {
    return std::nullopt;
  }
  const auto& bytes = property.chunks[0].bytes;
  if (bytes.empty() || bytes.back() != 0) return std::nullopt;
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size() - 1);
}

}  // namespace llhsc::fdt

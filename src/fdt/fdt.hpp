// Flattened DeviceTree (DTB) support — a libfdt-equivalent subset written
// from scratch (libfdt is not vendored). Implements the DTB v17 on-disk
// format from the DeviceTree Specification v0.4 chapter 5:
//
//   header (10 big-endian u32 fields, magic 0xd00dfeed)
//   memory reservation block ((u64 address, u64 size) pairs, (0,0) sentinel)
//   structure block (FDT_BEGIN_NODE / FDT_PROP / FDT_END_NODE / FDT_END)
//   strings block (deduplicated property names)
//
// emit() serialises a dts::Tree (references must already be resolved to
// phandles); read() parses a blob back into a Tree whose property values are
// raw byte chunks (the DTB format erases source-level typing — the verifier
// and the emit(read(emit(t))) == emit(t) round-trip tests rely only on the
// binary image).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "dts/tree.hpp"
#include "support/diagnostics.hpp"

namespace llhsc::fdt {

inline constexpr uint32_t kMagic = 0xd00dfeed;
inline constexpr uint32_t kVersion = 17;
inline constexpr uint32_t kLastCompatibleVersion = 16;

inline constexpr uint32_t kTokBeginNode = 0x1;
inline constexpr uint32_t kTokEndNode = 0x2;
inline constexpr uint32_t kTokProp = 0x3;
inline constexpr uint32_t kTokNop = 0x4;
inline constexpr uint32_t kTokEnd = 0x9;

struct EmitOptions {
  uint32_t boot_cpuid_phys = 0;
  /// Extra padding appended after the strings block (bootloaders often want
  /// room to patch the blob in place).
  uint32_t padding = 0;
};

/// Serialises a tree to a DTB image. Fails (nullopt + diagnostics) on
/// unresolved references or cell values wider than 32 bits.
[[nodiscard]] std::optional<std::vector<uint8_t>> emit(
    const dts::Tree& tree, support::DiagnosticEngine& diags,
    const EmitOptions& options = {});

/// Parses a DTB image back into a Tree. Property values become single
/// byte-string chunks. Returns nullptr on malformed input.
[[nodiscard]] std::unique_ptr<dts::Tree> read(
    std::span<const uint8_t> blob, support::DiagnosticEngine& diags);

/// Structural verifier: checks magic, version, block bounds, token stream
/// well-formedness and strings-block references without building a tree.
/// Returns true when the blob is a well-formed DTB.
[[nodiscard]] bool verify(std::span<const uint8_t> blob,
                          support::DiagnosticEngine& diags);

/// Header introspection for tooling/tests.
struct Header {
  uint32_t magic = 0;
  uint32_t totalsize = 0;
  uint32_t off_dt_struct = 0;
  uint32_t off_dt_strings = 0;
  uint32_t off_mem_rsvmap = 0;
  uint32_t version = 0;
  uint32_t last_comp_version = 0;
  uint32_t boot_cpuid_phys = 0;
  uint32_t size_dt_strings = 0;
  uint32_t size_dt_struct = 0;
};

[[nodiscard]] std::optional<Header> read_header(std::span<const uint8_t> blob);

// -- typed views over raw DTB property bytes (reader output) --
/// Interprets a byte chunk as a big-endian u32 array (nullopt if misaligned).
[[nodiscard]] std::optional<std::vector<uint32_t>> bytes_as_cells(
    const dts::Property& property);
/// Interprets a byte chunk as a NUL-terminated string.
[[nodiscard]] std::optional<std::string> bytes_as_string(
    const dts::Property& property);

}  // namespace llhsc::fdt

// llhscd — the long-running check daemon. Line-delimited JSON over a
// Unix-domain socket:
//
//   request:  {"id": <any>, "method": "ping"|"check"|"session"|"stats"|
//              "shutdown", "params": {...}, "deadline_ms": <int>}\n
//   response: {"id": <echoed>, "ok": true, "result": {...}}\n
//           | {"id": <echoed>, "ok": false,
//              "error": {"code": "bad_request"|"overloaded"|
//                        "shutting_down"|"deadline_exceeded",
//                        "message": "..."}}\n
//
// Architecture: one accept thread multiplexing the listen socket and a
// self-pipe (the SIGINT/SIGTERM handler writes one byte — async-signal-safe
// — and the poll loop does the actual shutdown outside signal context); one
// reader thread per connection; check/session work scheduled onto a shared
// support::ThreadPool, with a bounded admission count — requests beyond
// queue_limit are answered `overloaded` immediately instead of queueing
// without bound. Responses to one connection are serialised by a
// per-connection write mutex, so concurrent requests on one socket never
// interleave bytes.
//
// Shutdown is a drain: stop accepting, shut down the read side of every
// connection, let admitted requests finish and respond, then unlink the
// socket and return 0. A `shutdown` request triggers the same path.
//
// `check` responses carry the exact stdout/stderr bytes and exit code the
// one-shot CLI produces for the same input (both funnel through
// server::run_check). `session` requests get incremental re-checking over
// the shared ArtifactStore (see session.hpp). `stats` reports cumulative
// counters, store statistics, and a p50/p95 latency histogram — all timing
// from steady_clock; the daemon never reads wall-clock time on any path
// that contributes to a verdict.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "server/artifact_store.hpp"
#include "server/histogram.hpp"
#include "server/json.hpp"
#include "support/thread_pool.hpp"

namespace llhsc::server {

struct ServerOptions {
  std::string socket_path;
  /// Worker threads for check/session execution (0 = hardware concurrency).
  unsigned jobs = 0;
  /// Admitted (queued + running) check/session requests beyond this are
  /// rejected with `overloaded`.
  size_t queue_limit = 64;
  /// Deadline applied to requests that do not carry their own deadline_ms
  /// (0 = unlimited).
  uint64_t default_deadline_ms = 0;
  /// Per-class ArtifactStore capacity.
  size_t store_capacity = 512;
  /// Trace/log sink; null = stderr.
  std::ostream* log = nullptr;
  /// Chrome-trace profile written at shutdown ("" = no profiling). While
  /// set, every check/session request records per-request spans
  /// (request.wait / request.service) plus the stage/solver events of the
  /// work it ran.
  std::string profile_path;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, serves until a signal / shutdown request / stop(),
  /// drains, unlinks the socket. Returns 0 on clean shutdown, 2 on setup
  /// failure. Installs SIGINT/SIGTERM handlers for the duration.
  int run();

  /// Thread-safe: asks a running server to drain and stop.
  void request_stop();

  /// The bound socket path (for tests).
  [[nodiscard]] const std::string& socket_path() const {
    return options_.socket_path;
  }

 private:
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();
    int fd;
    std::mutex write_mutex;
  };

  void reader_loop(std::shared_ptr<Connection> conn);
  /// Joins reader threads whose loop has ended — called by the accept loop
  /// and by each finishing reader, so a long-lived daemon never accumulates
  /// dead thread handles across client connections.
  void reap_finished_readers();
  void handle_line(const std::shared_ptr<Connection>& conn,
                   const std::string& line);
  /// Stamps the wire schema_version and writes one response line. Takes the
  /// document by value because every reply gets the stamp exactly once.
  void respond(const std::shared_ptr<Connection>& conn, Json response);
  void respond_error(const std::shared_ptr<Connection>& conn, const Json& id,
                     const std::string& code, const std::string& message);
  void log_line(const std::string& text);

  ServerOptions options_;
  ArtifactStore store_;
  std::unique_ptr<support::ThreadPool> pool_;

  int listen_fd_ = -1;
  int stop_pipe_read_ = -1;
  std::atomic<int> stop_pipe_write_{-1};
  /// Serialises request_stop()'s write against run()'s close of the write
  /// end (the signal handler uses its own async-signal-safe self-pipe).
  std::mutex stop_pipe_mutex_;
  std::atomic<bool> draining_{false};

  std::mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> readers_;
  /// Ids of readers_ entries whose loop has returned; joined by the next
  /// reap_finished_readers() call. A reader pushes its own id only after
  /// its handle is in readers_ (both happen under connections_mutex_, and
  /// the accept loop registers the handle before the thread can take the
  /// lock), so every id here resolves to a joinable handle.
  std::vector<std::thread::id> finished_reader_ids_;

  std::atomic<size_t> admitted_{0};  // queued + running check/session work

  // Cumulative request counters for `stats`.
  std::atomic<uint64_t> requests_total_{0};
  std::atomic<uint64_t> checks_{0};
  std::atomic<uint64_t> sessions_{0};
  std::atomic<uint64_t> pings_{0};
  std::atomic<uint64_t> rejected_overloaded_{0};
  std::atomic<uint64_t> rejected_bad_request_{0};
  std::atomic<uint64_t> rejected_shutting_down_{0};
  std::atomic<uint64_t> rejected_deadline_{0};
  LatencyHistogram latency_;

  // Cumulative check-work counters for `stats`, accumulated from each
  // CheckOutcome's trace — i.e. from the same obs-event reduction that backs
  // the one-shot CLI's --stats line, so the two surfaces cannot drift.
  std::atomic<uint64_t> check_solver_checks_{0};
  std::atomic<uint64_t> check_queries_issued_{0};
  std::atomic<uint64_t> check_queries_pruned_{0};
  std::atomic<uint64_t> check_cache_hits_{0};
  std::atomic<uint64_t> check_cache_errors_{0};

  /// Per-request event streams accumulate here when profiling; exported as
  /// one Chrome trace at shutdown.
  obs::TraceSink profile_sink_;

  std::mutex log_mutex_;
};

}  // namespace llhsc::server

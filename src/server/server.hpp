// llhscd — the long-running check daemon. Line-delimited JSON over a
// Unix-domain socket and/or TCP:
//
//   request:  {"id": <any>, "method": "ping"|"hello"|"check"|"session"|
//              "stats"|"healthz"|"shutdown", "params": {...},
//              "deadline_ms": <int>, "tenant": <string>}\n
//   response: {"id": <echoed>, "ok": true, "result": {...}}\n
//           | {"id": <echoed>, "ok": false,
//              "error": {"code": "bad_request"|"too_large"|"overloaded"|
//                        "quota_exceeded"|"shutting_down"|
//                        "deadline_exceeded"|"worker_failed",
//                        "message": "..."}}\n
//
// Architecture (PR 10): a single-threaded poll(2) event loop owns every
// client connection — it accepts on the Unix and TCP listeners, frames
// request lines from non-blocking reads, and flushes buffered responses.
// Two execution modes sit behind it:
//
//   * in-process (workers == 0, the default): admitted check/session work
//     runs on a shared support::ThreadPool inside this process, exactly as
//     before — pool threads enqueue response bytes and wake the loop.
//   * forked workers (--workers N): the loop doubles as a supervisor. It
//     forks N worker processes (each with its own ArtifactStore and thread
//     pool) connected by socketpairs, shards admitted requests to them by
//     content hash (same source -> same worker -> hot store), and relays
//     each worker's response line to the client verbatim — so responses
//     stay byte-identical to the one-shot CLI by construction. A worker
//     that dies (kill -9, crash) is reaped via SIGCHLD, its in-flight
//     requests are retried once on a surviving worker (check/session are
//     pure functions of their request), and a replacement is forked.
//     On-disk state shared across workers (the qc1 query cache) uses
//     flock single-writer discipline with lock-free readers.
//
// Admission is bounded globally (queue_limit -> `overloaded`) and, when
// tenant_quota is set, per tenant (`quota_exceeded`; the tenant is the
// request's "tenant" field). Lines longer than max_line_bytes are rejected
// with `too_large` and the connection resynchronises at the next newline.
//
// Wire versioning: v1 replies (ping/check/session/shutdown/errors and
// in-process stats) are stamped schema_version 1 and stay byte-identical
// across releases; the new surfaces that expose worker/tenant/transport
// details — `hello`, `healthz`, and worker-mode `stats` — are stamped 2.
//
// Shutdown is a drain: stop accepting, shut down the read side of every
// connection, let admitted requests finish and respond (workers drain via
// channel EOF), then unlink the socket and return 0. A `shutdown` request
// triggers the same path.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/obs.hpp"
#include "server/artifact_store.hpp"
#include "server/histogram.hpp"
#include "server/json.hpp"
#include "server/runner.hpp"
#include "support/thread_pool.hpp"

namespace llhsc::server {

/// The wire protocol generation reported by `hello`.
constexpr int kProtocolVersion = 2;

struct ServerOptions {
  /// Unix-domain listener path ("" = no Unix listener; at least one of
  /// socket_path / tcp_listen must be set).
  std::string socket_path;
  /// TCP listener as "host:port", ":port" or "port" (port 0 = ephemeral;
  /// "" = no TCP listener).
  std::string tcp_listen;
  /// Forked worker processes (0 = run check/session work in-process).
  unsigned workers = 0;
  /// Worker threads for check/session execution (0 = hardware concurrency).
  /// In forked mode this sizes each worker's pool.
  unsigned jobs = 0;
  /// Admitted (queued + running) check/session requests beyond this are
  /// rejected with `overloaded`.
  size_t queue_limit = 64;
  /// Per-tenant admitted cap (0 = unlimited). Requests carry their tenant
  /// in the optional "tenant" field; absent means the "" tenant.
  size_t tenant_quota = 0;
  /// Deadline applied to requests that do not carry their own deadline_ms
  /// (0 = unlimited).
  uint64_t default_deadline_ms = 0;
  /// Per-class ArtifactStore capacity (per worker in forked mode).
  size_t store_capacity = 512;
  /// Request lines longer than this are rejected with `too_large`.
  size_t max_line_bytes = 64 * 1024 * 1024;
  /// Trace/log sink; null = stderr.
  std::ostream* log = nullptr;
  /// Chrome-trace profile written at shutdown ("" = no profiling).
  /// In-process mode only: forked workers run their checks in other
  /// processes, so their spans are not exported (a warning is logged).
  std::string profile_path;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, serves until a signal / shutdown request / stop(),
  /// drains, unlinks the socket. Returns 0 on clean shutdown, 2 on setup
  /// failure. Installs SIGINT/SIGTERM (and, with workers, SIGCHLD)
  /// handlers for the duration.
  int run();

  /// Thread-safe: asks a running server to drain and stop.
  void request_stop();

  /// The bound socket path (for tests).
  [[nodiscard]] const std::string& socket_path() const {
    return options_.socket_path;
  }

  /// The bound TCP port once listening (0 before bind / without TCP). With
  /// `tcp_listen` port 0 this is how tests learn the ephemeral port.
  [[nodiscard]] uint16_t tcp_port() const {
    return tcp_port_.load(std::memory_order_acquire);
  }

 private:
  struct Connection {
    Connection(int fd, bool tcp, std::string peer)
        : fd(fd), tcp(tcp), peer(std::move(peer)) {}
    ~Connection();
    int fd;
    bool tcp;
    std::string peer;  // "ip:port" for TCP, "unix" otherwise

    // Loop-thread-only framing state.
    std::string inbuf;
    bool discarding = false;  // dropping bytes until the next newline
    bool read_closed = false;

    /// Guards outbuf/closed: in-process pool threads append responses
    /// concurrently with the loop's flushes.
    std::mutex write_mutex;
    std::string outbuf;
    bool closed = false;  // peer gone; fd is closed by the loop only

    /// Admitted requests still owing this connection a response.
    std::atomic<size_t> pending{0};
  };

  /// One forked worker process and its supervisor-side channel state.
  /// Loop-thread-only (the forked front end stays single-threaded).
  struct WorkerSlot {
    pid_t pid = -1;
    int fd = -1;  // parent end of the socketpair
    bool alive = false;
    std::string inbuf;   // envelope lines from the worker
    std::string outbuf;  // envelope bytes queued to the worker
    std::vector<uint64_t> owned;  // outstanding seqs dispatched here
  };

  /// An admitted request dispatched to a worker, kept until its response
  /// line comes back — the retry unit when a worker dies.
  struct Outstanding {
    std::shared_ptr<Connection> conn;
    Json id;  // echoed on a worker_failed error
    std::string tenant;
    std::string raw_line;  // the exact client line, for re-dispatch
    uint64_t shard = 0;
    bool retried = false;
    uint64_t start_us = 0;
  };

  /// A `stats` request waiting on per-worker counter snapshots.
  struct PendingStats {
    std::shared_ptr<Connection> conn;
    Json id;
    size_t waiting = 0;
    uint64_t checks = 0;
    uint64_t sessions = 0;
    std::map<std::string, uint64_t> check_counters;
    std::map<std::string, uint64_t> store;
  };

  // -- event loop --
  int setup_listeners();
  void event_loop();
  void accept_ready(int listen_fd, bool tcp);
  void connection_readable(const std::shared_ptr<Connection>& conn);
  void flush_connection(const std::shared_ptr<Connection>& conn);
  void prune_connections();
  void begin_drain();
  [[nodiscard]] bool drain_complete();
  void final_flush();

  // -- request handling --
  void handle_line(const std::shared_ptr<Connection>& conn,
                   const std::string& line);
  void handle_stats(const std::shared_ptr<Connection>& conn, const Json& id);
  void handle_healthz(const std::shared_ptr<Connection>& conn,
                      const Json& id);
  void handle_hello(const std::shared_ptr<Connection>& conn, const Json& id);
  void run_in_process(const std::shared_ptr<Connection>& conn, const Json& id,
                      const std::string& method, const Json& params,
                      const std::string& tenant, uint64_t deadline_ms);
  void release_admission(const std::string& tenant);

  /// Stamps the wire schema_version and enqueues one response line.
  void respond(const std::shared_ptr<Connection>& conn, Json response,
               int schema_version = 1);
  void respond_error(const std::shared_ptr<Connection>& conn, const Json& id,
                     const std::string& code, const std::string& message);
  /// Appends pre-serialised bytes to the connection's output buffer and
  /// nudges the event loop. Safe from pool threads.
  void enqueue_output(const std::shared_ptr<Connection>& conn,
                      const std::string& bytes);
  void wake_loop();

  // -- worker supervision --
  bool spawn_worker(unsigned index);
  void dispatch_to_worker(uint64_t seq);
  void flush_worker(WorkerSlot& slot);
  void worker_readable(WorkerSlot& slot);
  void handle_worker_line(WorkerSlot& slot, const std::string& line);
  void reap_workers();
  void fail_outstanding(uint64_t seq, const std::string& message);
  void send_stats_probe(uint64_t seq, WorkerSlot& slot);
  void finish_stats(uint64_t seq, const Json* worker_stats);
  void respond_stats_aggregate(const std::shared_ptr<PendingStats>& entry);
  [[nodiscard]] Json frontend_stats_errors();

  void log_line(const std::string& text);

  ServerOptions options_;
  ArtifactStore store_;  // in-process mode only (workers own theirs)
  std::unique_ptr<support::ThreadPool> pool_;

  int listen_unix_fd_ = -1;
  int listen_tcp_fd_ = -1;
  std::atomic<uint16_t> tcp_port_{0};

  int stop_pipe_read_ = -1;
  std::atomic<int> stop_pipe_write_{-1};
  /// Serialises request_stop()'s write against run()'s close of the write
  /// end (the signal handler uses its own async-signal-safe self-pipe).
  std::mutex stop_pipe_mutex_;
  int wake_pipe_read_ = -1;
  int wake_pipe_write_ = -1;
  std::atomic<bool> draining_{false};

  /// Loop-thread-only connection registry (pool threads touch only the
  /// Connection objects they hold shared_ptrs to, never this vector).
  std::vector<std::shared_ptr<Connection>> connections_;

  std::vector<WorkerSlot> slots_;
  std::unordered_map<uint64_t, Outstanding> outstanding_;
  std::deque<uint64_t> undispatched_;  // seqs waiting for an alive worker
  std::unordered_map<uint64_t, std::shared_ptr<PendingStats>> stats_waiters_;
  uint64_t next_seq_ = 1;
  uint64_t worker_restarts_ = 0;

  std::atomic<size_t> admitted_{0};  // queued + running check/session work
  /// Per-tenant admitted counts; entries are erased at zero so the map
  /// stays bounded by the number of concurrently active tenants.
  std::mutex tenants_mutex_;
  std::map<std::string, size_t> tenant_admitted_;

  // Cumulative request counters for `stats`.
  std::atomic<uint64_t> requests_total_{0};
  std::atomic<uint64_t> pings_{0};
  std::atomic<uint64_t> rejected_overloaded_{0};
  std::atomic<uint64_t> rejected_bad_request_{0};
  std::atomic<uint64_t> rejected_shutting_down_{0};
  std::atomic<uint64_t> rejected_deadline_{0};
  std::atomic<uint64_t> rejected_quota_{0};
  std::atomic<uint64_t> worker_failures_{0};
  LatencyHistogram latency_;

  /// check/session/trace counters; in-process mode accumulates here, worker
  /// mode sums the per-worker sets on demand.
  CheckCounters counters_;

  /// Per-request event streams accumulate here when profiling; exported as
  /// one Chrome trace at shutdown (in-process mode).
  obs::TraceSink profile_sink_;

  std::mutex log_mutex_;
};

}  // namespace llhsc::server

// Socket plumbing for the llhscd front end: Unix-domain and TCP listeners,
// `host:port` parsing, and non-blocking fd helpers. Kept separate from the
// event loop so the supervisor, the tests, and the bench load driver share
// one implementation of the transport details (live-socket probing,
// SO_REUSEADDR, ephemeral-port discovery, TCP_NODELAY).
#pragma once

#include <cstdint>
#include <string>

namespace llhsc::server::net {

/// Splits a `--listen` spec into host and port. Accepted forms:
/// "host:port", ":port", "port". An empty host means INADDR_ANY. Returns
/// false (with *error set) on a malformed spec or non-numeric/overflow port.
[[nodiscard]] bool parse_listen_spec(const std::string& spec,
                                     std::string* host, uint16_t* port,
                                     std::string* error);

/// True when something is currently accepting connections on the Unix
/// socket path — the "never steal a live daemon's socket" probe.
[[nodiscard]] bool unix_socket_is_live(const std::string& path);

/// Creates, binds, and listens a Unix-domain stream socket. The caller must
/// have probed for liveness first; a stale socket file is unlinked before
/// bind. Returns the listening fd, or -1 with *error set.
[[nodiscard]] int listen_unix(const std::string& path, std::string* error);

/// Binds and listens a TCP socket (IPv4, SO_REUSEADDR). `port` 0 requests
/// an ephemeral port; on success *bound_port holds the actual port either
/// way. `host` "" binds INADDR_ANY. Returns the listening fd, or -1 with
/// *error set.
[[nodiscard]] int listen_tcp(const std::string& host, uint16_t port,
                             uint16_t* bound_port, std::string* error);

/// Connects a blocking TCP client socket to host:port ("" = loopback).
/// Returns the fd or -1. Used by the CLI client and the bench driver.
[[nodiscard]] int connect_tcp(const std::string& host, uint16_t port);

/// Connects a blocking Unix-domain client socket. Returns the fd or -1.
[[nodiscard]] int connect_unix(const std::string& path);

[[nodiscard]] bool set_nonblocking(int fd);

/// Disables Nagle on a TCP fd (best-effort; request/response round trips
/// should not wait out the coalescing timer).
void set_tcp_nodelay(int fd);

/// Human-readable peer description for logs and schema-v2 fields:
/// "ip:port" for TCP peers, "unix" otherwise.
[[nodiscard]] std::string describe_peer(int fd, bool tcp);

}  // namespace llhsc::server::net

#include "server/runner.hpp"

#include <algorithm>
#include <utility>

namespace llhsc::server {

namespace {

uint64_t fnv1a_extend(uint64_t h, const std::string& text) {
  for (unsigned char ch : text) {
    h ^= ch;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

CheckRequest check_request_from(const Json& params) {
  CheckRequest r;
  r.path = params.at("path").as_string();
  r.source = params.at("source").as_string();
  r.base_directory = params.at("base_directory").as_string();
  for (const auto& [name, content] : params.at("includes").fields()) {
    r.includes.emplace_back(name, content.as_string());
  }
  if (params.has("format")) r.format = params.at("format").as_string();
  r.lint = params.at("lint").as_bool(true);
  r.crossref = params.at("crossref").as_bool(true);
  r.graph = params.at("graph").as_bool(true);
  r.syntax = params.at("syntax").as_bool(true);
  r.semantics = params.at("semantics").as_bool(true);
  r.quiet = params.at("quiet").as_bool(false);
  r.stats = params.at("stats").as_bool(false);
  r.baseline_text = params.at("baseline").as_string();
  if (params.has("backend")) r.backend = params.at("backend").as_string();
  r.schemas_text = params.at("schemas_text").as_string();
  r.schemas_path = params.at("schemas_path").as_string();
  r.disable_rule = params.at("disable_rule").as_string();
  r.rule_severity = params.at("rule_severity").as_string();
  r.solver_timeout_ms = params.at("solver_timeout_ms").as_uint(0);
  r.plan = params.at("plan").as_bool(true);
  r.cache_dir = params.at("cache_dir").as_string();
  return r;
}

SessionRequest session_request_from(const Json& params) {
  SessionRequest r;
  r.core_source = params.at("core_source").as_string();
  r.core_name = params.at("core_name").as_string();
  r.deltas_source = params.at("deltas_source").as_string();
  r.deltas_name = params.at("deltas_name").as_string();
  r.model_source = params.at("model_source").as_string();
  r.model_name = params.at("model_name").as_string();
  r.base_directory = params.at("base_directory").as_string();
  for (const auto& [name, content] : params.at("includes").fields()) {
    r.includes.emplace_back(name, content.as_string());
  }
  for (const Json& p : params.at("products").items()) {
    SessionProduct product;
    product.name = p.at("name").as_string();
    for (const Json& f : p.at("features").items()) {
      product.features.insert(f.as_string());
    }
    r.products.push_back(std::move(product));
  }
  r.check_platform = params.at("check_platform").as_bool(false);
  r.check_allocation = params.at("check_allocation").as_bool(false);
  r.check_lifted = params.at("check_lifted").as_bool(false);
  r.lifted_max_configs = params.at("lifted_max_configs").as_uint(8);
  for (const Json& f : params.at("exclusive").items()) {
    r.exclusive.push_back(f.as_string());
  }
  if (params.has("backend")) r.backend = params.at("backend").as_string();
  r.lint = params.at("lint").as_bool(true);
  r.graph = params.at("graph").as_bool(true);
  r.syntax = params.at("syntax").as_bool(true);
  r.semantics = params.at("semantics").as_bool(true);
  r.schemas_text = params.at("schemas_text").as_string();
  r.solver_timeout_ms = params.at("solver_timeout_ms").as_uint(0);
  r.plan = params.at("plan").as_bool(true);
  r.cache_dir = params.at("cache_dir").as_string();
  return r;
}

Json check_outcome_json(const CheckOutcome& outcome) {
  Json trace = Json::object();
  trace.set("tree_cache_hit", Json::boolean(outcome.trace.tree_cache_hit));
  trace.set("check_cache_hit", Json::boolean(outcome.trace.check_cache_hit));
  trace.set("solver_checks",
            Json::unsigned_integer(outcome.trace.solver_checks));
  trace.set("queries_issued",
            Json::unsigned_integer(outcome.trace.queries_issued));
  trace.set("queries_pruned",
            Json::unsigned_integer(outcome.trace.queries_pruned));
  trace.set("cache_hits", Json::unsigned_integer(outcome.trace.cache_hits));
  trace.set("cache_errors",
            Json::unsigned_integer(outcome.trace.cache_errors));
  trace.set("suppressed", Json::unsigned_integer(outcome.trace.suppressed));

  Json result = Json::object();
  result.set("exit_code", Json::integer(outcome.exit_code));
  result.set("stdout", Json::string(outcome.output));
  result.set("stderr", Json::string(outcome.error_text));
  result.set("errors", Json::unsigned_integer(outcome.errors));
  result.set("warnings", Json::unsigned_integer(outcome.warnings));
  result.set("trace", std::move(trace));
  return result;
}

Json store_stats_json(const StoreStats& s) {
  Json j = Json::object();
  j.set("hits", Json::unsigned_integer(s.hits));
  j.set("misses", Json::unsigned_integer(s.misses));
  j.set("evictions", Json::unsigned_integer(s.evictions));
  j.set("tree_parses", Json::unsigned_integer(s.tree_parses));
  j.set("delta_parses", Json::unsigned_integer(s.delta_parses));
  j.set("model_parses", Json::unsigned_integer(s.model_parses));
  j.set("product_line_builds",
        Json::unsigned_integer(s.product_line_builds));
  j.set("derives", Json::unsigned_integer(s.derives));
  j.set("unit_checks", Json::unsigned_integer(s.unit_checks));
  j.set("graph_builds", Json::unsigned_integer(s.graph_builds));
  j.set("cross_checks", Json::unsigned_integer(s.cross_checks));
  j.set("lifted_checks", Json::unsigned_integer(s.lifted_checks));
  return j;
}

Json session_outcome_json(const SessionOutcome& outcome) {
  Json units = Json::array();
  for (const SessionUnitResult& u : outcome.units) {
    Json unit = Json::object();
    unit.set("name", Json::string(u.name));
    unit.set("composed_cache_hit", Json::boolean(u.composed_cache_hit));
    unit.set("check_cache_hit", Json::boolean(u.check_cache_hit));
    unit.set("errors", Json::unsigned_integer(u.errors));
    unit.set("warnings", Json::unsigned_integer(u.warnings));
    unit.set("report", Json::string(u.report));
    units.push(std::move(unit));
  }
  Json result = Json::object();
  result.set("exit_code", Json::integer(outcome.exit_code));
  result.set("stderr", Json::string(outcome.error_text));
  result.set("units", std::move(units));
  result.set("cost", store_stats_json(outcome.cost));
  return result;
}

Json ok_response(const Json& id, Json result) {
  Json response = Json::object();
  response.set("id", id);
  response.set("ok", Json::boolean(true));
  response.set("result", std::move(result));
  return response;
}

Json error_response(const Json& id, const std::string& code,
                    const std::string& message) {
  Json error = Json::object();
  error.set("code", Json::string(code));
  error.set("message", Json::string(message));
  Json response = Json::object();
  response.set("id", id);
  response.set("ok", Json::boolean(false));
  response.set("error", std::move(error));
  return response;
}

std::string stamp_response_line(Json response, int schema_version) {
  response.set("schema_version", Json::integer(schema_version));
  std::string line = response.dump();
  line += '\n';
  return line;
}

Json execute_request(const std::string& method, const Json& id,
                     const Json& params, const support::Deadline& deadline,
                     ArtifactStore& store, CheckCounters& counters) {
  if (method == "check") {
    CheckRequest cr = check_request_from(params);
    // The request deadline bounds solver work: the tighter of the client's
    // solver budget and what is left of the deadline wins.
    if (!deadline.unlimited()) {
      const uint64_t remaining = deadline.remaining_ms();
      cr.solver_timeout_ms = cr.solver_timeout_ms == 0
                                 ? remaining
                                 : std::min(cr.solver_timeout_ms, remaining);
      if (cr.solver_timeout_ms == 0) cr.solver_timeout_ms = 1;
    }
    CheckOutcome outcome = run_check(cr, &store);
    counters.checks.fetch_add(1, std::memory_order_relaxed);
    counters.solver_checks.fetch_add(outcome.trace.solver_checks,
                                     std::memory_order_relaxed);
    counters.queries_issued.fetch_add(outcome.trace.queries_issued,
                                      std::memory_order_relaxed);
    counters.queries_pruned.fetch_add(outcome.trace.queries_pruned,
                                      std::memory_order_relaxed);
    counters.cache_hits.fetch_add(outcome.trace.cache_hits,
                                  std::memory_order_relaxed);
    counters.cache_errors.fetch_add(outcome.trace.cache_errors,
                                    std::memory_order_relaxed);
    return ok_response(id, check_outcome_json(outcome));
  }
  SessionRequest sr = session_request_from(params);
  if (!deadline.unlimited()) {
    const uint64_t remaining = deadline.remaining_ms();
    sr.solver_timeout_ms = sr.solver_timeout_ms == 0
                               ? remaining
                               : std::min(sr.solver_timeout_ms, remaining);
    if (sr.solver_timeout_ms == 0) sr.solver_timeout_ms = 1;
  }
  SessionOutcome outcome = run_session_check(sr, store);
  counters.sessions.fetch_add(1, std::memory_order_relaxed);
  return ok_response(id, session_outcome_json(outcome));
}

uint64_t shard_key(const std::string& method, const Json& params) {
  uint64_t h = 0xcbf29ce484222325ull;
  if (method == "check") {
    h = fnv1a_extend(h, params.at("path").as_string());
    h = fnv1a_extend(h, params.at("source").as_string());
  } else {
    h = fnv1a_extend(h, params.at("core_name").as_string());
    h = fnv1a_extend(h, params.at("core_source").as_string());
    h = fnv1a_extend(h, params.at("deltas_source").as_string());
  }
  return h;
}

}  // namespace llhsc::server

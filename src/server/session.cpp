#include "server/session.hpp"

#include <sstream>

#include "checkers/graph/rules.hpp"
#include "checkers/resource_allocation.hpp"
#include "lift/lift.hpp"
#include "dts/printer.hpp"
#include "schema/builtin_schemas.hpp"
#include "schema/yaml_lite.hpp"
#include "support/strings.hpp"

namespace llhsc::server {

namespace {

StoreStats stats_delta(const StoreStats& before, const StoreStats& after) {
  StoreStats d;
  d.hits = after.hits - before.hits;
  d.misses = after.misses - before.misses;
  d.evictions = after.evictions - before.evictions;
  d.tree_parses = after.tree_parses - before.tree_parses;
  d.delta_parses = after.delta_parses - before.delta_parses;
  d.model_parses = after.model_parses - before.model_parses;
  d.product_line_builds =
      after.product_line_builds - before.product_line_builds;
  d.derives = after.derives - before.derives;
  d.unit_checks = after.unit_checks - before.unit_checks;
  d.graph_builds = after.graph_builds - before.graph_builds;
  d.cross_checks = after.cross_checks - before.cross_checks;
  d.lifted_checks = after.lifted_checks - before.lifted_checks;
  return d;
}

/// CheckRequest carrying the session's per-unit checker options. The
/// cross-reference engine is off to match the pipeline's stage set.
CheckRequest unit_check_request(const SessionRequest& request) {
  CheckRequest cr;
  cr.lint = request.lint;
  cr.crossref = false;
  cr.graph = request.graph;
  cr.syntax = request.syntax;
  cr.semantics = request.semantics;
  cr.backend = request.backend;
  cr.schemas_text = request.schemas_text;
  cr.solver_timeout_ms = request.solver_timeout_ms;
  cr.plan = request.plan;
  cr.cache_dir = request.cache_dir;
  return cr;
}

}  // namespace

SessionOutcome run_session_check(const SessionRequest& request,
                                 ArtifactStore& store) {
  SessionOutcome out;
  const StoreStats before = store.stats();
  auto finish = [&]() {
    out.cost = stats_delta(before, store.stats());
    return out;
  };

  dts::SourceManager sources;
  for (const auto& [name, content] : request.includes) {
    sources.register_file(name, content);
  }
  if (!request.base_directory.empty()) {
    sources.set_base_directory(request.base_directory);
  }

  auto core = store.tree(request.core_source, request.core_name, sources);
  if (core->parse_errors) {
    out.error_text += core->diagnostics_text;
    out.exit_code = 1;
    return finish();
  }
  auto deltas = store.deltas(request.deltas_source, request.deltas_name);
  if (deltas->parse_errors) {
    out.error_text += deltas->diagnostics_text;
    out.exit_code = 1;
    return finish();
  }
  auto pl = store.product_line(*core, *deltas);
  if (pl == nullptr || pl->product_line == nullptr) {
    out.error_text += "cannot build product line\n";
    out.exit_code = 1;
    return finish();
  }

  const CheckRequest unit_request = unit_check_request(request);

  // Schema-set parse errors reject the whole request up front, exactly once
  // — never from inside a cached verdict.
  schema::SchemaSet schemas;
  if (request.syntax) {
    if (!request.schemas_text.empty()) {
      support::DiagnosticEngine diags;
      schema::load_schema_stream(request.schemas_text, schemas, diags);
      if (diags.has_errors()) {
        out.error_text += diags.render();
        out.exit_code = 2;
        return finish();
      }
    } else {
      schemas = schema::builtin_schemas();
    }
  }

  // -- Allocation (global over every product, like the pipeline's stage 1) --
  if (request.check_allocation) {
    if (request.model_source.empty()) {
      out.error_text += "check_allocation requires a feature model\n";
      out.exit_code = 2;
      return finish();
    }
    auto model = store.model(request.model_source, request.model_name);
    if (model->parse_errors || model->model == nullptr) {
      out.error_text += model->diagnostics_text;
      out.exit_code = 1;
      return finish();
    }
    std::vector<feature::FeatureId> exclusive;
    for (const std::string& name : request.exclusive) {
      auto id = model->model->find(name);
      if (!id) {
        out.error_text += "unknown exclusive feature '" + name + "'\n";
        out.exit_code = 2;
        return finish();
      }
      exclusive.push_back(*id);
    }
    std::ostringstream ks;
    ks << request.backend << '\n';
    for (const std::string& name : request.exclusive) ks << name << ' ';
    ks << '\n';
    for (const SessionProduct& p : request.products) {
      for (const std::string& f : p.features) ks << f << ' ';
      ks << '\n';
    }
    const uint64_t alloc_key =
        fnv_combine(support::fnv1a64(ks.str()), model->key);
    auto alloc = store.allocation(alloc_key, [&]() {
      AllocationArtifact art;
      art.key = alloc_key;
      checkers::ResourceAllocationChecker rac(
          *model->model, exclusive,
          request.backend == "z3"          ? smt::Backend::kZ3
          : request.backend == "portfolio" ? smt::Backend::kPortfolio
                                           : smt::Backend::kBuiltin);
      std::vector<std::set<std::string>> features;
      features.reserve(request.products.size());
      for (const SessionProduct& p : request.products) {
        features.push_back(p.features);
      }
      art.findings = rac.check(features);
      checkers::sort_by_location(art.findings);
      return art;
    });
    SessionUnitResult unit;
    unit.name = "*";
    unit.errors = checkers::error_count(alloc->findings);
    unit.warnings = alloc->findings.size() - unit.errors;
    unit.report = checkers::render(alloc->findings);
    out.units.push_back(std::move(unit));
  }

  // -- Lifted family analysis: one unit whose verdict covers EVERY
  // configuration. The key composes the core, every delta module in
  // declaration order (the family depends on all of them — there is no
  // per-product subset to scope to), the model, and the lifted options, so
  // editing any input re-runs exactly one family analysis and everything
  // else stays cached.
  if (request.check_lifted) {
    if (request.model_source.empty()) {
      out.error_text += "check_lifted requires a feature model\n";
      out.exit_code = 2;
      return finish();
    }
    auto model = store.model(request.model_source, request.model_name);
    if (model->parse_errors || model->model == nullptr) {
      out.error_text += model->diagnostics_text;
      out.exit_code = 1;
      return finish();
    }
    std::ostringstream ks;
    ks << request.backend << '\n' << request.lifted_max_configs << '\n';
    for (const std::string& name : request.exclusive) ks << name << ' ';
    uint64_t lifted_key =
        fnv_combine(support::fnv1a64(ks.str()), 0x6c696674u /*"lift"*/);
    lifted_key = fnv_combine(lifted_key, pl->key);
    lifted_key = fnv_combine(lifted_key, model->key);
    SessionUnitResult unit;
    unit.name = "*lifted*";
    auto verdict = store.lifted_check(
        lifted_key,
        [&]() {
          CheckArtifact art;
          art.key = lifted_key;
          lift::LiftOptions opts;
          opts.backend = request.backend == "z3" ? smt::Backend::kZ3
                         : request.backend == "portfolio"
                             ? smt::Backend::kPortfolio
                             : smt::Backend::kBuiltin;
          opts.max_configs = request.lifted_max_configs;
          opts.exclusive_features = request.exclusive;
          support::DiagnosticEngine diags;
          lift::LiftedResult lifted = lift::check_family(
              *pl->product_line, *model->model, opts, diags);
          art.findings = lift::flatten(lifted);
          if (!lifted.ok) {
            checkers::Finding refused;
            refused.kind = checkers::FindingKind::kDeriveFailure;
            refused.subject = "*lifted*";
            refused.message =
                "lifted analysis incomplete or refused: " + diags.render();
            art.findings.push_back(std::move(refused));
          }
          return art;
        },
        &unit.check_cache_hit);
    unit.errors = checkers::error_count(verdict->findings);
    unit.warnings = verdict->findings.size() - unit.errors;
    unit.report = checkers::render(verdict->findings);
    out.units.push_back(std::move(unit));
  }

  // -- Per-product units, platform (union of selections) last --
  std::vector<SessionProduct> units = request.products;
  if (request.check_platform) {
    SessionProduct platform;
    platform.name = "platform";
    for (const SessionProduct& p : request.products) {
      platform.features.insert(p.features.begin(), p.features.end());
    }
    units.push_back(std::move(platform));
  }

  const delta::ProductLine& product_line = *pl->product_line;
  const std::vector<delta::DeltaModule>& modules = product_line.deltas();

  struct ProductGraphInput {
    std::string name;
    uint64_t composed_key;
    std::shared_ptr<const ComposedArtifact> composed;
  };
  std::vector<ProductGraphInput> product_graphs;

  for (const SessionProduct& product : units) {
    support::DiagnosticEngine order_diags;
    auto order = product_line.application_order(product.features, order_diags);
    if (!order) {
      out.error_text += order_diags.render();
      out.exit_code = 1;
      continue;
    }

    // The composed key names exactly the modules this product applies, in
    // application order — the heart of per-unit invalidation.
    uint64_t composed_key = fnv_combine(core->key, 0x636f6d70u /*"comp"*/);
    for (const delta::DeltaModule* m : *order) {
      const size_t idx = static_cast<size_t>(m - modules.data());
      composed_key = fnv_combine(composed_key, deltas->module_keys[idx]);
    }

    SessionUnitResult unit;
    unit.name = product.name;
    auto composed = store.composed(
        composed_key,
        [&]() {
          ComposedArtifact art;
          art.key = composed_key;
          support::DiagnosticEngine diags;
          auto tree = product_line.derive(product.features, diags);
          art.tree = std::shared_ptr<const dts::Tree>(std::move(tree));
          art.diagnostics_text = diags.render();
          art.derive_errors = art.tree == nullptr || diags.has_errors();
          if (art.tree != nullptr) art.dts_text = dts::print_dts(*art.tree);
          return art;
        },
        &unit.composed_cache_hit);
    if (composed->derive_errors || composed->tree == nullptr) {
      out.error_text += composed->diagnostics_text;
      out.exit_code = 1;
      out.units.push_back(std::move(unit));
      continue;
    }

    const uint64_t check_key =
        fnv_combine(check_options_fingerprint(unit_request), composed_key);
    auto verdict = store.unit_check(
        check_key,
        [&]() {
          // The unit's device graph is a separate keyed artifact under the
          // composed key: a one-delta edit re-derives exactly the affected
          // units' composed trees, and therefore exactly their graphs.
          std::shared_ptr<const GraphArtifact> graph_artifact;
          if (unit_request.graph) {
            graph_artifact = store.graph(composed_key, composed->tree);
          }
          CheckArtifact art = run_checkers(
              *composed->tree, unit_request,
              unit_request.syntax ? &schemas : nullptr,
              graph_artifact != nullptr ? graph_artifact->graph.get()
                                        : nullptr);
          art.key = check_key;
          checkers::sort_by_location(art.findings);
          return art;
        },
        &unit.check_cache_hit);
    unit.errors = checkers::error_count(verdict->findings);
    unit.warnings = verdict->findings.size() - unit.errors;
    unit.report = checkers::render(verdict->findings);
    out.units.push_back(std::move(unit));

    if (request.graph && product.name != "platform") {
      product_graphs.push_back({product.name, composed_key, composed});
    }
  }

  // -- Cross-unit graph analysis: two VMs claiming one exclusive provider.
  // Cached under the fold of every product's composed key (order matters),
  // so only a change to some product's tree recomputes it; the per-unit
  // graphs it reads are the same keyed artifacts the unit checks built.
  if (request.graph && product_graphs.size() >= 2) {
    uint64_t cross_key = fnv_combine(
        check_options_fingerprint(unit_request), 0x78756e69u /*"xuni"*/);
    for (const ProductGraphInput& pg : product_graphs) {
      cross_key = fnv_combine(support::fnv1a64(pg.name, cross_key),
                              pg.composed_key);
    }
    bool cross_hit = false;
    auto cross = store.cross_check(
        cross_key,
        [&]() {
          CheckArtifact art;
          art.key = cross_key;
          std::vector<std::shared_ptr<const GraphArtifact>> artifacts;
          std::vector<checkers::graph::UnitGraph> unit_graphs;
          for (const ProductGraphInput& pg : product_graphs) {
            auto ga = store.graph(pg.composed_key, pg.composed->tree);
            if (ga == nullptr || ga->graph == nullptr) continue;
            unit_graphs.push_back({pg.name, ga->graph.get()});
            artifacts.push_back(std::move(ga));
          }
          art.findings = checkers::graph::check_exclusive_providers(
              unit_graphs);
          checkers::sort_by_location(art.findings);
          return art;
        },
        &cross_hit);
    if (!cross->findings.empty()) {
      SessionUnitResult unit;
      unit.name = "*graph*";
      unit.check_cache_hit = cross_hit;
      unit.errors = checkers::error_count(cross->findings);
      unit.warnings = cross->findings.size() - unit.errors;
      unit.report = checkers::render(cross->findings);
      out.units.push_back(std::move(unit));
    }
  }

  if (out.exit_code == 0) {
    for (const SessionUnitResult& u : out.units) {
      if (u.errors > 0) {
        out.exit_code = 1;
        break;
      }
    }
  }
  return finish();
}

}  // namespace llhsc::server

// The forked worker process body behind the llhscd supervisor. Each worker
// owns a private ArtifactStore and thread pool and serves request envelopes
// on its socketpair channel until EOF (the supervisor's drain signal), then
// finishes in-flight work and exits 0.
//
// Channel protocol (line-delimited JSON, one envelope per line):
//
//   down: {"seq": N, "line": "<exact client request line>"}
//       | {"seq": N, "ctl": "stats"}
//   up:   {"seq": N, "code": "<error code or ''>",
//          "line": "<exact response line, newline stripped>"}
//       | {"seq": N, "stats": {checks, sessions, check_counters, store}}
//
// The response embedded in "line" is produced by the same runner.hpp code
// the in-process mode uses (same field order, same schema_version stamp),
// and the supervisor relays it to the client verbatim — byte-identity with
// the one-shot CLI needs no cross-process coordination. "code" duplicates
// the error code (empty on success) so the supervisor can count rejections
// without re-parsing the response.
#pragma once

#include "server/server.hpp"

namespace llhsc::server {

/// Runs the worker loop on `channel_fd`. Returns the process exit code.
/// `index` names the worker in log lines ("llhscd[w<index>]: ...").
int worker_main(int channel_fd, const ServerOptions& options, unsigned index);

}  // namespace llhsc::server

#include "server/artifact_store.hpp"

#include <sstream>

#include "dts/printer.hpp"
#include "feature/text_format.hpp"
#include "obs/obs.hpp"
#include "support/strings.hpp"

namespace llhsc::server {

uint64_t fnv_combine(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

uint64_t delta_module_fingerprint(const delta::DeltaModule& m) {
  std::ostringstream os;
  os << m.name << '\n' << m.when.to_string() << '\n';
  for (const std::string& a : m.after) os << a << ' ';
  os << '\n';
  for (const delta::Operation& op : m.operations) {
    os << delta::to_string(op.kind) << ' ' << op.target << ' '
       << op.property_name << '\n';
    if (op.body != nullptr) os << dts::print_node(*op.body);
  }
  return support::fnv1a64(os.str());
}

// -- Cache<T> -----------------------------------------------------------

template <typename T>
std::shared_ptr<const T> ArtifactStore::Cache<T>::lookup(uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : it->second;
}

template <typename T>
std::shared_ptr<const T> ArtifactStore::Cache<T>::build_or_wait(
    uint64_t key, const Build& build, size_t capacity, bool& built,
    uint64_t& evictions) {
  std::shared_ptr<InFlight> flight;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = building_.find(key);
    if (it != building_.end()) {
      // Another worker is already producing this artifact: share its build.
      flight = it->second;
      ready_.wait(lock, [&] { return flight->done; });
      built = false;
      return flight->value;
    }
    flight = std::make_shared<InFlight>();
    building_.emplace(key, flight);
  }

  std::shared_ptr<const T> value;
  try {
    value = build();
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    flight->done = true;
    building_.erase(key);
    ready_.notify_all();
    throw;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (value != nullptr) {
      auto [it, fresh] = entries_.insert_or_assign(key, value);
      (void)it;
      if (fresh) order_.push_back(key);
      while (entries_.size() > capacity && !order_.empty()) {
        uint64_t victim = order_.front();
        order_.pop_front();
        if (victim == key) {
          order_.push_back(victim);  // never evict what we just published
          continue;
        }
        if (entries_.erase(victim) > 0) ++evictions;
      }
    }
    flight->value = value;
    flight->done = true;
    building_.erase(key);
    ready_.notify_all();
  }
  built = true;
  return value;
}

// -- ArtifactStore ------------------------------------------------------

ArtifactStore::ArtifactStore(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

template <typename T>
std::shared_ptr<const T> ArtifactStore::get_or_build(
    Cache<T>& cache, uint64_t key,
    const std::function<std::shared_ptr<const T>()>& build, bool* was_hit,
    uint64_t StoreStats::* built_counter) {
  if (auto cached = cache.lookup(key)) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.hits;
    }
    obs::count("store.hit", "store", 1);
    if (was_hit != nullptr) *was_hit = true;
    return cached;
  }
  bool built = false;
  uint64_t evictions = 0;
  auto value = cache.build_or_wait(key, build, capacity_, built, evictions);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.evictions += evictions;
    if (built) {
      ++stats_.misses;
      ++(stats_.*built_counter);
    } else {
      ++stats_.hits;  // piggybacked on another worker's build
    }
  }
  obs::count("store.eviction", "store", static_cast<int64_t>(evictions));
  obs::count(built ? "store.miss" : "store.hit", "store", 1);
  if (was_hit != nullptr) *was_hit = !built;
  return value;
}

std::shared_ptr<const TreeArtifact> ArtifactStore::tree(
    const std::string& source, const std::string& filename,
    dts::SourceManager& sources, bool* was_hit) {
  const uint64_t key =
      support::fnv1a64(source, support::fnv1a64(filename) ^ 0x7472U /*"tr"*/);

  // A cached tree is fresh only if every include it loaded still has the
  // same content — the dependency edges content-addressing alone can't see.
  auto validate = [&](const TreeArtifact& a) {
    for (const auto& [name, hash] : a.includes) {
      auto content = sources.load(name);
      if (!content || support::fnv1a64(*content) != hash) return false;
    }
    return true;
  };

  if (auto cached = trees_.lookup(key); cached != nullptr && validate(*cached)) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.hits;
    }
    obs::count("store.hit", "store", 1);
    if (was_hit != nullptr) *was_hit = true;
    return cached;
  }

  auto build = [&]() -> std::shared_ptr<TreeArtifact> {
    auto artifact = std::make_shared<TreeArtifact>();
    artifact->key = key;
    sources.set_load_observer([&](const std::string& name,
                                  const std::string& content) {
      artifact->includes.emplace_back(name, support::fnv1a64(content));
    });
    support::DiagnosticEngine diags;
    auto parsed = dts::parse_dts(source, filename, sources, diags);
    sources.set_load_observer({});
    artifact->tree = std::move(parsed);
    artifact->diagnostics_text = diags.render();
    artifact->parse_errors = artifact->tree == nullptr || diags.has_errors();
    // The artifact's key folds in every include edge. The cache slot above
    // is addressed by (source, filename) alone, so an include edit re-parses
    // under the same slot — but derived keys (product lines, composed trees,
    // check verdicts) start from artifact->key and must see the new include
    // content, or they would resolve to verdicts computed over the old text.
    for (const auto& [name, hash] : artifact->includes) {
      artifact->key = fnv_combine(support::fnv1a64(name, artifact->key), hash);
    }
    return artifact;
  };

  bool built = false;
  uint64_t evictions = 0;
  auto value = trees_.build_or_wait(key, build, capacity_, built, evictions);
  // A waiter shares the builder's parse; its include edges were recorded
  // against the builder's sources, but the content hashes are what matter
  // and both requests supplied the same main source (same key).
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.evictions += evictions;
    if (built) {
      ++stats_.misses;
      ++stats_.tree_parses;
    } else {
      ++stats_.hits;
    }
  }
  obs::count("store.eviction", "store", static_cast<int64_t>(evictions));
  obs::count(built ? "store.miss" : "store.hit", "store", 1);
  if (was_hit != nullptr) *was_hit = !built;
  return value;
}

std::shared_ptr<const DeltaArtifact> ArtifactStore::deltas(
    const std::string& source, const std::string& filename, bool* was_hit) {
  const uint64_t key =
      support::fnv1a64(source, support::fnv1a64(filename) ^ 0x646cU /*"dl"*/);
  return get_or_build<DeltaArtifact>(
      deltas_, key,
      [&]() {
        auto artifact = std::make_shared<DeltaArtifact>();
        artifact->key = key;
        support::DiagnosticEngine diags;
        artifact->modules = delta::parse_deltas(source, filename, diags);
        artifact->module_keys.reserve(artifact->modules.size());
        for (const delta::DeltaModule& m : artifact->modules) {
          artifact->module_keys.push_back(delta_module_fingerprint(m));
        }
        artifact->diagnostics_text = diags.render();
        artifact->parse_errors = diags.has_errors();
        return artifact;
      },
      was_hit, &StoreStats::delta_parses);
}

std::shared_ptr<const ModelArtifact> ArtifactStore::model(
    const std::string& source, const std::string& filename, bool* was_hit) {
  const uint64_t key =
      support::fnv1a64(source, support::fnv1a64(filename) ^ 0x666dU /*"fm"*/);
  return get_or_build<ModelArtifact>(
      models_, key,
      [&]() {
        auto artifact = std::make_shared<ModelArtifact>();
        artifact->key = key;
        support::DiagnosticEngine diags;
        auto model = feature::parse_model(source, filename, diags);
        if (model) {
          artifact->model =
              std::make_shared<const feature::FeatureModel>(std::move(*model));
        }
        artifact->diagnostics_text = diags.render();
        artifact->parse_errors = artifact->model == nullptr || diags.has_errors();
        return artifact;
      },
      was_hit, &StoreStats::model_parses);
}

std::shared_ptr<const ProductLineArtifact> ArtifactStore::product_line(
    const TreeArtifact& core, const DeltaArtifact& deltas, bool* was_hit) {
  const uint64_t key = fnv_combine(fnv_combine(0xcbf29ce484222325ull, core.key),
                                   deltas.key);
  return get_or_build<ProductLineArtifact>(
      product_lines_, key,
      [&]() -> std::shared_ptr<ProductLineArtifact> {
        if (core.tree == nullptr) return nullptr;
        auto artifact = std::make_shared<ProductLineArtifact>();
        artifact->key = key;
        artifact->product_line = std::make_shared<const delta::ProductLine>(
            core.tree->clone(), deltas.modules);
        return artifact;
      },
      was_hit, &StoreStats::product_line_builds);
}

std::shared_ptr<const ComposedArtifact> ArtifactStore::composed(
    uint64_t key, const std::function<ComposedArtifact()>& build,
    bool* was_hit) {
  return get_or_build<ComposedArtifact>(
      composed_, key,
      [&]() {
        return std::make_shared<const ComposedArtifact>(build());
      },
      was_hit, &StoreStats::derives);
}

std::shared_ptr<const CheckArtifact> ArtifactStore::unit_check(
    uint64_t key, const std::function<CheckArtifact()>& build, bool* was_hit) {
  return get_or_build<CheckArtifact>(
      checks_, key,
      [&]() { return std::make_shared<const CheckArtifact>(build()); },
      was_hit, &StoreStats::unit_checks);
}

std::shared_ptr<const CheckArtifact> ArtifactStore::cross_check(
    uint64_t key, const std::function<CheckArtifact()>& build, bool* was_hit) {
  return get_or_build<CheckArtifact>(
      checks_, key,
      [&]() { return std::make_shared<const CheckArtifact>(build()); },
      was_hit, &StoreStats::cross_checks);
}

std::shared_ptr<const CheckArtifact> ArtifactStore::lifted_check(
    uint64_t key, const std::function<CheckArtifact()>& build, bool* was_hit) {
  return get_or_build<CheckArtifact>(
      checks_, key,
      [&]() { return std::make_shared<const CheckArtifact>(build()); },
      was_hit, &StoreStats::lifted_checks);
}

std::shared_ptr<const GraphArtifact> ArtifactStore::graph(
    uint64_t tree_key, const std::shared_ptr<const dts::Tree>& source,
    bool* was_hit) {
  // Salted so a graph key can never collide with the unit-check key derived
  // from the same tree key.
  const uint64_t key = fnv_combine(tree_key, 0x67726170U /*"grap"*/);
  return get_or_build<GraphArtifact>(
      graphs_, key,
      [&]() -> std::shared_ptr<GraphArtifact> {
        if (source == nullptr) return nullptr;
        auto artifact = std::make_shared<GraphArtifact>();
        artifact->key = key;
        artifact->graph =
            std::make_shared<const checkers::graph::DeviceGraph>(
                checkers::graph::DeviceGraph::build(*source));
        artifact->source = source;
        return artifact;
      },
      was_hit, &StoreStats::graph_builds);
}

std::shared_ptr<const AllocationArtifact> ArtifactStore::allocation(
    uint64_t key, const std::function<AllocationArtifact()>& build,
    bool* was_hit) {
  return get_or_build<AllocationArtifact>(
      allocations_, key,
      [&]() { return std::make_shared<const AllocationArtifact>(build()); },
      was_hit, &StoreStats::unit_checks);
}

StoreStats ArtifactStore::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace llhsc::server

#include "server/check_service.hpp"

#include <algorithm>
#include <functional>
#include <sstream>

#include "checkers/crossref/rules.hpp"
#include "checkers/graph/rules.hpp"
#include "checkers/lint.hpp"
#include "checkers/report.hpp"
#include "checkers/semantic.hpp"
#include "checkers/suppress.hpp"
#include "checkers/syntactic.hpp"
#include "dts/parser.hpp"
#include "obs/obs.hpp"
#include "obs/summary.hpp"
#include "schema/builtin_schemas.hpp"
#include "schema/yaml_lite.hpp"
#include "support/strings.hpp"

namespace llhsc::server {

namespace {

smt::Backend resolve_backend(const CheckRequest& request,
                             std::string& error_text) {
  if (request.backend == "z3") return smt::Backend::kZ3;
  if (request.backend == "portfolio") return smt::Backend::kPortfolio;
  if (request.backend != "builtin") {
    error_text += "warning: unknown backend '" + request.backend +
                  "', using builtin\n";
  }
  return smt::Backend::kBuiltin;
}

/// The CLI's --disable-rule / --rule-severity mapping, error text included
/// byte-for-byte (one shared parser, checkers/crossref/rules.cpp). nullopt
/// means reject with exit 2.
std::optional<checkers::crossref::CrossRefOptions> crossref_options_from(
    const CheckRequest& request, std::string& error_text) {
  return checkers::crossref::parse_rule_options(
      request.disable_rule, request.rule_severity, error_text);
}

void render_outcome(const CheckRequest& request,
                    const checkers::Findings& findings, CheckOutcome& out) {
  out.errors = checkers::error_count(findings);
  out.warnings = findings.size() - out.errors;
  if (request.format == "json") {
    out.output += checkers::report_json(findings) + "\n";
  } else if (request.format == "sarif") {
    out.output += checkers::to_sarif(findings, request.path);
  } else {
    if (!request.quiet) out.output += checkers::render(findings);
    out.output += request.path + ": " + std::to_string(out.errors) +
                  " error(s), " + std::to_string(out.warnings) +
                  " warning(s)\n";
  }
  out.exit_code = out.errors == 0 ? 0 : 1;
}

void append_stats_line(const CheckRequest& request, const CheckArtifact& art,
                       size_t suppressed, CheckOutcome& out) {
  // With --no-semantics the solver counters are all zero, but the line still
  // prints: the suppressed count is meaningful for every stage.
  if (!request.stats) return;
  out.error_text += "semantic solver checks: " +
                    std::to_string(art.solver_checks) +
                    ", queries issued: " + std::to_string(art.queries_issued) +
                    ", queries pruned: " + std::to_string(art.queries_pruned) +
                    ", cache hits: " + std::to_string(art.cache_hits) +
                    ", cache errors: " + std::to_string(art.cache_errors) +
                    ", suppressed: " + std::to_string(suppressed) + "\n";
}

}  // namespace

uint64_t check_options_fingerprint(const CheckRequest& request) {
  std::ostringstream os;
  os << request.backend << '\n'
     << request.lint << request.crossref << request.graph << request.syntax
     << request.semantics << '\n'
     << request.disable_rule << '\n'
     << request.rule_severity << '\n'
     << support::fnv1a64(request.schemas_text) << '\n'
     << request.solver_timeout_ms << '\n'
     << request.plan << '\n'
     << request.cache_dir << '\n';
  return support::fnv1a64(os.str());
}

CheckArtifact run_checkers(const dts::Tree& tree, const CheckRequest& request,
                           const schema::SchemaSet* schemas,
                           const checkers::graph::DeviceGraph* graph) {
  CheckArtifact art;
  std::string scratch;  // backend warning already emitted by run_check
  const smt::Backend backend = resolve_backend(request, scratch);

  // The battery records into a local sink first: the artifact's counters are
  // a reduction of that stream (the same obs::reduce behind --trace-json and
  // the daemon stats reply), and the raw events then splice into whatever
  // sink the caller installed so --profile sees per-query spans too.
  obs::TraceSink* outer = obs::current_sink();
  obs::TraceSink local;
  {
    obs::ScopedSink sink_guard(&local);
    auto run_stage = [&](const char* stage, const char* span_name,
                         const std::function<checkers::Findings()>& fn) {
      obs::ScopedScope scope_guard(stage);
      obs::Span span(span_name, "stage");
      checkers::Findings f = fn();
      obs::count("stage.findings", "stage", static_cast<int64_t>(f.size()));
      art.findings.insert(art.findings.end(), f.begin(), f.end());
    };

    if (request.lint) {
      run_stage("lint", "stage.lint",
                [&] { return checkers::LintChecker().check(tree); });
    }
    if (request.crossref) {
      run_stage("crossref", "stage.crossref", [&] {
        auto xopts = crossref_options_from(request, scratch);
        checkers::crossref::CrossRefChecker checker(
            xopts ? *xopts : checkers::crossref::CrossRefOptions{});
        return checker.check(tree);
      });
    }
    if (request.graph) {
      run_stage("graph", "stage.graph", [&] {
        auto xopts = crossref_options_from(request, scratch);
        checkers::graph::GraphChecker checker(
            xopts ? *xopts : checkers::graph::RuleOptions{});
        if (graph != nullptr) return checker.check(*graph);
        const checkers::graph::DeviceGraph built =
            checkers::graph::DeviceGraph::build(tree);
        return checker.check(built);
      });
    }
    if (request.syntax && schemas != nullptr) {
      run_stage("syntactic", "stage.syntactic", [&] {
        checkers::SyntacticChecker checker(*schemas, backend);
        return checker.check(tree);
      });
    }
    if (request.semantics) {
      run_stage("semantic", "stage.semantic", [&] {
        checkers::SemanticOptions sem_options;
        sem_options.solver_timeout_ms = request.solver_timeout_ms;
        sem_options.plan = request.plan;
        sem_options.cache_dir = request.cache_dir;
        checkers::SemanticChecker checker(backend, sem_options);
        return checker.check(tree);
      });
    }
  }

  std::vector<obs::Event> events = local.take();
  const obs::Summary summary = obs::reduce(events);
  // The verdict counters keep their historical meaning: solver/planner work
  // of the *semantic* stage (the syntactic checker's solver calls were never
  // part of the --stats line).
  auto semantic = [&](const char* name) {
    int64_t v = summary.scoped("semantic", name);
    return v < 0 ? 0u : static_cast<uint64_t>(v);
  };
  art.solver_checks = semantic("solver.checks");
  art.queries_issued = semantic("planner.queries_issued");
  art.queries_pruned = semantic("planner.queries_pruned");
  art.cache_hits = semantic("planner.cache_hits");
  art.cache_errors = semantic("planner.cache_errors");
  if (outer != nullptr) outer->extend(std::move(events));
  return art;
}

CheckOutcome run_check(const CheckRequest& request, ArtifactStore* store) {
  CheckOutcome out;

  if (request.format != "text" && request.format != "json" &&
      request.format != "sarif") {
    out.error_text +=
        "unknown --format '" + request.format + "' (want text|json|sarif)\n";
    out.exit_code = 2;
    return out;
  }
  if (!crossref_options_from(request, out.error_text)) {
    out.exit_code = 2;
    return out;
  }
  // Baseline validation is a usage check: a malformed file is exit 2 before
  // any (potentially cached) verdict work happens.
  checkers::SuppressionIndex suppressions;
  if (!request.baseline_text.empty()) {
    std::string error;
    if (!suppressions.load_baseline(request.baseline_text, error)) {
      out.error_text += "bad --baseline file: " + error + "\n";
      out.exit_code = 2;
      return out;
    }
  }

  // Parse — identical failure contract to the CLI's parse_file_or_die:
  // exit 1 with the rendered diagnostics; parse *warnings* on a usable tree
  // are not rendered.
  dts::SourceManager sources;
  for (const auto& [name, content] : request.includes) {
    sources.register_file(name, content);
  }
  if (!request.base_directory.empty()) {
    sources.set_base_directory(request.base_directory);
  }

  std::shared_ptr<const TreeArtifact> tree_artifact;
  if (store != nullptr) {
    tree_artifact =
        store->tree(request.source, request.path, sources,
                    &out.trace.tree_cache_hit);
  } else {
    auto artifact = std::make_shared<TreeArtifact>();
    support::DiagnosticEngine diags;
    auto parsed = dts::parse_dts(request.source, request.path, sources, diags);
    artifact->tree = std::move(parsed);
    artifact->diagnostics_text = diags.render();
    artifact->parse_errors = artifact->tree == nullptr || diags.has_errors();
    tree_artifact = artifact;
  }
  if (tree_artifact->parse_errors) {
    out.error_text += tree_artifact->diagnostics_text;
    out.exit_code = 1;
    return out;
  }

  // The backend warning is emitted here — after the parse, like the CLI.
  std::string backend_warning;
  resolve_backend(request, backend_warning);
  out.error_text += backend_warning;

  // Schema-set resolution before the (cacheable) checker battery, so an
  // exit-2 never has to come out of a cached verdict. Matches the CLI's
  // lazy schemas_from(): parse errors surface only when syntax runs.
  schema::SchemaSet schemas;
  if (request.syntax) {
    if (!request.schemas_text.empty()) {
      support::DiagnosticEngine diags;
      schema::load_schema_stream(request.schemas_text, schemas, diags);
      if (diags.has_errors()) {
        out.error_text += diags.render();
        out.exit_code = 2;
        return out;
      }
    } else {
      schemas = schema::builtin_schemas();
    }
  }

  std::shared_ptr<const CheckArtifact> verdict;
  if (store != nullptr) {
    // tree_artifact->key is include-aware (see TreeArtifact::key): an
    // edited .dtsi re-parses the tree *and* lands here as a new verdict key.
    const uint64_t key = fnv_combine(check_options_fingerprint(request),
                                     tree_artifact->key);
    verdict = store->unit_check(
        key,
        [&]() {
          // The device graph is its own keyed artifact (option-independent),
          // fetched only when the verdict actually rebuilds — a cache-hit
          // request never builds a graph.
          std::shared_ptr<const GraphArtifact> graph_artifact;
          if (request.graph) {
            graph_artifact = store->graph(tree_artifact->key,
                                          tree_artifact->tree);
          }
          CheckArtifact art = run_checkers(
              *tree_artifact->tree, request,
              request.syntax ? &schemas : nullptr,
              graph_artifact != nullptr ? graph_artifact->graph.get()
                                        : nullptr);
          art.key = key;
          return art;
        },
        &out.trace.check_cache_hit);
  } else {
    verdict = std::make_shared<const CheckArtifact>(run_checkers(
        *tree_artifact->tree, request, request.syntax ? &schemas : nullptr));
  }

  // Suppression runs over a copy of the (possibly cached) verdict: inline
  // `// llhsc-disable-next-line` comments from every source the findings
  // touch, plus the baseline loaded above. Verdict artifacts stay pristine.
  checkers::Findings findings = verdict->findings;
  size_t suppressed = 0;
  if (!findings.empty()) {
    suppressions.add_source(request.path, request.source);
    std::vector<std::string> scanned = {request.path};
    for (const auto& [name, content] : request.includes) {
      suppressions.add_source(name, content);
      scanned.push_back(name);
    }
    for (const checkers::Finding& f : findings) {
      if (!f.location.valid()) continue;
      if (std::find(scanned.begin(), scanned.end(), f.location.file) !=
          scanned.end()) {
        continue;
      }
      scanned.push_back(f.location.file.str());
      // Disk-resolved includes: the location names the include as the
      // SourceManager registered it.
      if (auto text = sources.load(f.location.file.str())) {
        suppressions.add_source(f.location.file.str(), *text);
      }
    }
    suppressed = suppressions.apply(findings);
    obs::count("suppress.filtered", "suppress",
               static_cast<int64_t>(suppressed));
  }

  append_stats_line(request, *verdict, suppressed, out);
  render_outcome(request, findings, out);
  out.trace.suppressed = suppressed;
  out.trace.solver_checks = verdict->solver_checks;
  out.trace.queries_issued = verdict->queries_issued;
  out.trace.queries_pruned = verdict->queries_pruned;
  out.trace.cache_hits = verdict->cache_hits;
  out.trace.cache_errors = verdict->cache_errors;
  return out;
}

}  // namespace llhsc::server

// The JSON value model moved to support/json.* so the wire protocol, the
// findings report, the pipeline trace and the observability profile all
// share one serialiser (docs/observability.md). This header keeps the old
// llhsc::server spelling alive for existing includes.
#pragma once

#include "support/json.hpp"

namespace llhsc::server {

using support::Json;
using support::json_escape_to;

}  // namespace llhsc::server

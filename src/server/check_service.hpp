// The one-shot `llhsc check` flow as a library call over in-memory sources,
// shared by the CLI and the llhscd daemon. Both callers funnel through
// run_check(), so for identical inputs the daemon's response carries the
// exact stdout/stderr bytes and exit code the one-shot CLI would produce —
// byte-identity by construction, not by parallel maintenance.
//
// With an ArtifactStore the parse and the checker verdict are reused
// content-addressed across requests; the *formatting* always runs fresh from
// the cached findings, so cached and uncached answers are indistinguishable
// on the wire. (One documented exception: the --stats stderr line replays
// the counters of the run that produced the cached verdict.)
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "schema/schema.hpp"
#include "server/artifact_store.hpp"

namespace llhsc::server {

/// Mirrors the `llhsc check` option surface. The caller reads the file (the
/// daemon never touches the client's filesystem for the main source);
/// `path` only labels the report.
struct CheckRequest {
  std::string path;            // report label (the CLI's positional arg)
  std::string source;          // DTS text
  std::string base_directory;  // /include/ resolution root ("" = none)
  /// In-memory includes, shadowing base_directory (name -> content).
  std::vector<std::pair<std::string, std::string>> includes;

  std::string format = "text";  // text|json|sarif
  bool lint = true;
  bool crossref = true;
  bool graph = true;  // device-graph dataflow rules (checkers/graph/)
  bool syntax = true;
  bool semantics = true;
  bool quiet = false;
  bool stats = false;

  std::string backend = "builtin";  // builtin|z3
  std::string schemas_text;         // "" = builtin schema set
  std::string schemas_path;         // label for schema diagnostics
  std::string disable_rule;         // raw CLI comma list
  std::string rule_severity;        // raw CLI comma list
  uint64_t solver_timeout_ms = 0;
  bool plan = true;
  std::string cache_dir;
  /// Content of a --baseline file ("" = none). Applied after the verdict —
  /// and therefore after any cache hit — so baselines never key verdicts.
  std::string baseline_text;
};

/// What the request actually cost, for the daemon's per-request trace.
struct CheckTraceInfo {
  bool tree_cache_hit = false;
  bool check_cache_hit = false;
  uint64_t solver_checks = 0;
  uint64_t queries_issued = 0;
  uint64_t queries_pruned = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_errors = 0;
  /// Findings removed by inline disable comments or the baseline.
  uint64_t suppressed = 0;
};

struct CheckOutcome {
  int exit_code = 0;       // 0 clean, 1 findings/rejected input, 2 usage/I-O
  std::string output;      // exact stdout bytes of the one-shot CLI
  std::string error_text;  // exact stderr bytes of the one-shot CLI
  size_t errors = 0;
  size_t warnings = 0;
  CheckTraceInfo trace;
};

/// Runs the full check flow. `store` may be null (the one-shot CLI path);
/// with a store, parse/verdict artifacts are reused content-addressed.
[[nodiscard]] CheckOutcome run_check(const CheckRequest& request,
                                     ArtifactStore* store);

/// The checker battery of run_check over an already-parsed tree — exposed so
/// the session layer caches per-unit verdicts under composed-tree keys.
/// `schemas` may be null only when request.syntax is false. Crossref rule
/// strings must already be valid (run_check validates; the session layer
/// does not use crossref). `graph` supplies a pre-built device graph for the
/// graph stage (the store's keyed artifact); null builds one on demand when
/// request.graph is set. Returns the artifact body (key left 0; the caller
/// owns keying).
[[nodiscard]] CheckArtifact run_checkers(
    const dts::Tree& tree, const CheckRequest& request,
    const schema::SchemaSet* schemas,
    const checkers::graph::DeviceGraph* graph = nullptr);

/// Canonical fingerprint of every request field that can change the
/// *verdict* (format/quiet/stats excluded — they only change rendering).
[[nodiscard]] uint64_t check_options_fingerprint(const CheckRequest& request);

}  // namespace llhsc::server

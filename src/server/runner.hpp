// The request-execution core of llhscd, factored out of the event loop so
// the in-process mode (thread pool in the front-end process) and the forked
// worker mode (`--workers N`) run the *same* code: JSON params -> typed
// request, deadline clamping, run_check/run_session_check, outcome -> JSON,
// and the exact response-line serialisation (field order + schema_version
// stamp). Byte-identity between the two execution modes — and with the
// one-shot CLI — holds by construction because there is exactly one
// implementation of each step.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "server/artifact_store.hpp"
#include "server/check_service.hpp"
#include "server/json.hpp"
#include "server/session.hpp"
#include "support/deadline.hpp"

namespace llhsc::server {

/// Cumulative check-work counters for `stats`, accumulated from each
/// CheckOutcome's trace in whichever process ran the work. In worker mode
/// every worker keeps its own set and the front end sums them on demand.
struct CheckCounters {
  std::atomic<uint64_t> checks{0};
  std::atomic<uint64_t> sessions{0};
  std::atomic<uint64_t> solver_checks{0};
  std::atomic<uint64_t> queries_issued{0};
  std::atomic<uint64_t> queries_pruned{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_errors{0};
};

[[nodiscard]] CheckRequest check_request_from(const Json& params);
[[nodiscard]] SessionRequest session_request_from(const Json& params);
[[nodiscard]] Json check_outcome_json(const CheckOutcome& outcome);
[[nodiscard]] Json session_outcome_json(const SessionOutcome& outcome);
[[nodiscard]] Json store_stats_json(const StoreStats& s);

/// {"id": id, "ok": true, "result": result} — unstamped.
[[nodiscard]] Json ok_response(const Json& id, Json result);
/// {"id": id, "ok": false, "error": {"code", "message"}} — unstamped.
[[nodiscard]] Json error_response(const Json& id, const std::string& code,
                                  const std::string& message);

/// One response line exactly as the daemon writes it: stamps
/// `schema_version`, compact dump, trailing newline. Takes the document by
/// value because every reply gets the stamp exactly once.
[[nodiscard]] std::string stamp_response_line(Json response,
                                              int schema_version);

/// Runs one admitted check or session request — deadline clamping of the
/// solver budget included — and returns the ok-response document. Callers
/// reject an already-expired deadline *before* calling (so they can count
/// the rejection); this function only bounds the work that runs.
[[nodiscard]] Json execute_request(const std::string& method, const Json& id,
                                   const Json& params,
                                   const support::Deadline& deadline,
                                   ArtifactStore& store,
                                   CheckCounters& counters);

/// FNV-1a shard key over the request's primary content (check: path +
/// source; session: core + deltas identity). Requests for the same source
/// land on the same worker, so its in-memory ArtifactStore stays hot.
[[nodiscard]] uint64_t shard_key(const std::string& method,
                                 const Json& params);

}  // namespace llhsc::server

#include "server/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace llhsc::server::net {

namespace {

std::string errno_text() { return std::strerror(errno); }

bool parse_port(const std::string& text, uint16_t* port, std::string* error) {
  if (text.empty()) {
    *error = "missing port";
    return false;
  }
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      *error = "port '" + text + "' is not a number";
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
    if (value > 65535) {
      *error = "port '" + text + "' is out of range";
      return false;
    }
  }
  *port = static_cast<uint16_t>(value);
  return true;
}

bool resolve_ipv4(const std::string& host, in_addr* out, std::string* error) {
  if (host.empty()) {
    out->s_addr = htonl(INADDR_ANY);
    return true;
  }
  if (host == "localhost") {
    out->s_addr = htonl(INADDR_LOOPBACK);
    return true;
  }
  if (::inet_pton(AF_INET, host.c_str(), out) == 1) return true;
  if (error != nullptr) {
    *error = "cannot parse host '" + host + "' (use a dotted IPv4 address)";
  }
  return false;
}

}  // namespace

bool parse_listen_spec(const std::string& spec, std::string* host,
                       uint16_t* port, std::string* error) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    host->clear();
    return parse_port(spec, port, error);
  }
  *host = spec.substr(0, colon);
  return parse_port(spec.substr(colon + 1), port, error);
}

bool unix_socket_is_live(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return false;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (probe < 0) return false;
  const bool live =
      ::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  ::close(probe);
  return live;
}

int listen_unix(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path too long: " + path;
    return -1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = "cannot create socket: " + errno_text();
    return -1;
  }
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 128) < 0) {
    *error = "cannot bind/listen on " + path + ": " + errno_text();
    ::close(fd);
    return -1;
  }
  return fd;
}

int listen_tcp(const std::string& host, uint16_t port, uint16_t* bound_port,
               std::string* error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (!resolve_ipv4(host, &addr.sin_addr, error)) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = "cannot create TCP socket: " + errno_text();
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 128) < 0) {
    *error = "cannot bind/listen on " + (host.empty() ? "*" : host) + ":" +
             std::to_string(port) + ": " + errno_text();
    ::close(fd);
    return -1;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    *bound_port = ntohs(bound.sin_port);
  } else {
    *bound_port = port;
  }
  return fd;
}

int connect_tcp(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (!resolve_ipv4(host.empty() ? "localhost" : host, &addr.sin_addr,
                    nullptr)) {
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  set_tcp_nodelay(fd);
  return fd;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return -1;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_tcp_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

std::string describe_peer(int fd, bool tcp) {
  if (!tcp) return "unix";
  sockaddr_in peer{};
  socklen_t len = sizeof(peer);
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&peer), &len) != 0) {
    return "tcp";
  }
  char text[INET_ADDRSTRLEN] = {0};
  if (::inet_ntop(AF_INET, &peer.sin_addr, text, sizeof(text)) == nullptr) {
    return "tcp";
  }
  return std::string(text) + ":" + std::to_string(ntohs(peer.sin_port));
}

}  // namespace llhsc::server::net

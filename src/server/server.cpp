#include "server/server.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <iostream>
#include <optional>
#include <thread>
#include <utility>

#include "obs/chrome_trace.hpp"
#include "server/net.hpp"
#include "server/worker.hpp"
#include "support/deadline.hpp"

namespace llhsc::server {

namespace {

using Clock = std::chrono::steady_clock;

/// Stop-pipe bytes: the event loop demultiplexes on the byte value, so one
/// async-signal-safe pipe carries both "drain now" and "child exited".
constexpr char kStopByte = 'T';
constexpr char kChildByte = 'C';

/// The currently-running server's self-pipe write end, for the signal
/// handlers. One daemon per process; a plain sig_atomic_t-sized store is
/// all a handler may touch besides write().
std::atomic<int> g_signal_pipe{-1};

extern "C" void llhscd_signal_handler(int) {
  const int fd = g_signal_pipe.load(std::memory_order_relaxed);
  if (fd >= 0) {
    // The return value is deliberately unused: if the pipe is full a stop
    // byte is already pending.
    [[maybe_unused]] ssize_t n = ::write(fd, &kStopByte, 1);
  }
}

extern "C" void llhscd_sigchld_handler(int) {
  const int fd = g_signal_pipe.load(std::memory_order_relaxed);
  if (fd >= 0) {
    [[maybe_unused]] ssize_t n = ::write(fd, &kChildByte, 1);
  }
}

uint64_t micros_since(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Merges the numeric fields of one worker stats object into an
/// accumulator keyed by field name.
void merge_counter_fields(const Json& source,
                          std::map<std::string, uint64_t>& into) {
  for (const auto& [key, value] : source.fields()) {
    into[key] += value.as_uint(0);
  }
}

}  // namespace

Server::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

Server::Server(ServerOptions options)
    : options_(std::move(options)), store_(options_.store_capacity) {}

Server::~Server() = default;

void Server::log_line(const std::string& text) {
  std::lock_guard<std::mutex> lock(log_mutex_);
  std::ostream& os = options_.log != nullptr ? *options_.log : std::cerr;
  os << text << '\n';
  os.flush();
}

void Server::request_stop() {
  // The lock pairs with run()'s cleanup: the write end is never closed
  // while a stop request is mid-write.
  std::lock_guard<std::mutex> lock(stop_pipe_mutex_);
  const int fd = stop_pipe_write_.load(std::memory_order_acquire);
  if (fd >= 0) {
    [[maybe_unused]] ssize_t n = ::write(fd, &kStopByte, 1);
  }
}

void Server::wake_loop() {
  const int fd = wake_pipe_write_;
  if (fd >= 0) {
    // A full pipe means wake bytes are already pending; the loop will run.
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(fd, &byte, 1);
  }
}

void Server::enqueue_output(const std::shared_ptr<Connection>& conn,
                            const std::string& bytes) {
  {
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    if (conn->closed || conn->fd < 0) return;
    conn->outbuf += bytes;
    // Opportunistic flush: most responses fit the socket buffer and leave
    // nothing for the event loop to do.
    while (!conn->outbuf.empty()) {
      const ssize_t n = ::send(conn->fd, conn->outbuf.data(),
                               conn->outbuf.size(), MSG_NOSIGNAL);
      if (n > 0) {
        conn->outbuf.erase(0, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      // Peer gone: drop the buffered bytes; the verdict stays cached for
      // the next ask. The loop closes the fd.
      conn->closed = true;
      conn->outbuf.clear();
      break;
    }
  }
  wake_loop();
}

void Server::respond(const std::shared_ptr<Connection>& conn, Json response,
                     int schema_version) {
  enqueue_output(conn,
                 stamp_response_line(std::move(response), schema_version));
}

void Server::respond_error(const std::shared_ptr<Connection>& conn,
                           const Json& id, const std::string& code,
                           const std::string& message) {
  respond(conn, error_response(id, code, message));
}

void Server::release_admission(const std::string& tenant) {
  admitted_.fetch_sub(1, std::memory_order_acq_rel);
  if (options_.tenant_quota > 0) {
    std::lock_guard<std::mutex> lock(tenants_mutex_);
    auto it = tenant_admitted_.find(tenant);
    if (it != tenant_admitted_.end() && --it->second == 0) {
      tenant_admitted_.erase(it);
    }
  }
}

// ---------------------------------------------------------------------------
// Request handling
// ---------------------------------------------------------------------------

void Server::handle_line(const std::shared_ptr<Connection>& conn,
                         const std::string& line) {
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  auto parsed = Json::parse(line);
  if (!parsed || !parsed->is_object()) {
    rejected_bad_request_.fetch_add(1, std::memory_order_relaxed);
    respond_error(conn, Json::null(), "bad_request",
                  "request is not a JSON object");
    return;
  }
  const Json request = std::move(*parsed);
  const Json id = request.at("id");
  const std::string method = request.at("method").as_string();

  if (method == "ping") {
    pings_.fetch_add(1, std::memory_order_relaxed);
    Json result = Json::object();
    result.set("pong", Json::boolean(true));
    respond(conn, ok_response(id, std::move(result)));
    return;
  }
  if (method == "hello") {
    handle_hello(conn, id);
    return;
  }
  if (method == "healthz") {
    handle_healthz(conn, id);
    return;
  }
  if (method == "stats") {
    handle_stats(conn, id);
    return;
  }
  if (method == "shutdown") {
    Json result = Json::object();
    result.set("stopping", Json::boolean(true));
    respond(conn, ok_response(id, std::move(result)));
    request_stop();
    return;
  }
  if (method != "check" && method != "session") {
    rejected_bad_request_.fetch_add(1, std::memory_order_relaxed);
    respond_error(conn, id, "bad_request", "unknown method '" + method + "'");
    return;
  }

  if (draining_.load(std::memory_order_acquire)) {
    rejected_shutting_down_.fetch_add(1, std::memory_order_relaxed);
    respond_error(conn, id, "shutting_down",
                  "daemon is draining; retry against a fresh instance");
    return;
  }

  // Bounded admission: overload is an explicit, immediate answer — never an
  // unbounded queue the client cannot see.
  if (admitted_.fetch_add(1, std::memory_order_acq_rel) >=
      options_.queue_limit) {
    admitted_.fetch_sub(1, std::memory_order_acq_rel);
    rejected_overloaded_.fetch_add(1, std::memory_order_relaxed);
    respond_error(conn, id, "overloaded",
                  "admission queue is full (limit " +
                      std::to_string(options_.queue_limit) + ")");
    return;
  }

  // Per-tenant quota on top of the global bound: one noisy tenant cannot
  // starve the rest of the admission budget.
  const std::string tenant = request.at("tenant").as_string();
  if (options_.tenant_quota > 0) {
    std::lock_guard<std::mutex> lock(tenants_mutex_);
    size_t& count = tenant_admitted_[tenant];
    if (count >= options_.tenant_quota) {
      if (count == 0) tenant_admitted_.erase(tenant);
      admitted_.fetch_sub(1, std::memory_order_acq_rel);
      rejected_quota_.fetch_add(1, std::memory_order_relaxed);
      obs::count("server.quota.rejected", "server", 1);
      respond_error(conn, id, "quota_exceeded",
                    "tenant '" + tenant + "' is at its admission quota (" +
                        std::to_string(options_.tenant_quota) + ")");
      return;
    }
    ++count;
  }

  const uint64_t deadline_ms = request.at("deadline_ms").as_uint(0);
  conn->pending.fetch_add(1, std::memory_order_acq_rel);
  if (!slots_.empty()) {
    const Json params = request.at("params");
    const uint64_t seq = next_seq_++;
    Outstanding out;
    out.conn = conn;
    out.id = id;
    out.tenant = tenant;
    out.raw_line = line;
    out.shard = shard_key(method, params);
    out.start_us = obs::now_us();
    outstanding_.emplace(seq, std::move(out));
    obs::count("server.dispatch", "server", 1);
    dispatch_to_worker(seq);
    return;
  }
  run_in_process(conn, id, method, request.at("params"), tenant, deadline_ms);
}

void Server::run_in_process(const std::shared_ptr<Connection>& conn,
                            const Json& id, const std::string& method,
                            const Json& params, const std::string& tenant,
                            uint64_t deadline_ms) {
  if (deadline_ms == 0) deadline_ms = options_.default_deadline_ms;
  const support::Deadline deadline =
      deadline_ms > 0 ? support::Deadline::after_ms(deadline_ms)
                      : support::Deadline();
  // Admission timestamp: when profiling, the gap between this and the pool
  // picking the task up becomes the request.wait span.
  const uint64_t admit_us = obs::now_us();
  pool_->submit([this, conn, id, method, params, tenant, deadline,
                 admit_us]() {
    const Clock::time_point start = Clock::now();
    if (deadline.expired()) {
      rejected_deadline_.fetch_add(1, std::memory_order_relaxed);
      respond_error(conn, id, "deadline_exceeded",
                    "deadline expired before the request was scheduled");
      release_admission(tenant);
      conn->pending.fetch_sub(1, std::memory_order_acq_rel);
      wake_loop();
      log_line("llhscd: " + method + " deadline_exceeded");
      return;
    }
    const bool profiling = !options_.profile_path.empty();
    obs::TraceSink request_sink;
    Json response;
    {
      // Sink first, span second: the span records at block exit while the
      // sink is still installed.
      std::optional<obs::ScopedSink> sink_guard;
      std::optional<obs::Span> service_span;
      if (profiling) {
        const uint64_t service_start_us = obs::now_us();
        sink_guard.emplace(&request_sink);
        obs::record_span(request_sink, "request.wait", "request", admit_us,
                         service_start_us - admit_us, {{"method", method}});
        service_span.emplace("request.service", "request");
        if (service_span->active()) service_span->arg("method", method);
      }
      response =
          execute_request(method, id, params, deadline, store_, counters_);
    }
    if (profiling) profile_sink_.extend(request_sink.take());
    const uint64_t us = micros_since(start);
    latency_.record(us);
    respond(conn, std::move(response));
    release_admission(tenant);
    conn->pending.fetch_sub(1, std::memory_order_acq_rel);
    wake_loop();
    log_line("llhscd: " + method + " ok " + std::to_string(us) + "us");
  });
}

void Server::handle_hello(const std::shared_ptr<Connection>& conn,
                          const Json& id) {
  Json capabilities = Json::array();
  for (const char* method : {"ping", "hello", "check", "session", "stats",
                             "healthz", "shutdown"}) {
    capabilities.push(Json::string(method));
  }
  Json transports = Json::array();
  if (!options_.socket_path.empty()) transports.push(Json::string("unix"));
  if (listen_tcp_fd_ >= 0 || !options_.tcp_listen.empty()) {
    transports.push(Json::string("tcp"));
  }
  Json result = Json::object();
  result.set("protocol_version", Json::integer(kProtocolVersion));
  result.set("capabilities", std::move(capabilities));
  result.set("transports", std::move(transports));
  result.set("workers", Json::unsigned_integer(options_.workers));
  result.set("peer", Json::string(conn->peer));
  respond(conn, ok_response(id, std::move(result)), 2);
}

void Server::handle_healthz(const std::shared_ptr<Connection>& conn,
                            const Json& id) {
  size_t alive = 0;
  for (const WorkerSlot& slot : slots_) {
    if (slot.alive) ++alive;
  }
  Json workers = Json::object();
  workers.set("configured", Json::unsigned_integer(options_.workers));
  workers.set("alive", Json::unsigned_integer(alive));
  workers.set("restarts", Json::unsigned_integer(worker_restarts_));
  // Live worker pids, so operators (and the crash-recovery tests) can
  // target a specific process without scraping logs.
  Json pids = Json::array();
  for (const WorkerSlot& slot : slots_) {
    if (slot.alive) pids.push(Json::integer(slot.pid));
  }
  workers.set("pids", std::move(pids));
  Json result = Json::object();
  result.set("status", Json::string(draining_.load(std::memory_order_acquire)
                                        ? "draining"
                                        : "ok"));
  result.set("workers", std::move(workers));
  result.set("in_flight", Json::unsigned_integer(admitted_.load()));
  result.set("queue_limit", Json::unsigned_integer(options_.queue_limit));
  result.set("tenant_quota", Json::unsigned_integer(options_.tenant_quota));
  result.set("quota_rejected", Json::unsigned_integer(rejected_quota_));
  result.set("worker_failures", Json::unsigned_integer(worker_failures_));
  result.set("requests_total", Json::unsigned_integer(requests_total_));
  respond(conn, ok_response(id, std::move(result)), 2);
}

Json Server::frontend_stats_errors() {
  Json errors = Json::object();
  errors.set("overloaded", Json::unsigned_integer(rejected_overloaded_));
  errors.set("bad_request", Json::unsigned_integer(rejected_bad_request_));
  errors.set("shutting_down",
             Json::unsigned_integer(rejected_shutting_down_));
  errors.set("deadline_exceeded", Json::unsigned_integer(rejected_deadline_));
  return errors;
}

void Server::handle_stats(const std::shared_ptr<Connection>& conn,
                          const Json& id) {
  if (slots_.empty()) {
    // In-process mode answers from local counters — this is the original v1
    // stats reply, byte-identical to previous releases.
    Json latency = Json::object();
    latency.set("count", Json::unsigned_integer(latency_.count()));
    const uint64_t n = latency_.count();
    latency.set("mean_us", Json::unsigned_integer(
                               n == 0 ? 0 : latency_.total_micros() / n));
    latency.set("p50_us",
                Json::unsigned_integer(latency_.percentile_micros(50)));
    latency.set("p95_us",
                Json::unsigned_integer(latency_.percentile_micros(95)));
    // Accumulated from each CheckOutcome's trace, which is itself a
    // reduction of the obs event stream — the same source the one-shot
    // CLI's --stats line reads, so the two surfaces agree by construction.
    Json check_counters = Json::object();
    check_counters.set("solver_checks",
                       Json::unsigned_integer(counters_.solver_checks));
    check_counters.set("queries_issued",
                       Json::unsigned_integer(counters_.queries_issued));
    check_counters.set("queries_pruned",
                       Json::unsigned_integer(counters_.queries_pruned));
    check_counters.set("cache_hits",
                       Json::unsigned_integer(counters_.cache_hits));
    check_counters.set("cache_errors",
                       Json::unsigned_integer(counters_.cache_errors));
    Json result = Json::object();
    result.set("requests_total", Json::unsigned_integer(requests_total_));
    result.set("checks", Json::unsigned_integer(counters_.checks));
    result.set("sessions", Json::unsigned_integer(counters_.sessions));
    result.set("pings", Json::unsigned_integer(pings_));
    result.set("in_flight", Json::unsigned_integer(admitted_.load()));
    result.set("errors", frontend_stats_errors());
    result.set("latency", std::move(latency));
    result.set("check_counters", std::move(check_counters));
    result.set("store", store_stats_json(store_.stats()));
    respond(conn, ok_response(id, std::move(result)));
    return;
  }

  // Worker mode: snapshot every worker's counters asynchronously and merge.
  auto entry = std::make_shared<PendingStats>();
  entry->conn = conn;
  entry->id = id;
  conn->pending.fetch_add(1, std::memory_order_acq_rel);
  for (WorkerSlot& slot : slots_) {
    if (!slot.alive) continue;
    const uint64_t seq = next_seq_++;
    stats_waiters_.emplace(seq, entry);
    entry->waiting += 1;
    send_stats_probe(seq, slot);
  }
  if (entry->waiting == 0) {
    // No worker alive right now; answer with front-end counters only.
    respond_stats_aggregate(entry);
  }
}

void Server::send_stats_probe(uint64_t seq, WorkerSlot& slot) {
  Json envelope = Json::object();
  envelope.set("seq", Json::unsigned_integer(seq));
  envelope.set("ctl", Json::string("stats"));
  std::string line = envelope.dump();
  line += '\n';
  slot.outbuf += line;
  slot.owned.push_back(seq);
  flush_worker(slot);
}

void Server::finish_stats(uint64_t seq, const Json* worker_stats) {
  auto it = stats_waiters_.find(seq);
  if (it == stats_waiters_.end()) return;
  const std::shared_ptr<PendingStats> entry = it->second;
  stats_waiters_.erase(it);
  if (worker_stats != nullptr) {
    entry->checks += worker_stats->at("checks").as_uint(0);
    entry->sessions += worker_stats->at("sessions").as_uint(0);
    merge_counter_fields(worker_stats->at("check_counters"),
                         entry->check_counters);
    merge_counter_fields(worker_stats->at("store"), entry->store);
  }
  if (--entry->waiting == 0) respond_stats_aggregate(entry);
}

void Server::respond_stats_aggregate(
    const std::shared_ptr<PendingStats>& entry) {
  Json errors = frontend_stats_errors();
  errors.set("quota_exceeded", Json::unsigned_integer(rejected_quota_));
  errors.set("worker_failed", Json::unsigned_integer(worker_failures_));
  Json latency = Json::object();
  latency.set("count", Json::unsigned_integer(latency_.count()));
  const uint64_t n = latency_.count();
  latency.set("mean_us",
              Json::unsigned_integer(n == 0 ? 0 : latency_.total_micros() / n));
  latency.set("p50_us",
              Json::unsigned_integer(latency_.percentile_micros(50)));
  latency.set("p95_us",
              Json::unsigned_integer(latency_.percentile_micros(95)));
  Json check_counters = Json::object();
  for (const char* key : {"solver_checks", "queries_issued", "queries_pruned",
                          "cache_hits", "cache_errors"}) {
    const auto found = entry->check_counters.find(key);
    check_counters.set(key, Json::unsigned_integer(
                                found == entry->check_counters.end()
                                    ? 0
                                    : found->second));
  }
  Json store = Json::object();
  for (const char* key :
       {"hits", "misses", "evictions", "tree_parses", "delta_parses",
        "model_parses", "product_line_builds", "derives", "unit_checks",
        "graph_builds", "cross_checks", "lifted_checks"}) {
    const auto found = entry->store.find(key);
    store.set(key, Json::unsigned_integer(
                       found == entry->store.end() ? 0 : found->second));
  }
  size_t alive = 0;
  for (const WorkerSlot& slot : slots_) {
    if (slot.alive) ++alive;
  }
  Json workers = Json::object();
  workers.set("configured", Json::unsigned_integer(options_.workers));
  workers.set("alive", Json::unsigned_integer(alive));
  workers.set("restarts", Json::unsigned_integer(worker_restarts_));
  Json result = Json::object();
  result.set("requests_total", Json::unsigned_integer(requests_total_));
  result.set("checks", Json::unsigned_integer(entry->checks));
  result.set("sessions", Json::unsigned_integer(entry->sessions));
  result.set("pings", Json::unsigned_integer(pings_));
  result.set("in_flight", Json::unsigned_integer(admitted_.load()));
  result.set("errors", std::move(errors));
  result.set("latency", std::move(latency));
  result.set("check_counters", std::move(check_counters));
  result.set("store", std::move(store));
  result.set("workers", std::move(workers));
  respond(entry->conn, ok_response(entry->id, std::move(result)), 2);
  entry->conn->pending.fetch_sub(1, std::memory_order_acq_rel);
}

// ---------------------------------------------------------------------------
// Worker supervision
// ---------------------------------------------------------------------------

bool Server::spawn_worker(unsigned index) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) < 0) {
    log_line("llhscd: cannot create worker channel: " +
             std::string(std::strerror(errno)));
    return false;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    log_line("llhscd: cannot fork worker: " +
             std::string(std::strerror(errno)));
    ::close(sv[0]);
    ::close(sv[1]);
    return false;
  }
  if (pid == 0) {
    // Child: detach from the supervisor's signal plumbing first, then close
    // every inherited supervisor fd — listeners, pipes, client connections,
    // and the other workers' channels.
    g_signal_pipe.store(-1, std::memory_order_relaxed);
    ::signal(SIGCHLD, SIG_DFL);
    ::close(sv[0]);
    if (listen_unix_fd_ >= 0) ::close(listen_unix_fd_);
    if (listen_tcp_fd_ >= 0) ::close(listen_tcp_fd_);
    if (stop_pipe_read_ >= 0) ::close(stop_pipe_read_);
    const int stop_write = stop_pipe_write_.load(std::memory_order_acquire);
    if (stop_write >= 0) ::close(stop_write);
    if (wake_pipe_read_ >= 0) ::close(wake_pipe_read_);
    if (wake_pipe_write_ >= 0) ::close(wake_pipe_write_);
    for (const auto& conn : connections_) {
      if (conn->fd >= 0) ::close(conn->fd);
    }
    for (const WorkerSlot& other : slots_) {
      if (other.fd >= 0) ::close(other.fd);
    }
    const int rc = worker_main(sv[1], options_, index);
    // _Exit: never run the parent image's atexit/static destructors twice.
    std::_Exit(rc);
  }
  ::close(sv[1]);
  net::set_nonblocking(sv[0]);
  WorkerSlot& slot = slots_[index];
  slot.pid = pid;
  slot.fd = sv[0];
  slot.alive = true;
  slot.inbuf.clear();
  slot.outbuf.clear();
  slot.owned.clear();
  log_line("llhscd: worker w" + std::to_string(index) + " pid " +
           std::to_string(pid));
  return true;
}

void Server::dispatch_to_worker(uint64_t seq) {
  auto it = outstanding_.find(seq);
  if (it == outstanding_.end()) return;
  const size_t n = slots_.size();
  const size_t preferred = it->second.shard % n;
  for (size_t probe = 0; probe < n; ++probe) {
    WorkerSlot& slot = slots_[(preferred + probe) % n];
    if (!slot.alive) continue;
    Json envelope = Json::object();
    envelope.set("seq", Json::unsigned_integer(seq));
    envelope.set("line", Json::string(it->second.raw_line));
    std::string line = envelope.dump();
    line += '\n';
    slot.outbuf += line;
    slot.owned.push_back(seq);
    flush_worker(slot);
    return;
  }
  // No worker alive right now (a crash burst mid-restart): park the request
  // until the next spawn succeeds.
  undispatched_.push_back(seq);
}

void Server::flush_worker(WorkerSlot& slot) {
  while (slot.fd >= 0 && !slot.outbuf.empty()) {
    const ssize_t n = ::send(slot.fd, slot.outbuf.data(), slot.outbuf.size(),
                             MSG_NOSIGNAL);
    if (n > 0) {
      slot.outbuf.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // EAGAIN waits for POLLOUT; a dead channel is handled at reap time.
    break;
  }
}

void Server::worker_readable(WorkerSlot& slot) {
  char chunk[65536];
  for (;;) {
    const ssize_t n = ::read(slot.fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n <= 0) {
      // EOF/reset: the worker died. Stop polling the channel; SIGCHLD
      // drives the actual reap + retry + respawn.
      slot.alive = false;
      return;
    }
    slot.inbuf.append(chunk, static_cast<size_t>(n));
    size_t newline;
    while ((newline = slot.inbuf.find('\n')) != std::string::npos) {
      std::string line = slot.inbuf.substr(0, newline);
      slot.inbuf.erase(0, newline + 1);
      if (!line.empty()) handle_worker_line(slot, line);
    }
  }
}

void Server::handle_worker_line(WorkerSlot& slot, const std::string& line) {
  auto envelope = Json::parse(line);
  if (!envelope || !envelope->is_object()) return;
  const uint64_t seq = envelope->at("seq").as_uint(0);
  auto disown = [&slot, seq]() {
    auto pos = std::find(slot.owned.begin(), slot.owned.end(), seq);
    if (pos != slot.owned.end()) slot.owned.erase(pos);
  };
  if (envelope->has("stats")) {
    const Json stats = envelope->at("stats");
    disown();
    finish_stats(seq, &stats);
    return;
  }
  auto it = outstanding_.find(seq);
  disown();
  if (it == outstanding_.end()) return;
  Outstanding out = std::move(it->second);
  outstanding_.erase(it);
  const std::string code = envelope->at("code").as_string();
  if (code == "deadline_exceeded") {
    rejected_deadline_.fetch_add(1, std::memory_order_relaxed);
  }
  latency_.record(obs::now_us() - out.start_us);
  std::string response_line = envelope->at("line").as_string();
  response_line += '\n';
  enqueue_output(out.conn, response_line);
  release_admission(out.tenant);
  out.conn->pending.fetch_sub(1, std::memory_order_acq_rel);
}

void Server::fail_outstanding(uint64_t seq, const std::string& message) {
  auto it = outstanding_.find(seq);
  if (it == outstanding_.end()) return;
  Outstanding out = std::move(it->second);
  outstanding_.erase(it);
  worker_failures_.fetch_add(1, std::memory_order_relaxed);
  respond_error(out.conn, out.id, "worker_failed", message);
  release_admission(out.tenant);
  out.conn->pending.fetch_sub(1, std::memory_order_acq_rel);
}

void Server::reap_workers() {
  for (;;) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, WNOHANG);
    if (pid <= 0) break;
    size_t index = slots_.size();
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].pid == pid) {
        index = i;
        break;
      }
    }
    if (index == slots_.size()) continue;  // not ours (no other children)
    WorkerSlot& slot = slots_[index];
    const bool expected = draining_.load(std::memory_order_acquire) &&
                          outstanding_.empty() && undispatched_.empty();
    slot.alive = false;
    slot.pid = -1;
    close_fd(slot.fd);
    slot.inbuf.clear();
    slot.outbuf.clear();
    std::vector<uint64_t> orphans = std::move(slot.owned);
    slot.owned.clear();
    if (!expected) {
      obs::count("server.worker.exit", "server", 1);
      log_line("llhscd: worker w" + std::to_string(index) + " pid " +
               std::to_string(pid) + " died (status " +
               std::to_string(status) + "), " +
               std::to_string(orphans.size()) + " request(s) orphaned");
    }
    // Orphaned requests: a stats probe completes without this worker's
    // numbers; a check/session retries once on a surviving worker (pure
    // function of the request), then errors explicitly. Nothing is ever
    // silently dropped.
    for (uint64_t seq : orphans) {
      if (stats_waiters_.count(seq) != 0) {
        finish_stats(seq, nullptr);
        continue;
      }
      auto it = outstanding_.find(seq);
      if (it == outstanding_.end()) continue;
      if (!it->second.retried) {
        it->second.retried = true;
        obs::count("server.worker.retry", "server", 1);
        dispatch_to_worker(seq);
      } else {
        fail_outstanding(seq,
                         "worker died twice while serving this request");
      }
    }
    const bool need_replacement =
        !draining_.load(std::memory_order_acquire) ||
        !outstanding_.empty() || !undispatched_.empty();
    if (need_replacement && spawn_worker(index)) {
      ++worker_restarts_;
      obs::count("server.worker.restart", "server", 1);
      std::deque<uint64_t> parked;
      parked.swap(undispatched_);
      for (uint64_t seq : parked) dispatch_to_worker(seq);
    }
  }
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

void Server::accept_ready(int listen_fd, bool tcp) {
  for (;;) {
    const int client = ::accept(listen_fd, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept error; poll again
    }
    net::set_nonblocking(client);
    if (tcp) net::set_tcp_nodelay(client);
    obs::count(tcp ? "server.accept.tcp" : "server.accept.unix", "server", 1);
    connections_.push_back(std::make_shared<Connection>(
        client, tcp, net::describe_peer(client, tcp)));
  }
}

void Server::connection_readable(const std::shared_ptr<Connection>& conn) {
  char chunk[65536];
  for (;;) {
    const ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n <= 0) {
      conn->read_closed = true;
      break;
    }
    conn->inbuf.append(chunk, static_cast<size_t>(n));
    for (;;) {
      if (conn->discarding) {
        const size_t pos = conn->inbuf.find('\n');
        if (pos == std::string::npos) {
          conn->inbuf.clear();
          break;
        }
        conn->inbuf.erase(0, pos + 1);
        conn->discarding = false;
      }
      const size_t pos = conn->inbuf.find('\n');
      if (pos == std::string::npos) {
        if (conn->inbuf.size() > options_.max_line_bytes) {
          // Oversized frame: reject, drop what we have, and resynchronise
          // at the next newline so the connection stays usable.
          requests_total_.fetch_add(1, std::memory_order_relaxed);
          rejected_bad_request_.fetch_add(1, std::memory_order_relaxed);
          respond_error(conn, Json::null(), "too_large",
                        "request line exceeds " +
                            std::to_string(options_.max_line_bytes) +
                            " bytes");
          conn->inbuf.clear();
          conn->discarding = true;
        }
        break;
      }
      std::string line = conn->inbuf.substr(0, pos);
      conn->inbuf.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (line.size() > options_.max_line_bytes) {
        requests_total_.fetch_add(1, std::memory_order_relaxed);
        rejected_bad_request_.fetch_add(1, std::memory_order_relaxed);
        respond_error(conn, Json::null(), "too_large",
                      "request line exceeds " +
                          std::to_string(options_.max_line_bytes) + " bytes");
        continue;
      }
      handle_line(conn, line);
    }
    if (conn->read_closed || conn->closed) break;
  }
}

void Server::flush_connection(const std::shared_ptr<Connection>& conn) {
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  if (conn->closed || conn->fd < 0) return;
  while (!conn->outbuf.empty()) {
    const ssize_t n = ::send(conn->fd, conn->outbuf.data(),
                             conn->outbuf.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn->outbuf.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    conn->closed = true;
    conn->outbuf.clear();
    break;
  }
}

void Server::prune_connections() {
  for (size_t i = 0; i < connections_.size();) {
    const std::shared_ptr<Connection>& conn = connections_[i];
    bool remove = false;
    {
      std::lock_guard<std::mutex> lock(conn->write_mutex);
      const bool idle = conn->read_closed &&
                        conn->pending.load(std::memory_order_acquire) == 0 &&
                        conn->outbuf.empty();
      if (conn->closed || idle) {
        close_fd(conn->fd);
        remove = true;
      }
    }
    if (remove) {
      connections_.erase(connections_.begin() + static_cast<long>(i));
    } else {
      ++i;
    }
  }
}

void Server::begin_drain() {
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  size_t in_flight = admitted_.load() + outstanding_.size();
  log_line("llhscd: draining (" + std::to_string(in_flight) +
           " request(s) in flight)");
  close_fd(listen_unix_fd_);
  close_fd(listen_tcp_fd_);
  // Shut the read side only: no new requests; in-flight responses still go
  // out on the write side.
  for (const auto& conn : connections_) {
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    if (!conn->closed && conn->fd >= 0) ::shutdown(conn->fd, SHUT_RD);
  }
}

bool Server::drain_complete() {
  if (admitted_.load(std::memory_order_acquire) != 0) return false;
  if (!outstanding_.empty() || !undispatched_.empty() ||
      !stats_waiters_.empty()) {
    return false;
  }
  for (const auto& conn : connections_) {
    if (conn->pending.load(std::memory_order_acquire) != 0) return false;
  }
  return true;
}

void Server::final_flush() {
  // Best-effort: give slow readers a bounded window to take their last
  // responses; a peer that never reads cannot wedge shutdown.
  const Clock::time_point deadline = Clock::now() + std::chrono::seconds(5);
  for (;;) {
    bool pending = false;
    for (const auto& conn : connections_) {
      flush_connection(conn);
      std::lock_guard<std::mutex> lock(conn->write_mutex);
      if (!conn->closed && conn->fd >= 0 && !conn->outbuf.empty()) {
        pending = true;
      }
    }
    if (!pending || Clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

int Server::setup_listeners() {
  if (options_.socket_path.empty() && options_.tcp_listen.empty()) {
    log_line("llhscd: no listener configured (need --socket or --listen)");
    return 2;
  }
  if (!options_.socket_path.empty()) {
    if (options_.socket_path.size() >= 108) {
      log_line("llhscd: socket path too long: " + options_.socket_path);
      return 2;
    }
    // Never steal a live daemon's socket: if something is accepting on the
    // path, refuse to start. Only a stale socket file — one that refuses
    // connections (or nothing at all) — is unlinked before bind.
    if (net::unix_socket_is_live(options_.socket_path)) {
      log_line("llhscd: " + options_.socket_path +
               " is served by a running daemon; refusing to start");
      return 2;
    }
    std::string error;
    listen_unix_fd_ = net::listen_unix(options_.socket_path, &error);
    if (listen_unix_fd_ < 0) {
      log_line("llhscd: " + error);
      return 2;
    }
    net::set_nonblocking(listen_unix_fd_);
  }
  if (!options_.tcp_listen.empty()) {
    std::string host;
    uint16_t port = 0;
    std::string error;
    if (!net::parse_listen_spec(options_.tcp_listen, &host, &port, &error)) {
      log_line("llhscd: bad --listen '" + options_.tcp_listen + "': " +
               error);
      close_fd(listen_unix_fd_);
      return 2;
    }
    uint16_t bound = 0;
    listen_tcp_fd_ = net::listen_tcp(host, port, &bound, &error);
    if (listen_tcp_fd_ < 0) {
      log_line("llhscd: " + error);
      close_fd(listen_unix_fd_);
      return 2;
    }
    net::set_nonblocking(listen_tcp_fd_);
    tcp_port_.store(bound, std::memory_order_release);
  }
  return 0;
}

void Server::event_loop() {
  struct PollRef {
    enum Kind { kStop, kWake, kUnixListen, kTcpListen, kWorker, kConn } kind;
    size_t index;
    int fd;
  };
  std::vector<pollfd> fds;
  std::vector<PollRef> refs;
  for (;;) {
    fds.clear();
    refs.clear();
    fds.push_back({stop_pipe_read_, POLLIN, 0});
    refs.push_back({PollRef::kStop, 0, stop_pipe_read_});
    fds.push_back({wake_pipe_read_, POLLIN, 0});
    refs.push_back({PollRef::kWake, 0, wake_pipe_read_});
    if (!draining_.load(std::memory_order_acquire)) {
      if (listen_unix_fd_ >= 0) {
        fds.push_back({listen_unix_fd_, POLLIN, 0});
        refs.push_back({PollRef::kUnixListen, 0, listen_unix_fd_});
      }
      if (listen_tcp_fd_ >= 0) {
        fds.push_back({listen_tcp_fd_, POLLIN, 0});
        refs.push_back({PollRef::kTcpListen, 0, listen_tcp_fd_});
      }
    }
    for (size_t i = 0; i < slots_.size(); ++i) {
      WorkerSlot& slot = slots_[i];
      if (!slot.alive || slot.fd < 0) continue;
      short events = POLLIN;
      if (!slot.outbuf.empty()) events |= POLLOUT;
      fds.push_back({slot.fd, events, 0});
      refs.push_back({PollRef::kWorker, i, slot.fd});
    }
    for (size_t i = 0; i < connections_.size(); ++i) {
      const auto& conn = connections_[i];
      short events = 0;
      {
        std::lock_guard<std::mutex> lock(conn->write_mutex);
        if (conn->closed || conn->fd < 0) continue;
        if (!conn->read_closed) events |= POLLIN;
        if (!conn->outbuf.empty()) events |= POLLOUT;
      }
      if (events == 0) continue;
      fds.push_back({conn->fd, events, 0});
      refs.push_back({PollRef::kConn, i, conn->fd});
    }

    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }

    // Stop/child bytes first: a drain or a reap changes how the other
    // events should be interpreted.
    if ((fds[0].revents & POLLIN) != 0) {
      char bytes[256];
      bool drain = false;
      bool reap = false;
      for (;;) {
        const ssize_t n = ::read(stop_pipe_read_, bytes, sizeof(bytes));
        if (n <= 0) break;
        for (ssize_t b = 0; b < n; ++b) {
          if (bytes[b] == kChildByte) {
            reap = true;
          } else {
            drain = true;
          }
        }
        if (n < static_cast<ssize_t>(sizeof(bytes))) break;
      }
      if (reap) reap_workers();
      if (drain) begin_drain();
    }
    if ((fds[1].revents & POLLIN) != 0) {
      char bytes[256];
      while (::read(wake_pipe_read_, bytes, sizeof(bytes)) ==
             static_cast<ssize_t>(sizeof(bytes))) {
      }
    }

    for (size_t i = 2; i < fds.size(); ++i) {
      const short revents = fds[i].revents;
      if (revents == 0) continue;
      const PollRef& ref = refs[i];
      switch (ref.kind) {
        case PollRef::kStop:
        case PollRef::kWake:
          break;
        case PollRef::kUnixListen:
          if (listen_unix_fd_ == ref.fd && (revents & POLLIN) != 0) {
            accept_ready(listen_unix_fd_, /*tcp=*/false);
          }
          break;
        case PollRef::kTcpListen:
          if (listen_tcp_fd_ == ref.fd && (revents & POLLIN) != 0) {
            accept_ready(listen_tcp_fd_, /*tcp=*/true);
          }
          break;
        case PollRef::kWorker: {
          WorkerSlot& slot = slots_[ref.index];
          // A reap earlier this iteration may have replaced the slot's fd;
          // stale events must not be applied to the new channel.
          if (slot.fd != ref.fd || !slot.alive) break;
          if ((revents & POLLOUT) != 0) flush_worker(slot);
          if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
            worker_readable(slot);
          }
          break;
        }
        case PollRef::kConn: {
          if (ref.index >= connections_.size()) break;
          const auto& conn = connections_[ref.index];
          if (conn->fd != ref.fd) break;
          if ((revents & POLLOUT) != 0) flush_connection(conn);
          if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0 &&
              !conn->read_closed) {
            connection_readable(conn);
          }
          break;
        }
      }
    }

    prune_connections();
    if (draining_.load(std::memory_order_acquire) && drain_complete()) break;
  }
}

int Server::run() {
  const int setup_rc = setup_listeners();
  if (setup_rc != 0) return setup_rc;

  int stop_fds[2];
  int wake_fds[2];
  if (::pipe(stop_fds) < 0) {
    log_line("llhscd: cannot create stop pipe: " +
             std::string(std::strerror(errno)));
    close_fd(listen_unix_fd_);
    close_fd(listen_tcp_fd_);
    return 2;
  }
  if (::pipe(wake_fds) < 0) {
    log_line("llhscd: cannot create wake pipe: " +
             std::string(std::strerror(errno)));
    ::close(stop_fds[0]);
    ::close(stop_fds[1]);
    close_fd(listen_unix_fd_);
    close_fd(listen_tcp_fd_);
    return 2;
  }
  stop_pipe_read_ = stop_fds[0];
  stop_pipe_write_.store(stop_fds[1], std::memory_order_release);
  wake_pipe_read_ = wake_fds[0];
  wake_pipe_write_ = wake_fds[1];
  net::set_nonblocking(stop_pipe_read_);
  net::set_nonblocking(stop_fds[1]);
  net::set_nonblocking(wake_pipe_read_);
  net::set_nonblocking(wake_pipe_write_);
  g_signal_pipe.store(stop_fds[1], std::memory_order_relaxed);

  struct sigaction sa{};
  sa.sa_handler = llhscd_signal_handler;
  sigemptyset(&sa.sa_mask);
  struct sigaction old_int{};
  struct sigaction old_term{};
  struct sigaction old_chld{};
  ::sigaction(SIGINT, &sa, &old_int);
  ::sigaction(SIGTERM, &sa, &old_term);

  std::string execution;
  if (options_.workers > 0) {
    // Forked mode: install SIGCHLD before the first fork so no exit is
    // missed, then spawn the shard workers. The front end stays
    // single-threaded, which keeps the restart forks safe.
    struct sigaction chld{};
    chld.sa_handler = llhscd_sigchld_handler;
    sigemptyset(&chld.sa_mask);
    chld.sa_flags = SA_NOCLDSTOP;
    ::sigaction(SIGCHLD, &chld, &old_chld);
    slots_.resize(options_.workers);
    for (unsigned i = 0; i < options_.workers; ++i) {
      if (!spawn_worker(i)) {
        log_line("llhscd: cannot start workers");
        // Kill whatever came up; clients were never accepted yet.
        for (WorkerSlot& slot : slots_) {
          close_fd(slot.fd);
          if (slot.pid > 0) {
            ::kill(slot.pid, SIGKILL);
            ::waitpid(slot.pid, nullptr, 0);
          }
        }
        ::sigaction(SIGINT, &old_int, nullptr);
        ::sigaction(SIGTERM, &old_term, nullptr);
        ::sigaction(SIGCHLD, &old_chld, nullptr);
        g_signal_pipe.store(-1, std::memory_order_relaxed);
        close_fd(listen_unix_fd_);
        close_fd(listen_tcp_fd_);
        return 2;
      }
    }
    if (!options_.profile_path.empty()) {
      log_line(
          "llhscd: --profile is not exported in --workers mode (checks run "
          "in worker processes)");
    }
    execution = std::to_string(options_.workers) + " worker processes";
  } else {
    pool_ = std::make_unique<support::ThreadPool>(
        support::ThreadPool::resolve_jobs(options_.jobs));
    execution = std::to_string(pool_->size()) + " workers";
  }

  std::string where;
  if (!options_.socket_path.empty()) where = options_.socket_path;
  if (listen_tcp_fd_ >= 0) {
    if (!where.empty()) where += " + ";
    where += "tcp port " + std::to_string(tcp_port());
  }
  log_line("llhscd: listening on " + where + " (" + execution +
           ", queue limit " + std::to_string(options_.queue_limit) + ")");

  event_loop();

  // -- Drain epilogue: the loop exits only once every admitted request has
  // responded (drain_complete), so what is left is flushing buffers and
  // tearing down execution. --
  if (pool_ != nullptr) {
    pool_->wait_idle();
  }
  final_flush();
  for (size_t i = 0; i < slots_.size(); ++i) {
    WorkerSlot& slot = slots_[i];
    // Channel EOF tells the worker to drain its pool and exit 0.
    close_fd(slot.fd);
    if (slot.pid > 0) {
      int status = 0;
      ::waitpid(slot.pid, &status, 0);
      slot.pid = -1;
    }
  }
  connections_.clear();
  pool_.reset();

  ::sigaction(SIGINT, &old_int, nullptr);
  ::sigaction(SIGTERM, &old_term, nullptr);
  if (options_.workers > 0) ::sigaction(SIGCHLD, &old_chld, nullptr);
  g_signal_pipe.store(-1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(stop_pipe_mutex_);
    stop_pipe_write_.store(-1, std::memory_order_release);
    ::close(stop_fds[1]);
  }
  close_fd(stop_pipe_read_);
  close_fd(wake_pipe_read_);
  wake_pipe_write_ = -1;
  ::close(wake_fds[1]);
  if (!options_.socket_path.empty()) {
    ::unlink(options_.socket_path.c_str());
  }
  if (!options_.profile_path.empty() && options_.workers == 0) {
    if (obs::write_chrome_trace(options_.profile_path,
                                profile_sink_.take())) {
      log_line("llhscd: profile written to " + options_.profile_path);
    } else {
      log_line("llhscd: cannot write profile to " + options_.profile_path);
    }
  }
  log_line("llhscd: drained, bye");
  return 0;
}

}  // namespace llhsc::server

#include "server/server.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <iostream>
#include <optional>

#include "obs/chrome_trace.hpp"
#include "server/check_service.hpp"
#include "server/session.hpp"
#include "support/deadline.hpp"

namespace llhsc::server {

namespace {

using Clock = std::chrono::steady_clock;

/// The currently-running server's self-pipe write end, for the signal
/// handler. One daemon per process; a plain sig_atomic_t-sized store is all
/// the handler may touch besides write().
std::atomic<int> g_signal_pipe{-1};

extern "C" void llhscd_signal_handler(int) {
  const int fd = g_signal_pipe.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    // The return value is deliberately unused: if the pipe is full a stop
    // byte is already pending.
    [[maybe_unused]] ssize_t n = ::write(fd, &byte, 1);
  }
}

uint64_t micros_since(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

CheckRequest check_request_from(const Json& params) {
  CheckRequest r;
  r.path = params.at("path").as_string();
  r.source = params.at("source").as_string();
  r.base_directory = params.at("base_directory").as_string();
  for (const auto& [name, content] : params.at("includes").fields()) {
    r.includes.emplace_back(name, content.as_string());
  }
  if (params.has("format")) r.format = params.at("format").as_string();
  r.lint = params.at("lint").as_bool(true);
  r.crossref = params.at("crossref").as_bool(true);
  r.graph = params.at("graph").as_bool(true);
  r.syntax = params.at("syntax").as_bool(true);
  r.semantics = params.at("semantics").as_bool(true);
  r.quiet = params.at("quiet").as_bool(false);
  r.stats = params.at("stats").as_bool(false);
  r.baseline_text = params.at("baseline").as_string();
  if (params.has("backend")) r.backend = params.at("backend").as_string();
  r.schemas_text = params.at("schemas_text").as_string();
  r.schemas_path = params.at("schemas_path").as_string();
  r.disable_rule = params.at("disable_rule").as_string();
  r.rule_severity = params.at("rule_severity").as_string();
  r.solver_timeout_ms = params.at("solver_timeout_ms").as_uint(0);
  r.plan = params.at("plan").as_bool(true);
  r.cache_dir = params.at("cache_dir").as_string();
  return r;
}

SessionRequest session_request_from(const Json& params) {
  SessionRequest r;
  r.core_source = params.at("core_source").as_string();
  r.core_name = params.at("core_name").as_string();
  r.deltas_source = params.at("deltas_source").as_string();
  r.deltas_name = params.at("deltas_name").as_string();
  r.model_source = params.at("model_source").as_string();
  r.model_name = params.at("model_name").as_string();
  r.base_directory = params.at("base_directory").as_string();
  for (const auto& [name, content] : params.at("includes").fields()) {
    r.includes.emplace_back(name, content.as_string());
  }
  for (const Json& p : params.at("products").items()) {
    SessionProduct product;
    product.name = p.at("name").as_string();
    for (const Json& f : p.at("features").items()) {
      product.features.insert(f.as_string());
    }
    r.products.push_back(std::move(product));
  }
  r.check_platform = params.at("check_platform").as_bool(false);
  r.check_allocation = params.at("check_allocation").as_bool(false);
  r.check_lifted = params.at("check_lifted").as_bool(false);
  r.lifted_max_configs = params.at("lifted_max_configs").as_uint(8);
  for (const Json& f : params.at("exclusive").items()) {
    r.exclusive.push_back(f.as_string());
  }
  if (params.has("backend")) r.backend = params.at("backend").as_string();
  r.lint = params.at("lint").as_bool(true);
  r.graph = params.at("graph").as_bool(true);
  r.syntax = params.at("syntax").as_bool(true);
  r.semantics = params.at("semantics").as_bool(true);
  r.schemas_text = params.at("schemas_text").as_string();
  r.solver_timeout_ms = params.at("solver_timeout_ms").as_uint(0);
  r.plan = params.at("plan").as_bool(true);
  r.cache_dir = params.at("cache_dir").as_string();
  return r;
}

Json check_outcome_json(const CheckOutcome& outcome) {
  Json trace = Json::object();
  trace.set("tree_cache_hit", Json::boolean(outcome.trace.tree_cache_hit));
  trace.set("check_cache_hit", Json::boolean(outcome.trace.check_cache_hit));
  trace.set("solver_checks",
            Json::unsigned_integer(outcome.trace.solver_checks));
  trace.set("queries_issued",
            Json::unsigned_integer(outcome.trace.queries_issued));
  trace.set("queries_pruned",
            Json::unsigned_integer(outcome.trace.queries_pruned));
  trace.set("cache_hits", Json::unsigned_integer(outcome.trace.cache_hits));
  trace.set("cache_errors",
            Json::unsigned_integer(outcome.trace.cache_errors));
  trace.set("suppressed", Json::unsigned_integer(outcome.trace.suppressed));

  Json result = Json::object();
  result.set("exit_code", Json::integer(outcome.exit_code));
  result.set("stdout", Json::string(outcome.output));
  result.set("stderr", Json::string(outcome.error_text));
  result.set("errors", Json::unsigned_integer(outcome.errors));
  result.set("warnings", Json::unsigned_integer(outcome.warnings));
  result.set("trace", std::move(trace));
  return result;
}

Json store_stats_json(const StoreStats& s) {
  Json j = Json::object();
  j.set("hits", Json::unsigned_integer(s.hits));
  j.set("misses", Json::unsigned_integer(s.misses));
  j.set("evictions", Json::unsigned_integer(s.evictions));
  j.set("tree_parses", Json::unsigned_integer(s.tree_parses));
  j.set("delta_parses", Json::unsigned_integer(s.delta_parses));
  j.set("model_parses", Json::unsigned_integer(s.model_parses));
  j.set("product_line_builds",
        Json::unsigned_integer(s.product_line_builds));
  j.set("derives", Json::unsigned_integer(s.derives));
  j.set("unit_checks", Json::unsigned_integer(s.unit_checks));
  j.set("graph_builds", Json::unsigned_integer(s.graph_builds));
  j.set("cross_checks", Json::unsigned_integer(s.cross_checks));
  j.set("lifted_checks", Json::unsigned_integer(s.lifted_checks));
  return j;
}

Json session_outcome_json(const SessionOutcome& outcome) {
  Json units = Json::array();
  for (const SessionUnitResult& u : outcome.units) {
    Json unit = Json::object();
    unit.set("name", Json::string(u.name));
    unit.set("composed_cache_hit", Json::boolean(u.composed_cache_hit));
    unit.set("check_cache_hit", Json::boolean(u.check_cache_hit));
    unit.set("errors", Json::unsigned_integer(u.errors));
    unit.set("warnings", Json::unsigned_integer(u.warnings));
    unit.set("report", Json::string(u.report));
    units.push(std::move(unit));
  }
  Json result = Json::object();
  result.set("exit_code", Json::integer(outcome.exit_code));
  result.set("stderr", Json::string(outcome.error_text));
  result.set("units", std::move(units));
  result.set("cost", store_stats_json(outcome.cost));
  return result;
}

}  // namespace

Server::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

Server::Server(ServerOptions options)
    : options_(std::move(options)), store_(options_.store_capacity) {}

Server::~Server() = default;

void Server::log_line(const std::string& text) {
  std::lock_guard<std::mutex> lock(log_mutex_);
  std::ostream& os = options_.log != nullptr ? *options_.log : std::cerr;
  os << text << '\n';
  os.flush();
}

void Server::request_stop() {
  // The lock pairs with run()'s cleanup: the write end is never closed
  // while a stop request is mid-write.
  std::lock_guard<std::mutex> lock(stop_pipe_mutex_);
  const int fd = stop_pipe_write_.load(std::memory_order_acquire);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(fd, &byte, 1);
  }
}

void Server::respond(const std::shared_ptr<Connection>& conn, Json response) {
  response.set("schema_version", Json::integer(1));
  std::string line = response.dump();
  line += '\n';
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  size_t off = 0;
  while (off < line.size()) {
    // MSG_NOSIGNAL: a client that hung up turns into EPIPE, not SIGPIPE.
    ssize_t n = ::send(conn->fd, line.data() + off, line.size() - off,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // client gone; the verdict stays cached for the next ask
    }
    off += static_cast<size_t>(n);
  }
}

void Server::respond_error(const std::shared_ptr<Connection>& conn,
                           const Json& id, const std::string& code,
                           const std::string& message) {
  Json error = Json::object();
  error.set("code", Json::string(code));
  error.set("message", Json::string(message));
  Json response = Json::object();
  response.set("id", id);
  response.set("ok", Json::boolean(false));
  response.set("error", std::move(error));
  respond(conn, response);
}

void Server::handle_line(const std::shared_ptr<Connection>& conn,
                         const std::string& line) {
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  auto parsed = Json::parse(line);
  if (!parsed || !parsed->is_object()) {
    rejected_bad_request_.fetch_add(1, std::memory_order_relaxed);
    respond_error(conn, Json::null(), "bad_request",
                  "request is not a JSON object");
    return;
  }
  const Json request = std::move(*parsed);
  const Json id = request.at("id");
  const std::string method = request.at("method").as_string();

  if (method == "ping") {
    pings_.fetch_add(1, std::memory_order_relaxed);
    Json result = Json::object();
    result.set("pong", Json::boolean(true));
    Json response = Json::object();
    response.set("id", id);
    response.set("ok", Json::boolean(true));
    response.set("result", std::move(result));
    respond(conn, response);
    return;
  }

  if (method == "stats") {
    Json errors = Json::object();
    errors.set("overloaded", Json::unsigned_integer(rejected_overloaded_));
    errors.set("bad_request", Json::unsigned_integer(rejected_bad_request_));
    errors.set("shutting_down",
               Json::unsigned_integer(rejected_shutting_down_));
    errors.set("deadline_exceeded",
               Json::unsigned_integer(rejected_deadline_));
    Json latency = Json::object();
    latency.set("count", Json::unsigned_integer(latency_.count()));
    const uint64_t n = latency_.count();
    latency.set("mean_us",
                Json::unsigned_integer(n == 0 ? 0
                                              : latency_.total_micros() / n));
    latency.set("p50_us", Json::unsigned_integer(latency_.percentile_micros(50)));
    latency.set("p95_us", Json::unsigned_integer(latency_.percentile_micros(95)));
    // Accumulated from each CheckOutcome's trace, which is itself a
    // reduction of the obs event stream — the same source the one-shot
    // CLI's --stats line reads, so the two surfaces agree by construction.
    Json check_counters = Json::object();
    check_counters.set("solver_checks",
                       Json::unsigned_integer(check_solver_checks_));
    check_counters.set("queries_issued",
                       Json::unsigned_integer(check_queries_issued_));
    check_counters.set("queries_pruned",
                       Json::unsigned_integer(check_queries_pruned_));
    check_counters.set("cache_hits",
                       Json::unsigned_integer(check_cache_hits_));
    check_counters.set("cache_errors",
                       Json::unsigned_integer(check_cache_errors_));
    Json result = Json::object();
    result.set("requests_total", Json::unsigned_integer(requests_total_));
    result.set("checks", Json::unsigned_integer(checks_));
    result.set("sessions", Json::unsigned_integer(sessions_));
    result.set("pings", Json::unsigned_integer(pings_));
    result.set("in_flight", Json::unsigned_integer(admitted_.load()));
    result.set("errors", std::move(errors));
    result.set("latency", std::move(latency));
    result.set("check_counters", std::move(check_counters));
    result.set("store", store_stats_json(store_.stats()));
    Json response = Json::object();
    response.set("id", id);
    response.set("ok", Json::boolean(true));
    response.set("result", std::move(result));
    respond(conn, response);
    return;
  }

  if (method == "shutdown") {
    Json result = Json::object();
    result.set("stopping", Json::boolean(true));
    Json response = Json::object();
    response.set("id", id);
    response.set("ok", Json::boolean(true));
    response.set("result", std::move(result));
    respond(conn, response);
    request_stop();
    return;
  }

  if (method != "check" && method != "session") {
    rejected_bad_request_.fetch_add(1, std::memory_order_relaxed);
    respond_error(conn, id, "bad_request", "unknown method '" + method + "'");
    return;
  }

  if (draining_.load(std::memory_order_acquire)) {
    rejected_shutting_down_.fetch_add(1, std::memory_order_relaxed);
    respond_error(conn, id, "shutting_down",
                  "daemon is draining; retry against a fresh instance");
    return;
  }

  // Bounded admission: overload is an explicit, immediate answer — never an
  // unbounded queue the client cannot see.
  if (admitted_.fetch_add(1, std::memory_order_acq_rel) >=
      options_.queue_limit) {
    admitted_.fetch_sub(1, std::memory_order_acq_rel);
    rejected_overloaded_.fetch_add(1, std::memory_order_relaxed);
    respond_error(conn, id, "overloaded",
                  "admission queue is full (limit " +
                      std::to_string(options_.queue_limit) + ")");
    return;
  }

  uint64_t deadline_ms = request.at("deadline_ms").as_uint(0);
  if (deadline_ms == 0) deadline_ms = options_.default_deadline_ms;
  const support::Deadline deadline =
      deadline_ms > 0 ? support::Deadline::after_ms(deadline_ms)
                      : support::Deadline();

  const Json params = request.at("params");
  // Admission timestamp: when profiling, the gap between this and the pool
  // picking the task up becomes the request.wait span.
  const uint64_t admit_us = obs::now_us();
  pool_->submit([this, conn, id, method, params, deadline, admit_us]() {
    const Clock::time_point start = Clock::now();
    if (deadline.expired()) {
      admitted_.fetch_sub(1, std::memory_order_acq_rel);
      rejected_deadline_.fetch_add(1, std::memory_order_relaxed);
      respond_error(conn, id, "deadline_exceeded",
                    "deadline expired before the request was scheduled");
      log_line("llhscd: " + method + " deadline_exceeded");
      return;
    }
    Json response = Json::object();
    response.set("id", id);
    response.set("ok", Json::boolean(true));
    const bool profiling = !options_.profile_path.empty();
    obs::TraceSink request_sink;
    {
      // Sink first, span second: the span records at block exit while the
      // sink is still installed.
      std::optional<obs::ScopedSink> sink_guard;
      std::optional<obs::Span> service_span;
      if (profiling) {
        const uint64_t service_start_us = obs::now_us();
        sink_guard.emplace(&request_sink);
        obs::record_span(request_sink, "request.wait", "request", admit_us,
                         service_start_us - admit_us, {{"method", method}});
        service_span.emplace("request.service", "request");
        if (service_span->active()) service_span->arg("method", method);
      }
      if (method == "check") {
        CheckRequest cr = check_request_from(params);
        // The request deadline bounds solver work: the tighter of the
        // client's solver budget and what is left of the deadline wins.
        if (!deadline.unlimited()) {
          const uint64_t remaining = deadline.remaining_ms();
          cr.solver_timeout_ms =
              cr.solver_timeout_ms == 0
                  ? remaining
                  : std::min(cr.solver_timeout_ms, remaining);
          if (cr.solver_timeout_ms == 0) cr.solver_timeout_ms = 1;
        }
        CheckOutcome outcome = run_check(cr, &store_);
        checks_.fetch_add(1, std::memory_order_relaxed);
        check_solver_checks_.fetch_add(outcome.trace.solver_checks,
                                       std::memory_order_relaxed);
        check_queries_issued_.fetch_add(outcome.trace.queries_issued,
                                        std::memory_order_relaxed);
        check_queries_pruned_.fetch_add(outcome.trace.queries_pruned,
                                        std::memory_order_relaxed);
        check_cache_hits_.fetch_add(outcome.trace.cache_hits,
                                    std::memory_order_relaxed);
        check_cache_errors_.fetch_add(outcome.trace.cache_errors,
                                      std::memory_order_relaxed);
        response.set("result", check_outcome_json(outcome));
      } else {
        SessionRequest sr = session_request_from(params);
        if (!deadline.unlimited()) {
          const uint64_t remaining = deadline.remaining_ms();
          sr.solver_timeout_ms =
              sr.solver_timeout_ms == 0
                  ? remaining
                  : std::min(sr.solver_timeout_ms, remaining);
          if (sr.solver_timeout_ms == 0) sr.solver_timeout_ms = 1;
        }
        SessionOutcome outcome = run_session_check(sr, store_);
        sessions_.fetch_add(1, std::memory_order_relaxed);
        response.set("result", session_outcome_json(outcome));
      }
    }
    if (profiling) profile_sink_.extend(request_sink.take());
    const uint64_t us = micros_since(start);
    latency_.record(us);
    admitted_.fetch_sub(1, std::memory_order_acq_rel);
    respond(conn, response);
    log_line("llhscd: " + method + " ok " + std::to_string(us) + "us");
  });
}

void Server::reap_finished_readers() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (std::thread::id id : finished_reader_ids_) {
      for (size_t i = 0; i < readers_.size(); ++i) {
        if (readers_[i].get_id() == id) {
          done.push_back(std::move(readers_[i]));
          readers_.erase(readers_.begin() + static_cast<long>(i));
          break;
        }
      }
    }
    finished_reader_ids_.clear();
  }
  // Joined outside the lock. Every id was pushed as the reader's last
  // locked action, so each join only waits for a handful of epilogue
  // instructions — never for connection I/O.
  for (std::thread& t : done) t.join();
}

void Server::reader_loop(std::shared_ptr<Connection> conn) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      handle_line(conn, line);
    }
  }
  // Reap readers that finished before this one (our own id is not queued
  // yet, so we never join ourselves), then queue our handle for the next
  // reaper — the accept loop or a later-finishing reader.
  reap_finished_readers();
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (size_t i = 0; i < connections_.size(); ++i) {
    if (connections_[i] == conn) {
      connections_.erase(connections_.begin() + static_cast<long>(i));
      break;
    }
  }
  finished_reader_ids_.push_back(std::this_thread::get_id());
}

int Server::run() {
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    log_line("llhscd: cannot create socket: " +
             std::string(std::strerror(errno)));
    return 2;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    log_line("llhscd: socket path too long: " + options_.socket_path);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return 2;
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  // Never steal a live daemon's socket: if something is accepting on the
  // path, refuse to start. Only a stale socket file — one that refuses
  // connections (or nothing at all) — is unlinked before bind.
  {
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
      const bool live =
          ::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
          0;
      ::close(probe);
      if (live) {
        log_line("llhscd: " + options_.socket_path +
                 " is served by a running daemon; refusing to start");
        ::close(listen_fd_);
        listen_fd_ = -1;
        return 2;
      }
    }
  }
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 128) < 0) {
    log_line("llhscd: cannot bind/listen on " + options_.socket_path + ": " +
             std::string(std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return 2;
  }

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    log_line("llhscd: cannot create stop pipe: " +
             std::string(std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return 2;
  }
  stop_pipe_read_ = pipe_fds[0];
  stop_pipe_write_.store(pipe_fds[1], std::memory_order_release);
  g_signal_pipe.store(pipe_fds[1], std::memory_order_relaxed);

  struct sigaction sa{};
  sa.sa_handler = llhscd_signal_handler;
  sigemptyset(&sa.sa_mask);
  struct sigaction old_int{};
  struct sigaction old_term{};
  ::sigaction(SIGINT, &sa, &old_int);
  ::sigaction(SIGTERM, &sa, &old_term);

  pool_ = std::make_unique<support::ThreadPool>(
      support::ThreadPool::resolve_jobs(options_.jobs));
  log_line("llhscd: listening on " + options_.socket_path + " (" +
           std::to_string(pool_->size()) + " workers, queue limit " +
           std::to_string(options_.queue_limit) + ")");

  for (;;) {
    reap_finished_readers();
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {stop_pipe_read_, POLLIN, 0};
    int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;  // stop byte
    if ((fds[0].revents & POLLIN) == 0) continue;
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      continue;
    }
    auto conn = std::make_shared<Connection>(client);
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(conn);
      readers_.emplace_back(&Server::reader_loop, this, conn);
    }
  }

  // -- Drain: no new work, admitted work finishes and responds --
  draining_.store(true, std::memory_order_release);
  log_line("llhscd: draining (" + std::to_string(admitted_.load()) +
           " request(s) in flight)");
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    // Shut the read side only: readers see EOF and exit; in-flight
    // responses still go out on the write side.
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const auto& conn : connections_) {
      ::shutdown(conn->fd, SHUT_RD);
    }
  }
  // Readers first (after the join no thread can submit new pool work), then
  // the pool barrier — admitted requests finish and respond.
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    readers.swap(readers_);
    finished_reader_ids_.clear();  // the swap takes reaped-pending handles too
  }
  for (std::thread& t : readers) t.join();
  pool_->wait_idle();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.clear();
  }
  pool_.reset();

  ::sigaction(SIGINT, &old_int, nullptr);
  ::sigaction(SIGTERM, &old_term, nullptr);
  g_signal_pipe.store(-1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(stop_pipe_mutex_);
    stop_pipe_write_.store(-1, std::memory_order_release);
    ::close(pipe_fds[1]);
  }
  ::close(stop_pipe_read_);
  stop_pipe_read_ = -1;
  ::unlink(options_.socket_path.c_str());
  if (!options_.profile_path.empty()) {
    if (obs::write_chrome_trace(options_.profile_path,
                                profile_sink_.take())) {
      log_line("llhscd: profile written to " + options_.profile_path);
    } else {
      log_line("llhscd: cannot write profile to " + options_.profile_path);
    }
  }
  log_line("llhscd: drained, bye");
  return 0;
}

}  // namespace llhsc::server

// Incremental session re-checking over a DTS product line. A session
// request names a core DTS, a delta-module file, the products to derive
// (feature selections), and checker options; everything expensive funnels
// through the ArtifactStore:
//
//   core text      -> TreeArtifact        (include-aware content key)
//   deltas text    -> DeltaArtifact       (per-module fingerprints)
//   (core, deltas) -> ProductLineArtifact (one clone of the core)
//   (core, active-module fingerprints in application order)
//                  -> ComposedArtifact    (derived tree + printed DTS)
//   (composed, options) -> CheckArtifact  (checker verdict + counters)
//
// The composed key is built from the fingerprints of exactly the modules a
// product activates, in application order. Editing one delta module
// therefore re-derives only the products that activate it: every other
// product's composed key is unchanged and its cached verdict is reused.
// Editing the core — or any .dtsi it includes — changes the core's
// effective key, which flows into every product-line, composed, and check
// key, so the whole session re-derives, as it must.
// The request reports the store-counter delta so callers (and the PR's
// bench) can assert that incrementality — rebuilds, hits — rather than
// trust it.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "server/artifact_store.hpp"
#include "server/check_service.hpp"

namespace llhsc::server {

struct SessionProduct {
  std::string name;
  std::set<std::string> features;
};

struct SessionRequest {
  std::string core_source;
  std::string core_name;    // diagnostics label
  std::string deltas_source;
  std::string deltas_name;
  std::string model_source;  // feature model; required for allocation
  std::string model_name;
  std::string base_directory;  // /include/ resolution root ("" = none)
  std::vector<std::pair<std::string, std::string>> includes;

  std::vector<SessionProduct> products;
  /// Also derive and check the platform tree (union of all selections).
  bool check_platform = false;
  /// Run the resource-allocation check over all products (needs a model).
  bool check_allocation = false;
  /// Run the family-based lifted analysis over the WHOLE product line in
  /// one solver conversation (needs a model; docs/lifting.md). The verdict
  /// is one "*lifted*" unit covering every configuration, cached under the
  /// composed key of core + every delta module + model + options, so an
  /// edit to any of them re-runs exactly one family analysis.
  bool check_lifted = false;
  /// Cap on each lifted finding's configuration-class expansion.
  uint64_t lifted_max_configs = 8;
  std::vector<std::string> exclusive;  // exclusive feature names

  std::string backend = "builtin";
  bool lint = true;
  bool graph = true;  // device-graph rules, incl. the cross-unit analysis
  bool syntax = true;
  bool semantics = true;
  std::string schemas_text;  // "" = builtin schema set
  uint64_t solver_timeout_ms = 0;
  bool plan = true;
  std::string cache_dir;
};

struct SessionUnitResult {
  std::string name;  // product name, or "platform"
  bool composed_cache_hit = false;
  bool check_cache_hit = false;
  size_t errors = 0;
  size_t warnings = 0;
  std::string report;  // checkers::render() of this unit's findings
};

struct SessionOutcome {
  /// 0 all units clean, 1 findings or rejected input, 2 bad request.
  int exit_code = 0;
  std::string error_text;  // parse/derive diagnostics, request errors
  std::vector<SessionUnitResult> units;
  /// What this request actually cost: store counters after minus before.
  /// `derives` is the number of composed trees rebuilt, `unit_checks` the
  /// number of checker batteries executed — the incrementality evidence.
  StoreStats cost;
};

[[nodiscard]] SessionOutcome run_session_check(const SessionRequest& request,
                                               ArtifactStore& store);

}  // namespace llhsc::server

#include "server/worker.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <iostream>
#include <mutex>
#include <string>

#include "obs/obs.hpp"
#include "support/deadline.hpp"

namespace llhsc::server {

namespace {

using Clock = std::chrono::steady_clock;

/// Everything one worker process needs; lives on worker_main's stack.
struct WorkerState {
  const ServerOptions* options;
  unsigned index;
  int channel_fd;
  ArtifactStore store;
  CheckCounters counters;
  std::mutex write_mutex;
  std::mutex log_mutex;

  WorkerState(const ServerOptions& opts, unsigned index, int fd)
      : options(&opts),
        index(index),
        channel_fd(fd),
        store(opts.store_capacity) {}

  void log_line(const std::string& text) {
    std::lock_guard<std::mutex> lock(log_mutex);
    std::ostream& os = options->log != nullptr ? *options->log : std::cerr;
    os << "llhscd[w" << index << "]: " << text << '\n';
    os.flush();
  }

  /// Writes one envelope line to the supervisor. Serialised because pool
  /// threads finish concurrently; MSG_NOSIGNAL because a dead supervisor
  /// must surface as EPIPE, not SIGPIPE.
  void send_envelope(Json envelope) {
    std::string line = envelope.dump();
    line += '\n';
    std::lock_guard<std::mutex> lock(write_mutex);
    size_t off = 0;
    while (off < line.size()) {
      const ssize_t n = ::send(channel_fd, line.data() + off,
                               line.size() - off, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return;  // supervisor gone; nothing useful left to do with this line
      }
      off += static_cast<size_t>(n);
    }
  }

  void respond(uint64_t seq, Json response, const std::string& code) {
    std::string line = stamp_response_line(std::move(response), 1);
    if (!line.empty() && line.back() == '\n') line.pop_back();
    Json envelope = Json::object();
    envelope.set("seq", Json::unsigned_integer(seq));
    envelope.set("code", Json::string(code));
    envelope.set("line", Json::string(std::move(line)));
    send_envelope(std::move(envelope));
  }

  void handle_request(uint64_t seq, const std::string& raw_line) {
    obs::count("server.worker.request", "server", 1);
    auto parsed = Json::parse(raw_line);
    if (!parsed || !parsed->is_object()) {
      // The supervisor only dispatches lines it parsed, so this is a
      // defensive guard against channel corruption, not a client surface.
      respond(seq, error_response(Json::null(), "bad_request",
                                  "request is not a JSON object"),
              "bad_request");
      return;
    }
    const Json request = std::move(*parsed);
    const Json id = request.at("id");
    const std::string method = request.at("method").as_string();
    const Json params = request.at("params");

    uint64_t deadline_ms = request.at("deadline_ms").as_uint(0);
    if (deadline_ms == 0) deadline_ms = options->default_deadline_ms;
    const support::Deadline deadline =
        deadline_ms > 0 ? support::Deadline::after_ms(deadline_ms)
                        : support::Deadline();

    const Clock::time_point start = Clock::now();
    if (deadline.expired()) {
      respond(seq,
              error_response(id, "deadline_exceeded",
                             "deadline expired before the request was "
                             "scheduled"),
              "deadline_exceeded");
      log_line(method + " deadline_exceeded");
      return;
    }
    Json response =
        execute_request(method, id, params, deadline, store, counters);
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        Clock::now() - start)
                        .count();
    respond(seq, std::move(response), "");
    log_line(method + " ok " + std::to_string(us) + "us");
  }

  void handle_stats_probe(uint64_t seq) {
    Json check_counters = Json::object();
    check_counters.set("solver_checks",
                       Json::unsigned_integer(counters.solver_checks));
    check_counters.set("queries_issued",
                       Json::unsigned_integer(counters.queries_issued));
    check_counters.set("queries_pruned",
                       Json::unsigned_integer(counters.queries_pruned));
    check_counters.set("cache_hits",
                       Json::unsigned_integer(counters.cache_hits));
    check_counters.set("cache_errors",
                       Json::unsigned_integer(counters.cache_errors));
    Json stats = Json::object();
    stats.set("checks", Json::unsigned_integer(counters.checks));
    stats.set("sessions", Json::unsigned_integer(counters.sessions));
    stats.set("check_counters", std::move(check_counters));
    stats.set("store", store_stats_json(store.stats()));
    Json envelope = Json::object();
    envelope.set("seq", Json::unsigned_integer(seq));
    envelope.set("stats", std::move(stats));
    send_envelope(std::move(envelope));
  }
};

}  // namespace

int worker_main(int channel_fd, const ServerOptions& options, unsigned index) {
  // Shutdown arrives as channel EOF from the supervisor, never as a signal:
  // a terminal SIGINT/SIGTERM aimed at the process group must not kill a
  // worker mid-drain while the supervisor still owes clients responses.
  ::signal(SIGINT, SIG_IGN);
  ::signal(SIGTERM, SIG_IGN);
  ::signal(SIGPIPE, SIG_IGN);

  WorkerState state(options, index, channel_fd);
  support::ThreadPool pool(support::ThreadPool::resolve_jobs(options.jobs));
  state.log_line("serving (" + std::to_string(pool.size()) + " threads)");

  std::string buffer;
  char chunk[65536];
  for (;;) {
    const ssize_t n = ::read(channel_fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF: the supervisor is draining (or died)
    buffer.append(chunk, static_cast<size_t>(n));
    size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.empty()) continue;
      auto envelope = Json::parse(line);
      if (!envelope || !envelope->is_object()) continue;
      const uint64_t seq = envelope->at("seq").as_uint(0);
      if (envelope->has("ctl")) {
        if (envelope->at("ctl").as_string() == "stats") {
          state.handle_stats_probe(seq);
        }
        continue;
      }
      std::string raw_line = envelope->at("line").as_string();
      pool.submit([&state, seq, raw_line = std::move(raw_line)]() {
        state.handle_request(seq, raw_line);
      });
    }
  }
  // Channel EOF: finish everything already dispatched (responses still go
  // out — the socketpair's write side is independent of the read side),
  // then exit cleanly.
  pool.wait_idle();
  state.log_line("drained");
  return 0;
}

}  // namespace llhsc::server

// Fixed-bucket latency histogram for the daemon's `stats` endpoint.
// Buckets are powers of two in microseconds (1µs .. ~2¹⁹ms), so recording
// is one clz + one relaxed atomic increment — cheap enough for every
// request — and a percentile is the upper bound of the first bucket whose
// cumulative count crosses the rank. That upper bound overestimates by at
// most 2×, which is the right trade for a monitoring figure that must never
// allocate or lock on the hot path.
//
// All timing flows in as steady_clock durations measured by the caller; the
// histogram itself never reads any clock (no wall-clock anywhere near the
// verdict paths).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace llhsc::server {

class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 40;  // bucket i covers [2^i, 2^(i+1)) µs

  void record(uint64_t micros) {
    buckets_[bucket_of(micros)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    total_micros_.fetch_add(micros, std::memory_order_relaxed);
  }

  [[nodiscard]] uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] uint64_t total_micros() const {
    return total_micros_.load(std::memory_order_relaxed);
  }

  /// Upper bound of the bucket holding the p-th percentile sample
  /// (0 < p <= 100); 0 when nothing was recorded. Reads are racy against
  /// record() by design — monitoring numbers, not invariants.
  [[nodiscard]] uint64_t percentile_micros(double p) const {
    const uint64_t n = count();
    if (n == 0) return 0;
    // ceil(n * p / 100) computed in integers to stay clock- and FP-env-free.
    const uint64_t rank_scaled =
        static_cast<uint64_t>(p * 100.0);  // p in hundredths of a percent
    uint64_t rank = (n * rank_scaled + 9999) / 10000;
    if (rank == 0) rank = 1;
    uint64_t cumulative = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
      cumulative += buckets_[i].load(std::memory_order_relaxed);
      if (cumulative >= rank) return upper_bound_micros(i);
    }
    return upper_bound_micros(kBuckets - 1);
  }

  [[nodiscard]] uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  [[nodiscard]] static constexpr uint64_t upper_bound_micros(size_t i) {
    return i + 1 >= 64 ? UINT64_MAX : (uint64_t{1} << (i + 1));
  }

 private:
  [[nodiscard]] static size_t bucket_of(uint64_t micros) {
    size_t b = 0;
    while (b + 1 < kBuckets && micros >= (uint64_t{1} << (b + 1))) ++b;
    return b;
  }

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_micros_{0};
};

}  // namespace llhsc::server

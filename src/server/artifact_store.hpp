// Content-addressed artifact store — the memory of the llhscd check daemon.
// Every expensive pipeline product (parsed dts::Tree, parsed delta modules,
// parsed feature model, product line, composed per-unit tree, per-unit check
// verdict, allocation verdict) is cached under an FNV-1a key derived from
// the *content* of its transitive inputs, so invalidation needs no clocks or
// generation counters: change any input byte and the key changes with it.
//
// Dependency edges are explicit where content alone cannot prove freshness:
// a TreeArtifact records the (include-name, content-hash) pairs its parse
// loaded, and a lookup revalidates each against the request's SourceManager
// — an edited .dtsi invalidates every tree that included it even though the
// main source text is unchanged. The re-parse happens under the same
// (source, filename) cache slot, but the published artifact's *key* folds
// the include hashes in, so it changes with the include content. Derived
// artifacts (composed trees, check verdicts) embed their inputs' keys in
// their own key, so an include edit propagates to every downstream verdict
// by construction — never a stale verdict served over a fresh parse.
//
// Keys are 64-bit FNV-1a, a deliberate tradeoff: the store is a per-process
// cache over one editing session's inputs, so the birthday bound (~2^32
// distinct inputs before a collision is likely) is far beyond any real
// workload — but a collision *would* silently serve another input's
// parse/verdict, with no detection path. If this store ever backs a shared
// or persistent service, widen the keys (e.g. two independently-seeded FNV
// streams) or verify source text on hit before trusting the arithmetic.
//
// Concurrency: every public method is thread-safe. A get-or-build on a key
// another thread is already building *waits for that build* instead of
// duplicating it (per-key in-flight latch), so n concurrent identical
// requests cost one parse/derive/check. Values are shared_ptr<const ...>:
// immutable after publication, safe to read from any number of workers.
//
// Capacity is bounded per artifact class with FIFO eviction; an eviction is
// a counter, never an error (the next request rebuilds).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "checkers/finding.hpp"
#include "checkers/graph/graph.hpp"
#include "delta/delta.hpp"
#include "dts/parser.hpp"
#include "dts/tree.hpp"
#include "feature/model.hpp"

namespace llhsc::server {

/// Cumulative counters, exported through the daemon's `stats` method.
struct StoreStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t tree_parses = 0;   // dts parses actually executed
  uint64_t delta_parses = 0;
  uint64_t model_parses = 0;
  uint64_t product_line_builds = 0;  // core clones into ProductLine objects
  uint64_t derives = 0;       // composed-tree rebuilds actually executed
  uint64_t unit_checks = 0;   // per-unit checker runs actually executed
  uint64_t graph_builds = 0;  // device-graph IR builds actually executed
  uint64_t cross_checks = 0;  // cross-unit graph analyses actually executed
  uint64_t lifted_checks = 0;  // family-based lifted analyses actually executed
};

/// One parsed DTS with its include dependency edges.
struct TreeArtifact {
  /// Effective content key: fnv(main source, filename) folded with every
  /// include's (name, content-hash) edge — changes when any transitive
  /// input byte changes, so keys derived from it inherit include freshness.
  uint64_t key = 0;
  std::shared_ptr<const dts::Tree> tree;  // null when the parse failed hard
  std::string diagnostics_text;           // full render of the parse diags
  bool parse_errors = false;
  /// (include name, fnv1a64 of content) for every /include/ the parse
  /// loaded; revalidated on lookup.
  std::vector<std::pair<std::string, uint64_t>> includes;
};

/// Parsed delta modules plus a canonical per-module fingerprint, so a
/// composed tree can be keyed by exactly the modules it applies — editing
/// one module leaves every product that does not activate it untouched.
struct DeltaArtifact {
  uint64_t key = 0;
  std::vector<delta::DeltaModule> modules;
  std::vector<uint64_t> module_keys;  // parallel to `modules`
  std::string diagnostics_text;
  bool parse_errors = false;
};

struct ModelArtifact {
  uint64_t key = 0;
  std::shared_ptr<const feature::FeatureModel> model;
  std::string diagnostics_text;
  bool parse_errors = false;
};

struct ProductLineArtifact {
  uint64_t key = 0;  // fnv(core key, deltas key)
  std::shared_ptr<const delta::ProductLine> product_line;
};

/// One derived (core + active deltas) tree with its printed source.
struct ComposedArtifact {
  uint64_t key = 0;  // fnv(core key, active module keys in application order)
  std::shared_ptr<const dts::Tree> tree;
  std::string dts_text;
  std::string diagnostics_text;
  bool derive_errors = false;
};

/// The device-graph IR of one tree (checkers/graph/graph.hpp), keyed by the
/// tree's content key alone — the graph is option-independent, so every
/// option set over the same tree shares one build. The graph's GraphNode
/// entries alias the source tree's nodes; `source` pins that tree alive for
/// the artifact's lifetime.
struct GraphArtifact {
  uint64_t key = 0;  // the tree/composed key, graph-salted
  std::shared_ptr<const checkers::graph::DeviceGraph> graph;
  std::shared_ptr<const dts::Tree> source;
};

/// The verdict of one checker run over one tree under one option set.
struct CheckArtifact {
  uint64_t key = 0;  // fnv(tree/composed key, options fingerprint)
  checkers::Findings findings;
  uint64_t solver_checks = 0;
  uint64_t queries_issued = 0;
  uint64_t queries_pruned = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_errors = 0;
};

struct AllocationArtifact {
  uint64_t key = 0;  // fnv(model key, exclusive set, VM feature sets, backend)
  checkers::Findings findings;
};

/// Canonical fingerprint of one delta module (name, when, after, and every
/// operation with its printed body). Stable across processes: no pointer or
/// arena identity leaks into the text.
[[nodiscard]] uint64_t delta_module_fingerprint(const delta::DeltaModule& m);

/// Mixes a 64-bit value into an FNV-1a state byte-by-byte — the glue for
/// deriving composite keys from already-hashed inputs.
[[nodiscard]] uint64_t fnv_combine(uint64_t h, uint64_t v);

class ArtifactStore {
 public:
  /// `capacity` bounds each artifact class independently (FIFO eviction).
  explicit ArtifactStore(size_t capacity = 512);

  /// Content-addressed parse. `sources` must already carry the request's
  /// include environment (in-memory files and/or base directory); the
  /// returned artifact's include edges were validated against it.
  /// `was_hit` (optional) reports whether this call reused a cached parse.
  std::shared_ptr<const TreeArtifact> tree(const std::string& source,
                                           const std::string& filename,
                                           dts::SourceManager& sources,
                                           bool* was_hit = nullptr);

  std::shared_ptr<const DeltaArtifact> deltas(const std::string& source,
                                              const std::string& filename,
                                              bool* was_hit = nullptr);

  std::shared_ptr<const ModelArtifact> model(const std::string& source,
                                             const std::string& filename,
                                             bool* was_hit = nullptr);

  /// A ProductLine over a cached core tree + delta artifact (clones the core
  /// once per (core, deltas) pair, not per request).
  std::shared_ptr<const ProductLineArtifact> product_line(
      const TreeArtifact& core, const DeltaArtifact& deltas,
      bool* was_hit = nullptr);

  /// Get-or-build for derived artifacts: the builder runs only on a miss,
  /// and concurrent callers with the same key share one build.
  std::shared_ptr<const ComposedArtifact> composed(
      uint64_t key, const std::function<ComposedArtifact()>& build,
      bool* was_hit = nullptr);
  std::shared_ptr<const CheckArtifact> unit_check(
      uint64_t key, const std::function<CheckArtifact()>& build,
      bool* was_hit = nullptr);
  /// A cross-unit verdict (the session's exclusive-provider analysis). Same
  /// cache as unit_check, but counted as `cross_checks` so the per-unit
  /// incrementality evidence (`unit_checks`) stays a pure per-unit count.
  std::shared_ptr<const CheckArtifact> cross_check(
      uint64_t key, const std::function<CheckArtifact()>& build,
      bool* was_hit = nullptr);
  /// A family-based lifted verdict (src/lift): one analysis covers every
  /// configuration, cached under the composed family key (core + every
  /// delta module + model + options). Same cache as unit_check, counted as
  /// `lifted_checks`.
  std::shared_ptr<const CheckArtifact> lifted_check(
      uint64_t key, const std::function<CheckArtifact()>& build,
      bool* was_hit = nullptr);
  /// Builds (or reuses) the device graph of the tree whose content key is
  /// `tree_key`, keeping `source` alive alongside it.
  std::shared_ptr<const GraphArtifact> graph(
      uint64_t tree_key, const std::shared_ptr<const dts::Tree>& source,
      bool* was_hit = nullptr);
  std::shared_ptr<const AllocationArtifact> allocation(
      uint64_t key, const std::function<AllocationArtifact()>& build,
      bool* was_hit = nullptr);

  [[nodiscard]] StoreStats stats() const;

 private:
  template <typename T>
  class Cache {
   public:
    using Build = std::function<std::shared_ptr<const T>()>;

    /// The published value for `key`, or null. Never blocks on builds.
    std::shared_ptr<const T> lookup(uint64_t key);

    /// Runs `build` for `key` and publishes the result — unless another
    /// thread is already building the same key, in which case this waits
    /// for and returns that thread's result instead. `built` reports
    /// whether *this* call executed the builder. Publishing replaces any
    /// stale entry under the key and bumps `evictions` when the capacity
    /// bound pushes an old key out.
    std::shared_ptr<const T> build_or_wait(uint64_t key, const Build& build,
                                           size_t capacity, bool& built,
                                           uint64_t& evictions);

   private:
    struct InFlight {
      std::shared_ptr<const T> value;
      bool done = false;
    };
    std::mutex mutex_;
    std::condition_variable ready_;
    std::unordered_map<uint64_t, std::shared_ptr<const T>> entries_;
    std::unordered_map<uint64_t, std::shared_ptr<InFlight>> building_;
    std::deque<uint64_t> order_;  // FIFO eviction
  };

  /// lookup -> hit, else build_or_wait; folds the outcome into stats_.
  template <typename T>
  std::shared_ptr<const T> get_or_build(
      Cache<T>& cache, uint64_t key,
      const std::function<std::shared_ptr<const T>()>& build, bool* was_hit,
      uint64_t StoreStats::* built_counter);

  size_t capacity_;
  Cache<TreeArtifact> trees_;
  Cache<DeltaArtifact> deltas_;
  Cache<ModelArtifact> models_;
  Cache<ProductLineArtifact> product_lines_;
  Cache<ComposedArtifact> composed_;
  Cache<CheckArtifact> checks_;
  Cache<GraphArtifact> graphs_;
  Cache<AllocationArtifact> allocations_;

  mutable std::mutex stats_mutex_;
  StoreStats stats_;
};

}  // namespace llhsc::server

// A small fixed-size thread pool. The pipeline uses it to run the per-VM
// stages of the Fig. 2 workflow concurrently; workers pull tasks from one
// queue, and wait_idle() gives the submitting thread a barrier. Tasks must
// not throw — wrap fallible work with parallel_for, which captures the
// first exception and rethrows it on the caller.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace llhsc::support {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to at least 1; 0 selects the
  /// hardware concurrency).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Tasks may submit further tasks.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task (including tasks submitted by tasks)
  /// has finished.
  void wait_idle();

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// The pool size `jobs` resolves to: 0 means hardware concurrency.
  [[nodiscard]] static unsigned resolve_jobs(unsigned jobs);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t in_flight_ = 0;  // queued + running tasks
  bool stopping_ = false;
};

/// Runs fn(0), ..., fn(count - 1) across the pool and blocks until all
/// calls return. The first exception thrown by any call is rethrown on the
/// caller (remaining indices still run to completion).
void parallel_for(ThreadPool& pool, size_t count,
                  const std::function<void(size_t)>& fn);

}  // namespace llhsc::support

// Table-driven CLI flag parser shared by the llhsc and llhscd binaries, so
// every command spells common options the same way (--jobs, --cache-dir,
// --solver-timeout-ms, --profile, …) and unknown or malformed flags fail
// the same way everywhere (usage error, exit 2). Renamed options keep their
// old spelling as a hidden deprecation alias that parses as the canonical
// name and queues a one-line warning.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace llhsc::support {

enum class FlagKind : uint8_t {
  kBool,   // --name (no value)
  kString, // --name <value> or --name=<value>
  kUint,   // like kString, but validated as an unsigned integer
};

struct FlagSpec {
  const char* name;  // canonical spelling, without the leading "--"
  FlagKind kind = FlagKind::kString;
  /// Hidden deprecated spelling (without "--"); parses as `name` and queues
  /// a deprecation warning. nullptr = none.
  const char* alias = nullptr;
};

struct ParsedFlags {
  /// False on any parse error; `error` then holds a one-line diagnostic and
  /// the caller should print usage and exit 2.
  bool ok = true;
  std::string error;
  /// One line per deprecated alias used ("warning: --old is deprecated; use
  /// --new"). Callers print these to stderr before doing any work.
  std::vector<std::string> warnings;
  std::vector<std::string> positional;

  [[nodiscard]] bool has(std::string_view name) const;
  [[nodiscard]] std::string value(std::string_view name,
                                  std::string_view fallback = "") const;
  /// Pre-validated by the parser; returns `fallback` when the flag was not
  /// given.
  [[nodiscard]] uint64_t uint_value(std::string_view name,
                                    uint64_t fallback = 0) const;

  std::map<std::string, std::string, std::less<>> values;
};

/// Parses argv[first_index..) against `specs`. Arguments that do not start
/// with "--" are positional and kept in order.
[[nodiscard]] ParsedFlags parse_flags(const std::vector<FlagSpec>& specs,
                                      int argc, char** argv, int first_index);

}  // namespace llhsc::support

// A wall-clock budget threaded through long-running solver calls. Default
// constructed deadlines never expire, so call sites can pass one
// unconditionally and only pay the clock read when a limit was requested.
//
// A deadline can additionally carry a shared *cancel token*: expired() turns
// true the moment any thread sets the token, independent of the clock. This
// is how portfolio racing stops the losing backend — the winner flips the
// token and the loser's search loop notices at its next poll.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <utility>

namespace llhsc::support {

/// Shared cancellation flag. Copyable handle; all copies observe the same
/// flag. A default-constructed token is detached and never fires.
class CancelToken {
 public:
  CancelToken() = default;

  [[nodiscard]] static CancelToken create() {
    CancelToken t;
    t.flag_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  [[nodiscard]] bool valid() const { return flag_ != nullptr; }

  void cancel() const {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] bool cancelled() const {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

class Deadline {
 public:
  /// Never expires.
  Deadline() = default;

  /// Expires `ms` milliseconds from now. after_ms(0) is already expired —
  /// useful for tests; callers that mean "unlimited" pass a default Deadline.
  [[nodiscard]] static Deadline after_ms(uint64_t ms) {
    Deadline d;
    d.limited_ = true;
    d.at_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  /// This deadline plus a cancel token: the result also expires once `token`
  /// fires. The wall-clock limit (if any) is preserved.
  [[nodiscard]] Deadline with_cancel(CancelToken token) const {
    Deadline d = *this;
    d.cancel_ = std::move(token);
    return d;
  }

  [[nodiscard]] const CancelToken& cancel_token() const { return cancel_; }

  /// True when nothing can ever expire this deadline — lets search loops
  /// hoist the poll entirely. A deadline carrying a cancel token is not
  /// unlimited even without a clock limit.
  [[nodiscard]] bool unlimited() const { return !limited_ && !cancel_.valid(); }

  [[nodiscard]] bool expired() const {
    if (cancel_.cancelled()) return true;
    return limited_ && std::chrono::steady_clock::now() >= at_;
  }

  /// Milliseconds left on the clock limit: UINT64_MAX when no clock limit,
  /// 0 when expired or cancelled.
  [[nodiscard]] uint64_t remaining_ms() const {
    if (cancel_.cancelled()) return 0;
    if (!limited_) return UINT64_MAX;
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    at_ - std::chrono::steady_clock::now())
                    .count();
    return left > 0 ? static_cast<uint64_t>(left) : 0;
  }

 private:
  std::chrono::steady_clock::time_point at_{};
  bool limited_ = false;
  CancelToken cancel_;
};

}  // namespace llhsc::support

// A wall-clock budget threaded through long-running solver calls. Default
// constructed deadlines never expire, so call sites can pass one
// unconditionally and only pay the clock read when a limit was requested.
#pragma once

#include <chrono>
#include <cstdint>

namespace llhsc::support {

class Deadline {
 public:
  /// Never expires.
  Deadline() = default;

  /// Expires `ms` milliseconds from now. after_ms(0) is already expired —
  /// useful for tests; callers that mean "unlimited" pass a default Deadline.
  [[nodiscard]] static Deadline after_ms(uint64_t ms) {
    Deadline d;
    d.limited_ = true;
    d.at_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  [[nodiscard]] bool unlimited() const { return !limited_; }

  [[nodiscard]] bool expired() const {
    return limited_ && std::chrono::steady_clock::now() >= at_;
  }

  /// Milliseconds left: UINT64_MAX when unlimited, 0 when expired.
  [[nodiscard]] uint64_t remaining_ms() const {
    if (!limited_) return UINT64_MAX;
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    at_ - std::chrono::steady_clock::now())
                    .count();
    return left > 0 ? static_cast<uint64_t>(left) : 0;
  }

 private:
  std::chrono::steady_clock::time_point at_{};
  bool limited_ = false;
};

}  // namespace llhsc::support

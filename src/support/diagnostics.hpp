// Diagnostics engine shared by every llhsc front-end (DTS parser, schema
// loader, delta engine, checkers). A Diagnostic carries a severity, an
// optional source location, a stable code (for tests and tooling) and a
// human-readable message. The DiagnosticEngine accumulates diagnostics and
// renders them in a dtc-like `file:line:col: severity: message` format.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "support/intern.hpp"

namespace llhsc::support {

/// A position inside a source file. Lines and columns are 1-based; a value
/// of 0 means "unknown" (e.g. diagnostics raised on synthesized trees).
/// The file name is an interned Atom: every token and every tree node carries
/// a location, and interning makes copying one a pointer-pair copy instead of
/// a std::string clone.
struct SourceLocation {
  Atom file;
  uint32_t line = 0;
  uint32_t column = 0;

  [[nodiscard]] bool valid() const { return !file.empty() && line > 0; }
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const SourceLocation&, const SourceLocation&) = default;
};

enum class Severity : uint8_t {
  kNote,
  kWarning,
  kError,
};

[[nodiscard]] std::string_view to_string(Severity s);

/// One reported problem. `code` is a short stable identifier such as
/// "dts-parse", "schema-required" or "sem-overlap" that tests key on.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;
  std::string message;
  SourceLocation location;

  [[nodiscard]] std::string render() const;
};

/// Accumulates diagnostics. Cheap to copy-construct empty, movable; the
/// typical pattern is one engine per pipeline run, passed by reference.
class DiagnosticEngine {
 public:
  void report(Severity severity, std::string code, std::string message,
              SourceLocation location = {});

  void note(std::string code, std::string message, SourceLocation loc = {}) {
    report(Severity::kNote, std::move(code), std::move(message), std::move(loc));
  }
  void warning(std::string code, std::string message, SourceLocation loc = {}) {
    report(Severity::kWarning, std::move(code), std::move(message), std::move(loc));
  }
  void error(std::string code, std::string message, SourceLocation loc = {}) {
    report(Severity::kError, std::move(code), std::move(message), std::move(loc));
  }

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  [[nodiscard]] size_t error_count() const { return errors_; }
  [[nodiscard]] size_t warning_count() const { return warnings_; }
  [[nodiscard]] bool has_errors() const { return errors_ > 0; }
  [[nodiscard]] bool contains_code(std::string_view code) const;

  /// Appends every diagnostic of `other` (used by the pipeline to fold
  /// per-VM engines back into the run-wide one in declaration order).
  void merge(const DiagnosticEngine& other);

  /// Renders every diagnostic, one per line.
  [[nodiscard]] std::string render() const;
  void clear();

 private:
  std::vector<Diagnostic> diagnostics_;
  size_t errors_ = 0;
  size_t warnings_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Diagnostic& d);

}  // namespace llhsc::support

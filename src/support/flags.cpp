#include "support/flags.hpp"

#include <cctype>

namespace llhsc::support {

namespace {

bool is_unsigned_integer(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

bool ParsedFlags::has(std::string_view name) const {
  return values.find(name) != values.end();
}

std::string ParsedFlags::value(std::string_view name,
                               std::string_view fallback) const {
  auto it = values.find(name);
  return it == values.end() ? std::string(fallback) : it->second;
}

uint64_t ParsedFlags::uint_value(std::string_view name,
                                 uint64_t fallback) const {
  auto it = values.find(name);
  if (it == values.end()) return fallback;
  return std::stoull(it->second);
}

ParsedFlags parse_flags(const std::vector<FlagSpec>& specs, int argc,
                        char** argv, int first_index) {
  ParsedFlags out;
  for (int i = first_index; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      out.positional.emplace_back(arg);
      continue;
    }
    std::string_view body = arg.substr(2);
    // --name=value is accepted for valued flags.
    std::string_view inline_value;
    bool has_inline_value = false;
    if (size_t eq = body.find('='); eq != std::string_view::npos) {
      inline_value = body.substr(eq + 1);
      body = body.substr(0, eq);
      has_inline_value = true;
    }

    const FlagSpec* spec = nullptr;
    bool via_alias = false;
    for (const FlagSpec& s : specs) {
      if (body == s.name) {
        spec = &s;
        break;
      }
      if (s.alias != nullptr && body == s.alias) {
        spec = &s;
        via_alias = true;
        break;
      }
    }
    if (spec == nullptr) {
      out.ok = false;
      out.error = "unknown option --" + std::string(body);
      return out;
    }
    if (via_alias) {
      out.warnings.push_back("warning: --" + std::string(body) +
                             " is deprecated; use --" + spec->name);
    }

    std::string value;
    if (spec->kind == FlagKind::kBool) {
      if (has_inline_value) {
        out.ok = false;
        out.error = "option --" + std::string(spec->name) +
                    " does not take a value";
        return out;
      }
      value = "1";
    } else if (has_inline_value) {
      value = std::string(inline_value);
    } else {
      if (i + 1 >= argc) {
        out.ok = false;
        out.error = "option --" + std::string(body) + " needs a value";
        return out;
      }
      value = argv[++i];
    }
    if (spec->kind == FlagKind::kUint && !is_unsigned_integer(value)) {
      out.ok = false;
      out.error = "bad --" + std::string(spec->name) + " value '" + value +
                  "' (want an unsigned integer)";
      return out;
    }
    out.values[spec->name] = std::move(value);
  }
  return out;
}

}  // namespace llhsc::support

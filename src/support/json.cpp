#include "support/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstring>

namespace llhsc::support {

namespace {

const Json kNullJson;
const std::string kEmptyString;

void append_indent(std::string& out, int indent) {
  out += '\n';
  out.append(static_cast<size_t>(indent) * 2, ' ');
}

}  // namespace

Json Json::boolean(bool b) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = b;
  return j;
}

Json Json::integer(int64_t v) {
  Json j;
  j.kind_ = Kind::kInt;
  j.int_ = v;
  return j;
}

Json Json::unsigned_integer(uint64_t v) {
  // Counters comfortably fit int64; saturate rather than wrap if one ever
  // does not, so the wire never carries a negative count.
  return integer(v > static_cast<uint64_t>(INT64_MAX)
                     ? INT64_MAX
                     : static_cast<int64_t>(v));
}

Json Json::number(double v) {
  Json j;
  j.kind_ = Kind::kDouble;
  j.double_ = v;
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

bool Json::as_bool(bool fallback) const {
  return kind_ == Kind::kBool ? bool_ : fallback;
}

int64_t Json::as_int(int64_t fallback) const {
  if (kind_ == Kind::kInt) return int_;
  if (kind_ == Kind::kDouble) return static_cast<int64_t>(double_);
  return fallback;
}

uint64_t Json::as_uint(uint64_t fallback) const {
  if (kind_ == Kind::kInt) return int_ < 0 ? fallback : static_cast<uint64_t>(int_);
  if (kind_ == Kind::kDouble) {
    return double_ < 0 ? fallback : static_cast<uint64_t>(double_);
  }
  return fallback;
}

double Json::as_double(double fallback) const {
  if (kind_ == Kind::kDouble) return double_;
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  return fallback;
}

const std::string& Json::as_string() const {
  return kind_ == Kind::kString ? string_ : kEmptyString;
}

const Json& Json::at(std::string_view key) const {
  if (kind_ == Kind::kObject) {
    for (const auto& [k, v] : fields_) {
      if (k == key) return v;
    }
  }
  return kNullJson;
}

bool Json::has(std::string_view key) const {
  return kind_ == Kind::kObject && !at(key).is_null();
}

Json& Json::set(std::string key, Json value) {
  kind_ = Kind::kObject;
  for (auto& [k, v] : fields_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  fields_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  kind_ = Kind::kArray;
  items_.push_back(std::move(value));
  return *this;
}

void json_escape_to(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string Json::dump() const { return dump(Style::kCompact); }

std::string Json::dump(Style style) const {
  std::string out;
  dump_to(out, style, 0);
  return out;
}

void Json::dump_to(std::string& out, Style style, int indent) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInt:
      out += std::to_string(int_);
      break;
    case Kind::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6f", double_);
      out += buf;
      break;
    }
    case Kind::kString:
      json_escape_to(out, string_);
      break;
    case Kind::kArray: {
      if (style == Style::kPretty && items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const Json& item : items_) {
        if (!first) out += ',';
        if (!first && style == Style::kSpaced) out += ' ';
        first = false;
        if (style == Style::kPretty) append_indent(out, indent + 1);
        item.dump_to(out, style, indent + 1);
      }
      if (style == Style::kPretty) append_indent(out, indent);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (style == Style::kPretty && fields_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : fields_) {
        if (!first) out += ',';
        if (!first && style == Style::kSpaced) out += ' ';
        first = false;
        if (style == Style::kPretty) append_indent(out, indent + 1);
        json_escape_to(out, k);
        out += ':';
        if (style != Style::kCompact) out += ' ';
        v.dump_to(out, style, indent + 1);
      }
      if (style == Style::kPretty) append_indent(out, indent);
      out += '}';
      break;
    }
  }
}

namespace {

struct Parser {
  std::string_view text;
  size_t pos = 0;
  /// Nesting guard: a hostile request must not stack-overflow the daemon.
  int depth = 0;
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) == word) {
      pos += word.size();
      return true;
    }
    return false;
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) return std::nullopt;
      char esc = text[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos + 4 > text.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          // UTF-8 encode the code point (BMP only; the daemon's own writer
          // emits \u only below 0x20, so this path exists for foreign
          // clients).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> parse_value() {
    if (depth > kMaxDepth) return std::nullopt;
    skip_ws();
    if (pos >= text.size()) return std::nullopt;
    char c = text[pos];
    if (c == 'n') return literal("null") ? std::optional<Json>(Json::null()) : std::nullopt;
    if (c == 't') return literal("true") ? std::optional<Json>(Json::boolean(true)) : std::nullopt;
    if (c == 'f') return literal("false") ? std::optional<Json>(Json::boolean(false)) : std::nullopt;
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      return Json::string(std::move(*s));
    }
    if (c == '[') {
      ++pos;
      ++depth;
      Json arr = Json::array();
      skip_ws();
      if (consume(']')) {
        --depth;
        return arr;
      }
      while (true) {
        auto v = parse_value();
        if (!v) return std::nullopt;
        arr.push(std::move(*v));
        if (consume(',')) continue;
        if (consume(']')) {
          --depth;
          return arr;
        }
        return std::nullopt;
      }
    }
    if (c == '{') {
      ++pos;
      ++depth;
      Json obj = Json::object();
      skip_ws();
      if (consume('}')) {
        --depth;
        return obj;
      }
      while (true) {
        skip_ws();
        auto key = parse_string();
        if (!key) return std::nullopt;
        if (!consume(':')) return std::nullopt;
        auto v = parse_value();
        if (!v) return std::nullopt;
        obj.set(std::move(*key), std::move(*v));
        if (consume(',')) continue;
        if (consume('}')) {
          --depth;
          return obj;
        }
        return std::nullopt;
      }
    }
    // number
    size_t start = pos;
    if (c == '-') ++pos;
    bool is_double = false;
    while (pos < text.size()) {
      char d = text[pos];
      if (std::isdigit(static_cast<unsigned char>(d))) {
        ++pos;
      } else if (d == '.' || d == 'e' || d == 'E' || d == '+' || d == '-') {
        is_double = true;
        ++pos;
      } else {
        break;
      }
    }
    if (pos == start) return std::nullopt;
    std::string_view num = text.substr(start, pos - start);
    if (!is_double) {
      int64_t v = 0;
      auto [p, ec] = std::from_chars(num.data(), num.data() + num.size(), v);
      if (ec == std::errc() && p == num.data() + num.size()) {
        return Json::integer(v);
      }
    }
    // std::from_chars for double is not universally available; strtod on a
    // bounded copy is.
    std::string copy(num);
    char* end = nullptr;
    double v = std::strtod(copy.c_str(), &end);
    if (end != copy.c_str() + copy.size()) return std::nullopt;
    return Json::number(v);
  }
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text) {
  Parser p{text};
  auto v = p.parse_value();
  if (!v) return std::nullopt;
  p.skip_ws();
  if (p.pos != text.size()) return std::nullopt;  // trailing garbage
  return v;
}

}  // namespace llhsc::support

#include "support/strings.hpp"

#include <cctype>
#include <sstream>

namespace llhsc::support {

std::string_view trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::optional<uint64_t> parse_integer(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  int base = 10;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    base = 16;
    s.remove_prefix(2);
  } else if (s.size() > 1 && s[0] == '0') {
    base = 8;
    s.remove_prefix(1);
  }
  if (s.empty()) return std::nullopt;
  uint64_t value = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return std::nullopt;
    }
    if (digit >= base) return std::nullopt;
    uint64_t next = value * static_cast<uint64_t>(base) + static_cast<uint64_t>(digit);
    if (next / static_cast<uint64_t>(base) != value) return std::nullopt;  // overflow
    value = next;
  }
  return value;
}

std::string hex(uint64_t value) {
  std::ostringstream os;
  os << "0x" << std::hex << value;
  return os.str();
}

std::string hex_width(uint64_t value, int digits) {
  std::ostringstream os;
  os << std::hex << value;
  std::string body = os.str();
  std::string pad(digits > static_cast<int>(body.size())
                      ? static_cast<size_t>(digits) - body.size()
                      : 0,
                  '0');
  return "0x" + pad + body;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

namespace {
// DT spec v0.4 table 2.1: node name characters.
bool is_node_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == ',' || c == '.' ||
         c == '_' || c == '+' || c == '-';
}
// Property names additionally allow '?' and '#'.
bool is_prop_char(char c) { return is_node_char(c) || c == '?' || c == '#'; }
}  // namespace

bool is_valid_node_name(std::string_view name) {
  if (name.empty()) return false;
  // Optional unit address after '@'.
  size_t at = name.find('@');
  std::string_view base = name.substr(0, at);
  if (base.empty() || base.size() > 31) return false;
  for (char c : base) {
    if (!is_node_char(c)) return false;
  }
  if (at != std::string_view::npos) {
    std::string_view unit = name.substr(at + 1);
    if (unit.empty()) return false;
    for (char c : unit) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != ',' &&
          c != '.' && c != '_' && c != '+' && c != '-') {
        return false;
      }
    }
  }
  return true;
}

bool is_valid_property_name(std::string_view name) {
  if (name.empty() || name.size() > 31) return false;
  for (char c : name) {
    if (!is_prop_char(c)) return false;
  }
  return true;
}

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative glob with backtracking over the most recent '*'.
  size_t p = 0, t = 0;
  size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace llhsc::support

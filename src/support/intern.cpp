#include "support/intern.hpp"

#include <mutex>
#include <ostream>
#include <unordered_set>

#include "support/arena.hpp"

namespace llhsc::support {

namespace {

constexpr size_t kShardCount = 16;  // power of two

struct Shard {
  std::mutex mu;
  std::unordered_set<std::string_view> strings;
  Arena arena;
  size_t bytes = 0;
};

struct Table {
  Shard shards[kShardCount];
};

Table& table() {
  static Table* t = new Table;  // immortal: atoms must outlive static dtors
  return *t;
}

}  // namespace

std::string_view intern(std::string_view s) {
  // The canonical empty atom is the empty view itself, so default-constructed
  // Atoms and interned "" share identity.
  if (s.empty()) return {};
  size_t h = std::hash<std::string_view>{}(s);
  Shard& shard = table().shards[h & (kShardCount - 1)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.strings.find(s);
  if (it != shard.strings.end()) return *it;
  std::string_view stored = shard.arena.copy_string(s);
  shard.strings.insert(stored);
  shard.bytes += stored.size();
  return stored;
}

InternStats intern_stats() {
  InternStats out;
  for (Shard& shard : table().shards) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.strings += shard.strings.size();
    out.bytes += shard.bytes;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, Atom a) { return os << a.view(); }

}  // namespace llhsc::support

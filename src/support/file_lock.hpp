// RAII advisory file lock over flock(2). The multi-process daemon uses it
// for single-writer discipline on shared on-disk stores (the qc1 query
// cache): writers serialise on a sidecar `.lock` file while readers stay
// lock-free — the stores already publish entries with atomic renames, so a
// reader can never observe a torn entry; the lock only stops two writers
// from wasting work on the same entry and gives crash recovery a clean
// story. flock locks are owned by the open file description: a `kill -9`'d
// holder releases the lock the moment the kernel closes its fds, so a dead
// worker can never wedge the cache (asserted by tools/check_crash_recovery.sh
// via try_exclusive()).
#pragma once

#include <string>

namespace llhsc::support {

class FileLock {
 public:
  /// An unlocked, detached lock.
  FileLock() = default;

  /// Opens (creating if absent) `path` and blocks until an exclusive
  /// advisory lock is granted. locked() is false only if the open itself
  /// failed — callers treat that as "proceed unlocked", matching the cache's
  /// best-effort write discipline.
  [[nodiscard]] static FileLock exclusive(const std::string& path);

  /// Non-blocking variant: locked() is false when another process holds the
  /// lock (or the open failed).
  [[nodiscard]] static FileLock try_exclusive(const std::string& path);

  ~FileLock();
  FileLock(FileLock&& other) noexcept;
  FileLock& operator=(FileLock&& other) noexcept;
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

  [[nodiscard]] bool locked() const { return fd_ >= 0; }

  /// Releases early (idempotent).
  void unlock();

 private:
  int fd_ = -1;
};

}  // namespace llhsc::support

#include "support/file_lock.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>

namespace llhsc::support {

namespace {

int open_and_flock(const std::string& path, int operation) {
  const int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (fd < 0) return -1;
  int rc;
  do {
    rc = ::flock(fd, operation);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

FileLock FileLock::exclusive(const std::string& path) {
  FileLock lock;
  lock.fd_ = open_and_flock(path, LOCK_EX);
  return lock;
}

FileLock FileLock::try_exclusive(const std::string& path) {
  FileLock lock;
  lock.fd_ = open_and_flock(path, LOCK_EX | LOCK_NB);
  return lock;
}

FileLock::~FileLock() { unlock(); }

FileLock::FileLock(FileLock&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

FileLock& FileLock::operator=(FileLock&& other) noexcept {
  if (this != &other) {
    unlock();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void FileLock::unlock() {
  if (fd_ >= 0) {
    ::close(fd_);  // releases the flock
    fd_ = -1;
  }
}

}  // namespace llhsc::support

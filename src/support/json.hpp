// Minimal JSON value model shared by every machine-readable llhsc output:
// the llhscd wire protocol (docs/server.md), the findings report
// (--format json), the pipeline trace (--trace-json, docs/pipeline.md) and
// the observability profile (--profile, docs/observability.md). Objects keep
// insertion order (stable output), numbers distinguish integers from doubles
// (counters must round-trip exactly), strings hold arbitrary bytes (DTS
// sources and rendered reports travel inside string fields).
//
// Not a general-purpose JSON library — no comments, no NaN/Inf, and the
// parser rejects trailing garbage so a framing bug surfaces as a protocol
// error instead of a silently truncated request.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace llhsc::support {

class Json {
 public:
  enum class Kind : uint8_t { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  /// Serialisation styles. All three produce the same document; they differ
  /// only in whitespace, so parse(dump(style)) round-trips for each.
  enum class Style : uint8_t {
    /// `{"k":1,"a":[2,3]}` — the wire format: one request or response per
    /// line, '\n'-terminated by the transport.
    kCompact,
    /// `{"k": 1, "a": [2, 3]}` — single line with breathing room; the
    /// findings report (--format json) uses this.
    kSpaced,
    /// Multi-line, two-space indent — --trace-json and --profile documents.
    kPretty,
  };

  Json() = default;
  static Json null() { return Json(); }
  static Json boolean(bool b);
  static Json integer(int64_t v);
  static Json unsigned_integer(uint64_t v);
  static Json number(double v);
  static Json string(std::string s);
  static Json array();
  static Json object();

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }

  // -- readers (defaults returned on kind mismatch: protocol fields are
  //    optional, so "absent or wrong type" uniformly means "default") --
  [[nodiscard]] bool as_bool(bool fallback = false) const;
  [[nodiscard]] int64_t as_int(int64_t fallback = 0) const;
  [[nodiscard]] uint64_t as_uint(uint64_t fallback = 0) const;
  [[nodiscard]] double as_double(double fallback = 0.0) const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Json>& items() const { return items_; }
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& fields()
      const {
    return fields_;
  }

  /// Object field lookup; returns a shared null value when absent.
  [[nodiscard]] const Json& at(std::string_view key) const;
  [[nodiscard]] bool has(std::string_view key) const;

  // -- builders --
  Json& set(std::string key, Json value);  // object field (insertion order)
  Json& push(Json value);                  // array element

  /// Compact single-line serialisation (Style::kCompact).
  [[nodiscard]] std::string dump() const;
  [[nodiscard]] std::string dump(Style style) const;

  /// Parses exactly one JSON document; nullopt on any syntax error or
  /// trailing non-whitespace.
  [[nodiscard]] static std::optional<Json> parse(std::string_view text);

 private:
  void dump_to(std::string& out, Style style, int indent) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> items_;                              // kArray
  std::vector<std::pair<std::string, Json>> fields_;     // kObject
};

/// Appends `s` JSON-escaped (quotes included) to `out`. Control bytes are
/// \u00XX-escaped; everything else passes through verbatim, so UTF-8 and
/// raw report bytes round-trip.
void json_escape_to(std::string& out, std::string_view s);

}  // namespace llhsc::support

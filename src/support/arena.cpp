#include "support/arena.hpp"

#include <algorithm>
#include <cstring>

namespace llhsc::support {

void* Arena::allocate(size_t size, size_t align) {
  if (size == 0) size = 1;
  char* aligned = reinterpret_cast<char*>(
      (reinterpret_cast<uintptr_t>(cur_) + (align - 1)) & ~(align - 1));
  if (aligned == nullptr || aligned + size > end_) {
    grow(size + align);
    aligned = reinterpret_cast<char*>(
        (reinterpret_cast<uintptr_t>(cur_) + (align - 1)) & ~(align - 1));
  }
  cur_ = aligned + size;
  bytes_allocated_ += size;
  return aligned;
}

std::string_view Arena::copy_string(std::string_view s) {
  char* p = static_cast<char*>(allocate(s.size() + 1, 1));
  if (!s.empty()) std::memcpy(p, s.data(), s.size());
  p[s.size()] = '\0';
  return {p, s.size()};
}

void Arena::grow(size_t min_bytes) {
  size_t next = slabs_.empty()
                    ? kFirstSlabBytes
                    : std::min(slabs_.back().capacity * 2, kMaxSlabBytes);
  next = std::max(next, min_bytes);
  Slab slab{std::make_unique<char[]>(next), next};
  cur_ = slab.data.get();
  end_ = cur_ + next;
  bytes_reserved_ += next;
  slabs_.push_back(std::move(slab));
}

void Arena::reset() {
  slabs_.clear();
  cur_ = end_ = nullptr;
  bytes_allocated_ = 0;
  bytes_reserved_ = 0;
}

}  // namespace llhsc::support

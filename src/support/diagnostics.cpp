#include "support/diagnostics.hpp"

#include <ostream>
#include <sstream>

namespace llhsc::support {

std::string SourceLocation::to_string() const {
  if (!valid()) return "<unknown>";
  std::ostringstream os;
  os << file << ':' << line;
  if (column > 0) os << ':' << column;
  return os.str();
}

std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

std::string Diagnostic::render() const {
  std::ostringstream os;
  if (location.valid()) os << location.to_string() << ": ";
  os << to_string(severity) << ": ";
  if (!code.empty()) os << '[' << code << "] ";
  os << message;
  return os.str();
}

void DiagnosticEngine::report(Severity severity, std::string code,
                              std::string message, SourceLocation location) {
  if (severity == Severity::kError) ++errors_;
  if (severity == Severity::kWarning) ++warnings_;
  diagnostics_.push_back(Diagnostic{severity, std::move(code),
                                    std::move(message), std::move(location)});
}

bool DiagnosticEngine::contains_code(std::string_view code) const {
  for (const auto& d : diagnostics_) {
    if (d.code == code) return true;
  }
  return false;
}

void DiagnosticEngine::merge(const DiagnosticEngine& other) {
  diagnostics_.insert(diagnostics_.end(), other.diagnostics_.begin(),
                      other.diagnostics_.end());
  errors_ += other.errors_;
  warnings_ += other.warnings_;
}

std::string DiagnosticEngine::render() const {
  std::ostringstream os;
  for (const auto& d : diagnostics_) os << d.render() << '\n';
  return os.str();
}

void DiagnosticEngine::clear() {
  diagnostics_.clear();
  errors_ = 0;
  warnings_ = 0;
}

std::ostream& operator<<(std::ostream& os, const Diagnostic& d) {
  return os << d.render();
}

}  // namespace llhsc::support

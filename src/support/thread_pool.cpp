#include "support/thread_pool.hpp"

#include <exception>
#include <utility>

namespace llhsc::support {

unsigned ThreadPool::resolve_jobs(unsigned jobs) {
  if (jobs > 0) return jobs;
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads) {
  unsigned n = resolve_jobs(threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, size_t count,
                  const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (count == 1) {  // nothing to overlap; skip the queue round-trip
    fn(0);
    return;
  }
  std::mutex error_mutex;
  std::exception_ptr first_error;
  for (size_t i = 0; i < count; ++i) {
    pool.submit([&, i] {
      try {
        fn(i);
      } catch (...) {
        std::unique_lock<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace llhsc::support

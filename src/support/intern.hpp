// Process-wide string interning for the DTS front end. Node names, property
// names, label names, string property values and file names form a small,
// heavily repeated vocabulary ("reg", "compatible", "#address-cells", the
// same .dts file name on every token…); storing each distinct spelling once
// in an arena and passing 16-byte views around removes the per-token /
// per-property std::string traffic that dominated cold-parse allocation.
//
// Atom is the unit of that scheme: a string_view whose storage is guaranteed
// to live in the global intern table (stable for the process lifetime, so
// Atoms may be copied across trees, threads and sessions freely). Atoms can
// only be created by interning — every constructor copies unseen text into
// the table — which is what makes the unchecked view safe: an Atom can never
// dangle.
//
// The table is sharded (hash-partitioned mutexes) so the parallel per-VM
// pipeline can intern concurrently. Distinct strings accumulate for the
// process lifetime by design; the vocabulary of a DeviceTree workload is
// closed, and a long-lived llhscd pays a few KB per genuinely new spelling.
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>

namespace llhsc::support {

/// Interns `s`: returns a view of the canonical, process-lifetime copy.
[[nodiscard]] std::string_view intern(std::string_view s);

struct InternStats {
  size_t strings = 0;
  size_t bytes = 0;  // payload bytes held by the table's arenas
};
[[nodiscard]] InternStats intern_stats();

class Atom {
 public:
  constexpr Atom() = default;
  Atom(std::string_view s) : view_(intern(s)) {}          // NOLINT(google-explicit-constructor)
  Atom(const char* s) : Atom(std::string_view(s)) {}      // NOLINT(google-explicit-constructor)
  Atom(const std::string& s) : Atom(std::string_view(s)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] constexpr std::string_view view() const { return view_; }
  constexpr operator std::string_view() const { return view_; }  // NOLINT(google-explicit-constructor)
  [[nodiscard]] std::string str() const { return std::string(view_); }

  // string_view forwarding surface, so call sites read unchanged.
  [[nodiscard]] constexpr bool empty() const { return view_.empty(); }
  [[nodiscard]] constexpr size_t size() const { return view_.size(); }
  [[nodiscard]] constexpr const char* data() const { return view_.data(); }
  [[nodiscard]] constexpr auto begin() const { return view_.begin(); }
  [[nodiscard]] constexpr auto end() const { return view_.end(); }
  [[nodiscard]] constexpr char front() const { return view_.front(); }
  [[nodiscard]] constexpr char back() const { return view_.back(); }
  [[nodiscard]] constexpr char operator[](size_t i) const { return view_[i]; }
  [[nodiscard]] constexpr std::string_view substr(
      size_t pos, size_t n = std::string_view::npos) const {
    return view_.substr(pos, n);
  }
  [[nodiscard]] constexpr size_t find(char c, size_t pos = 0) const {
    return view_.find(c, pos);
  }
  [[nodiscard]] constexpr size_t find(std::string_view s, size_t pos = 0) const {
    return view_.find(s, pos);
  }
  [[nodiscard]] constexpr size_t rfind(char c,
                                       size_t pos = std::string_view::npos) const {
    return view_.rfind(c, pos);
  }
  [[nodiscard]] constexpr bool starts_with(std::string_view s) const {
    return view_.starts_with(s);
  }
  [[nodiscard]] constexpr bool ends_with(std::string_view s) const {
    return view_.ends_with(s);
  }

  /// Interned atoms with equal content share storage, so identity decides.
  friend constexpr bool operator==(Atom a, Atom b) {
    return a.view_.data() == b.view_.data() && a.view_.size() == b.view_.size();
  }
  friend constexpr bool operator==(Atom a, std::string_view b) {
    return a.view_ == b;
  }
  friend constexpr bool operator==(std::string_view a, Atom b) {
    return a == b.view_;
  }
  friend bool operator==(Atom a, const std::string& b) { return a.view_ == b; }
  friend bool operator==(const std::string& a, Atom b) { return a == b.view_; }
  friend constexpr bool operator==(Atom a, const char* b) {
    return a.view_ == std::string_view(b);
  }
  friend constexpr bool operator==(const char* a, Atom b) {
    return std::string_view(a) == b.view_;
  }
  friend constexpr auto operator<=>(Atom a, Atom b) {
    return a.view_.compare(b.view_) <=> 0;
  }

  // Concatenation yields std::string, like string_view would if it could.
  friend std::string operator+(const std::string& a, Atom b) {
    std::string out;
    out.reserve(a.size() + b.size());
    out.append(a).append(b.view_);
    return out;
  }
  friend std::string operator+(Atom a, const std::string& b) {
    std::string out;
    out.reserve(a.size() + b.size());
    out.append(a.view_).append(b);
    return out;
  }
  friend std::string operator+(const char* a, Atom b) {
    return std::string(a) + b;
  }
  friend std::string operator+(Atom a, const char* b) {
    std::string out(a.view_);
    out.append(b);
    return out;
  }

 private:
  std::string_view view_;
};

std::ostream& operator<<(std::ostream& os, Atom a);

}  // namespace llhsc::support

template <>
struct std::hash<llhsc::support::Atom> {
  size_t operator()(llhsc::support::Atom a) const noexcept {
    return std::hash<std::string_view>{}(a.view());
  }
};

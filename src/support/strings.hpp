// Small string and integer-formatting helpers used across llhsc. DeviceTree
// sources mix hex and decimal literals freely, so the parse helpers accept
// both (0x prefix selects hex, dtc-compatible).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace llhsc::support {

[[nodiscard]] std::string_view trim(std::string_view s);
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);
/// Splits on any run of whitespace; never returns empty tokens.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view s);

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix);

/// Parses a DTS integer literal: "0x..." (hex), "0..." (octal, dtc keeps
/// C semantics) or decimal. Returns nullopt on malformed input or overflow.
[[nodiscard]] std::optional<uint64_t> parse_integer(std::string_view s);

/// Formats as 0x%x (lower-case, no leading zeros) — the dtc convention.
[[nodiscard]] std::string hex(uint64_t value);
/// Formats as 0x%0*x with the given digit count.
[[nodiscard]] std::string hex_width(uint64_t value, int digits);

/// Joins items with the given separator.
[[nodiscard]] std::string join(const std::vector<std::string>& items,
                               std::string_view sep);

/// True if `name` is a valid DTS node/property name character sequence.
[[nodiscard]] bool is_valid_node_name(std::string_view name);
[[nodiscard]] bool is_valid_property_name(std::string_view name);

/// Simple glob match supporting '*' and '?' (used by schema `pattern`).
[[nodiscard]] bool glob_match(std::string_view pattern, std::string_view text);

/// FNV-1a 64-bit over arbitrary bytes — the content-addressing hash shared
/// by the solver query cache and the server's artifact store.
[[nodiscard]] constexpr uint64_t fnv1a64(std::string_view bytes,
                                         uint64_t seed = 0xcbf29ce484222325ull) {
  uint64_t h = seed;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace llhsc::support

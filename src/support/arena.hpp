// Bump-pointer slab allocator in the LLVM BumpPtrAllocator lineage
// (SNIPPETS.md Snippet 1): allocation is a pointer increment inside the
// current slab, slabs grow geometrically, and everything is released at once
// when the arena dies. Nothing allocated from an Arena is individually freed
// and no destructors run, so only trivially-destructible payloads belong
// here — llhsc uses it as the backing store for interned strings
// (support/intern.hpp), which is what the DTS front end's token, name and
// string-value storage sits on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace llhsc::support {

class Arena {
 public:
  /// First slab size; subsequent slabs double up to kMaxSlabBytes.
  static constexpr size_t kFirstSlabBytes = 4096;
  static constexpr size_t kMaxSlabBytes = 1u << 20;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Returns `size` bytes aligned to `align` (a power of two). Oversized
  /// requests get a dedicated slab and never waste bump space.
  void* allocate(size_t size, size_t align = alignof(std::max_align_t));

  /// Copies `s` into the arena and returns a view of the stable copy.
  /// The copy is NUL-terminated one past the view (handy for C APIs).
  std::string_view copy_string(std::string_view s);

  /// Releases every slab; all outstanding pointers become invalid.
  void reset();

  struct Stats {
    size_t slabs = 0;
    size_t bytes_allocated = 0;  // requested by callers
    size_t bytes_reserved = 0;   // sum of slab capacities
  };
  [[nodiscard]] Stats stats() const {
    return {slabs_.size(), bytes_allocated_, bytes_reserved_};
  }

 private:
  struct Slab {
    std::unique_ptr<char[]> data;
    size_t capacity = 0;
  };

  void grow(size_t min_bytes);

  std::vector<Slab> slabs_;
  char* cur_ = nullptr;
  char* end_ = nullptr;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace llhsc::support

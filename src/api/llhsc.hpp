// The public llhsc embedding API — the one entry point tools, benches and
// external embedders program against. Everything here is a thin, stable
// façade over the server layer: `run_check` is exactly the one-shot
// `llhsc check` flow, `run_session` the incremental product-line check, and
// `run_server` the llhscd daemon loop. The façade adds no behaviour of its
// own, so the CLI, the daemon and an embedder calling this header produce
// byte-identical reports for identical inputs.
//
// Observability: install an obs::TraceSink (obs/obs.hpp) around any of
// these calls to capture the span/counter event stream; export it with
// obs::write_chrome_trace for a Perfetto-loadable profile
// (docs/observability.md).
#pragma once

#include <memory>

#include "server/artifact_store.hpp"
#include "server/check_service.hpp"
#include "server/server.hpp"
#include "server/session.hpp"

namespace llhsc::api {

// Request/result vocabulary, re-exported under the stable namespace. The
// definitions live with the server implementation; embedders include only
// this header.
using CheckRequest = server::CheckRequest;
using CheckResult = server::CheckOutcome;
using SessionRequest = server::SessionRequest;
using SessionProduct = server::SessionProduct;
using SessionResult = server::SessionOutcome;
using ServerOptions = server::ServerOptions;
using StoreStats = server::StoreStats;

/// A content-addressed artifact cache shared across run_check/run_session
/// calls: parses and check verdicts are reused when sources and options are
/// unchanged. Thread-safe; one store may serve concurrent calls.
class CheckStore {
 public:
  explicit CheckStore(size_t capacity = 512) : store_(capacity) {}

  [[nodiscard]] StoreStats stats() const { return store_.stats(); }

  /// The underlying store, for layers (the daemon) that need it directly.
  [[nodiscard]] server::ArtifactStore& raw() { return store_; }

 private:
  server::ArtifactStore store_;
};

/// Runs the full check battery over one in-memory DTS. Without a store
/// every call parses and checks from scratch (the one-shot CLI path).
[[nodiscard]] CheckResult run_check(const CheckRequest& request);
[[nodiscard]] CheckResult run_check(const CheckRequest& request,
                                    CheckStore& store);

/// Incremental product-line check: derives and checks every product, with
/// per-unit verdicts cached in `store` keyed by composed-tree content.
[[nodiscard]] SessionResult run_session(const SessionRequest& request,
                                        CheckStore& store);

/// Runs the llhscd daemon loop until a signal or shutdown request; returns
/// its exit code (0 clean shutdown, 2 setup failure).
[[nodiscard]] int run_server(const ServerOptions& options);

}  // namespace llhsc::api

// The public llhsc embedding API — the one entry point tools, benches and
// external embedders program against. As of LLHSC_API_VERSION 2 the api::
// vocabulary is self-owned: every struct below is defined here with explicit
// fields, no `server/*.hpp` header is reachable from this file (CI asserts
// that with an include-graph check), and internal refactors of the server
// layer are no longer embedder-visible breaks. Conversion shims in
// llhsc.cpp translate to the implementation types; the shims add no
// behaviour, so the CLI, the daemon and an embedder calling this header
// produce byte-identical reports for identical inputs.
//
// Stability policy: docs/api.md. In short — fields are only ever added
// (with defaults preserving old behaviour), never renamed or removed within
// a major version; LLHSC_API_VERSION_MAJOR bumps on any breaking change.
//
// Observability: install an obs::TraceSink (obs/obs.hpp) around any of
// these calls to capture the span/counter event stream; export it with
// obs::write_chrome_trace for a Perfetto-loadable profile
// (docs/observability.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

/// The API generation. Major bumps on breaking changes to this header,
/// minor on compatible additions. Compare against the composite macro:
///   #if LLHSC_API_VERSION >= 200 ... #endif
#define LLHSC_API_VERSION_MAJOR 2
#define LLHSC_API_VERSION_MINOR 0
#define LLHSC_API_VERSION \
  (LLHSC_API_VERSION_MAJOR * 100 + LLHSC_API_VERSION_MINOR)

namespace llhsc::api {

/// Structured outcome/rejection classification — the API's replacement for
/// magic exit ints and raw wire error strings. The first three mirror the
/// process exit-code contract every command shares; the rest mirror the
/// daemon's wire `error.code` values (docs/server.md).
enum class ErrorCode {
  kOk = 0,        // clean run (warnings allowed)            -> exit 0
  kFindings,      // findings, or input rejected by a checker -> exit 1
  kUsage,         // bad request / usage / I-O / setup        -> exit 2
  kBadRequest,    // wire: malformed JSON, unknown method, bad params
  kTooLarge,      // wire: request line exceeded max_line_bytes
  kOverloaded,    // wire: global admission queue full
  kQuotaExceeded,  // wire: per-tenant admission quota exhausted
  kShuttingDown,  // wire: daemon is draining
  kDeadlineExceeded,  // wire: deadline_ms elapsed before completion
  kWorkerFailed,  // wire: worker died mid-request, retry also failed
};

/// The stable wire name ("ok", "bad_request", ...) of a code.
[[nodiscard]] const char* error_code_name(ErrorCode code);
/// Parses a wire `error.code` string; unknown strings map to kUsage (the
/// conservative "treat as caller error" default).
[[nodiscard]] ErrorCode error_code_from_wire(const std::string& name);
/// The process exit code a command reporting this outcome uses: 0 for kOk,
/// 1 for kFindings, 2 for everything else (usage and daemon-side errors).
[[nodiscard]] int exit_code_of(ErrorCode code);
/// Classifies a check/session exit code (0/1/2) as an ErrorCode.
[[nodiscard]] ErrorCode error_code_of_exit(int exit_code);

/// Mirrors the `llhsc check` option surface. The caller reads the file (the
/// daemon never touches the client's filesystem for the main source);
/// `path` only labels the report.
struct CheckRequest {
  std::string path;            // report label (the CLI's positional arg)
  std::string source;          // DTS text
  std::string base_directory;  // /include/ resolution root ("" = none)
  /// In-memory includes, shadowing base_directory (name -> content).
  std::vector<std::pair<std::string, std::string>> includes;

  std::string format = "text";  // text|json|sarif
  bool lint = true;
  bool crossref = true;
  bool graph = true;  // device-graph dataflow rules (docs/rules.md)
  bool syntax = true;
  bool semantics = true;
  bool quiet = false;
  bool stats = false;

  std::string backend = "builtin";  // builtin|z3|portfolio
  std::string schemas_text;         // "" = builtin schema set
  std::string schemas_path;         // label for schema diagnostics
  std::string disable_rule;         // raw CLI comma list
  std::string rule_severity;        // raw CLI comma list
  uint64_t solver_timeout_ms = 0;
  bool plan = true;
  std::string cache_dir;
  /// Content of a --baseline file ("" = none). Applied after the verdict —
  /// and therefore after any cache hit — so baselines never key verdicts.
  std::string baseline_text;
};

/// What the request actually cost.
struct CheckTrace {
  bool tree_cache_hit = false;
  bool check_cache_hit = false;
  uint64_t solver_checks = 0;
  uint64_t queries_issued = 0;
  uint64_t queries_pruned = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_errors = 0;
  /// Findings removed by inline disable comments or the baseline.
  uint64_t suppressed = 0;
};

struct CheckResult {
  int exit_code = 0;        // 0 clean, 1 findings/rejected, 2 usage/I-O
  ErrorCode status = ErrorCode::kOk;  // exit_code, classified
  std::string output;       // exact stdout bytes of the one-shot CLI
  std::string error_text;   // exact stderr bytes of the one-shot CLI
  size_t errors = 0;
  size_t warnings = 0;
  CheckTrace trace;
};

/// Artifact-store counters: what a call reused vs actually executed.
struct StoreStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t tree_parses = 0;
  uint64_t delta_parses = 0;
  uint64_t model_parses = 0;
  uint64_t product_line_builds = 0;
  uint64_t derives = 0;       // composed-tree rebuilds actually executed
  uint64_t unit_checks = 0;   // per-unit checker runs actually executed
  uint64_t graph_builds = 0;
  uint64_t cross_checks = 0;
  uint64_t lifted_checks = 0;
};

struct SessionProduct {
  std::string name;
  std::set<std::string> features;
};

/// Incremental product-line check request (docs/sessions.md): a core DTS,
/// a delta-module file, and the products (feature selections) to derive
/// and check, with per-unit verdicts cached across calls.
struct SessionRequest {
  std::string core_source;
  std::string core_name;  // diagnostics label
  std::string deltas_source;
  std::string deltas_name;
  std::string model_source;  // feature model; required for allocation
  std::string model_name;
  std::string base_directory;  // /include/ resolution root ("" = none)
  std::vector<std::pair<std::string, std::string>> includes;

  std::vector<SessionProduct> products;
  /// Also derive and check the platform tree (union of all selections).
  bool check_platform = false;
  /// Run the resource-allocation check over all products (needs a model).
  bool check_allocation = false;
  /// Family-based lifted analysis over the whole line (docs/lifting.md).
  bool check_lifted = false;
  /// Cap on each lifted finding's configuration-class expansion.
  uint64_t lifted_max_configs = 8;
  std::vector<std::string> exclusive;  // exclusive feature names

  std::string backend = "builtin";
  bool lint = true;
  bool graph = true;
  bool syntax = true;
  bool semantics = true;
  std::string schemas_text;  // "" = builtin schema set
  uint64_t solver_timeout_ms = 0;
  bool plan = true;
  std::string cache_dir;
};

struct SessionUnitResult {
  std::string name;  // product name, or "platform"
  bool composed_cache_hit = false;
  bool check_cache_hit = false;
  size_t errors = 0;
  size_t warnings = 0;
  std::string report;  // rendered findings of this unit
};

struct SessionResult {
  /// 0 all units clean, 1 findings or rejected input, 2 bad request.
  int exit_code = 0;
  ErrorCode status = ErrorCode::kOk;  // exit_code, classified
  std::string error_text;  // parse/derive diagnostics, request errors
  std::vector<SessionUnitResult> units;
  /// What this request actually cost: store counters after minus before.
  /// `derives` is composed trees rebuilt, `unit_checks` checker batteries
  /// executed — the incrementality evidence.
  StoreStats cost;
};

/// llhscd daemon configuration (docs/server.md).
struct ServerOptions {
  /// Unix-domain listener path ("" = no Unix listener; at least one of
  /// socket_path / tcp_listen must be set).
  std::string socket_path;
  /// TCP listener as "host:port", ":port" or "port" (port 0 = ephemeral;
  /// "" = no TCP listener).
  std::string tcp_listen;
  /// Forked worker processes (0 = run check/session work in-process).
  unsigned workers = 0;
  /// Worker threads for check/session execution (0 = hardware concurrency);
  /// with forked workers this sizes each worker's pool.
  unsigned jobs = 0;
  /// Admitted (queued + running) requests beyond this are rejected with
  /// `overloaded`.
  size_t queue_limit = 64;
  /// Per-tenant admitted cap (0 = unlimited); the tenant is the request's
  /// optional "tenant" field.
  size_t tenant_quota = 0;
  /// Deadline applied to requests without their own deadline_ms (0 = none).
  uint64_t default_deadline_ms = 0;
  /// Per-class artifact-cache capacity (per worker with forked workers).
  size_t store_capacity = 512;
  /// Request lines longer than this are rejected with `too_large`.
  size_t max_line_bytes = 64 * 1024 * 1024;
  /// Trace/log sink; null = stderr.
  std::ostream* log = nullptr;
  /// Chrome-trace profile written at shutdown ("" = no profiling;
  /// in-process mode only).
  std::string profile_path;
};

/// A content-addressed artifact cache shared across run_check/run_session
/// calls: parses and check verdicts are reused when sources and options are
/// unchanged. Thread-safe; one store may serve concurrent calls. The
/// implementation is private (pimpl) — embedders see only the counters.
class CheckStore {
 public:
  explicit CheckStore(size_t capacity = 512);
  ~CheckStore();
  CheckStore(CheckStore&&) noexcept;
  CheckStore& operator=(CheckStore&&) noexcept;
  CheckStore(const CheckStore&) = delete;
  CheckStore& operator=(const CheckStore&) = delete;

  [[nodiscard]] StoreStats stats() const;

 private:
  struct Impl;
  friend struct ApiAccess;  // llhsc.cpp's bridge to the implementation
  std::unique_ptr<Impl> impl_;
};

/// Runs the full check battery over one in-memory DTS. Without a store
/// every call parses and checks from scratch (the one-shot CLI path).
[[nodiscard]] CheckResult run_check(const CheckRequest& request);
[[nodiscard]] CheckResult run_check(const CheckRequest& request,
                                    CheckStore& store);

/// Incremental product-line check: derives and checks every product, with
/// per-unit verdicts cached in `store` keyed by composed-tree content.
[[nodiscard]] SessionResult run_session(const SessionRequest& request,
                                        CheckStore& store);

/// Runs the llhscd daemon loop until a signal or shutdown request; returns
/// its exit code (0 clean shutdown, 2 setup failure).
[[nodiscard]] int run_server(const ServerOptions& options);

/// The daemon wire-protocol generation this library speaks (the value a
/// `hello` request reports as protocol_version).
[[nodiscard]] int protocol_version();

}  // namespace llhsc::api

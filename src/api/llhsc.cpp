#include "api/llhsc.hpp"

namespace llhsc::api {

CheckResult run_check(const CheckRequest& request) {
  return server::run_check(request, nullptr);
}

CheckResult run_check(const CheckRequest& request, CheckStore& store) {
  return server::run_check(request, &store.raw());
}

SessionResult run_session(const SessionRequest& request, CheckStore& store) {
  return server::run_session_check(request, store.raw());
}

int run_server(const ServerOptions& options) {
  server::Server daemon(options);
  return daemon.run();
}

}  // namespace llhsc::api

// Conversion shims between the self-owned api:: vocabulary and the server
// implementation types. Every translation is a plain field copy — the shims
// add no behaviour, so api:: callers and internal callers produce identical
// results. This is the only file where both vocabularies are visible.
#include "api/llhsc.hpp"

#include <utility>

#include "server/artifact_store.hpp"
#include "server/check_service.hpp"
#include "server/server.hpp"
#include "server/session.hpp"

namespace llhsc::api {

struct CheckStore::Impl {
  explicit Impl(size_t capacity) : store(capacity) {}
  server::ArtifactStore store;
};

/// llhsc.cpp-private bridge from the pimpl to the implementation store.
struct ApiAccess {
  static server::ArtifactStore& store(CheckStore& s) {
    return s.impl_->store;
  }
};

namespace {

server::CheckRequest to_server(const CheckRequest& r) {
  server::CheckRequest s;
  s.path = r.path;
  s.source = r.source;
  s.base_directory = r.base_directory;
  s.includes = r.includes;
  s.format = r.format;
  s.lint = r.lint;
  s.crossref = r.crossref;
  s.graph = r.graph;
  s.syntax = r.syntax;
  s.semantics = r.semantics;
  s.quiet = r.quiet;
  s.stats = r.stats;
  s.backend = r.backend;
  s.schemas_text = r.schemas_text;
  s.schemas_path = r.schemas_path;
  s.disable_rule = r.disable_rule;
  s.rule_severity = r.rule_severity;
  s.solver_timeout_ms = r.solver_timeout_ms;
  s.plan = r.plan;
  s.cache_dir = r.cache_dir;
  s.baseline_text = r.baseline_text;
  return s;
}

CheckResult from_server(server::CheckOutcome&& o) {
  CheckResult r;
  r.exit_code = o.exit_code;
  r.status = error_code_of_exit(o.exit_code);
  r.output = std::move(o.output);
  r.error_text = std::move(o.error_text);
  r.errors = o.errors;
  r.warnings = o.warnings;
  r.trace.tree_cache_hit = o.trace.tree_cache_hit;
  r.trace.check_cache_hit = o.trace.check_cache_hit;
  r.trace.solver_checks = o.trace.solver_checks;
  r.trace.queries_issued = o.trace.queries_issued;
  r.trace.queries_pruned = o.trace.queries_pruned;
  r.trace.cache_hits = o.trace.cache_hits;
  r.trace.cache_errors = o.trace.cache_errors;
  r.trace.suppressed = o.trace.suppressed;
  return r;
}

server::SessionRequest to_server(const SessionRequest& r) {
  server::SessionRequest s;
  s.core_source = r.core_source;
  s.core_name = r.core_name;
  s.deltas_source = r.deltas_source;
  s.deltas_name = r.deltas_name;
  s.model_source = r.model_source;
  s.model_name = r.model_name;
  s.base_directory = r.base_directory;
  s.includes = r.includes;
  for (const SessionProduct& p : r.products) {
    s.products.push_back({p.name, p.features});
  }
  s.check_platform = r.check_platform;
  s.check_allocation = r.check_allocation;
  s.check_lifted = r.check_lifted;
  s.lifted_max_configs = r.lifted_max_configs;
  s.exclusive = r.exclusive;
  s.backend = r.backend;
  s.lint = r.lint;
  s.graph = r.graph;
  s.syntax = r.syntax;
  s.semantics = r.semantics;
  s.schemas_text = r.schemas_text;
  s.solver_timeout_ms = r.solver_timeout_ms;
  s.plan = r.plan;
  s.cache_dir = r.cache_dir;
  return s;
}

StoreStats from_server(const server::StoreStats& s) {
  StoreStats r;
  r.hits = s.hits;
  r.misses = s.misses;
  r.evictions = s.evictions;
  r.tree_parses = s.tree_parses;
  r.delta_parses = s.delta_parses;
  r.model_parses = s.model_parses;
  r.product_line_builds = s.product_line_builds;
  r.derives = s.derives;
  r.unit_checks = s.unit_checks;
  r.graph_builds = s.graph_builds;
  r.cross_checks = s.cross_checks;
  r.lifted_checks = s.lifted_checks;
  return r;
}

SessionResult from_server(server::SessionOutcome&& o) {
  SessionResult r;
  r.exit_code = o.exit_code;
  r.status = error_code_of_exit(o.exit_code);
  r.error_text = std::move(o.error_text);
  for (server::SessionUnitResult& u : o.units) {
    SessionUnitResult unit;
    unit.name = std::move(u.name);
    unit.composed_cache_hit = u.composed_cache_hit;
    unit.check_cache_hit = u.check_cache_hit;
    unit.errors = u.errors;
    unit.warnings = u.warnings;
    unit.report = std::move(u.report);
    r.units.push_back(std::move(unit));
  }
  r.cost = from_server(o.cost);
  return r;
}

server::ServerOptions to_server(const ServerOptions& o) {
  server::ServerOptions s;
  s.socket_path = o.socket_path;
  s.tcp_listen = o.tcp_listen;
  s.workers = o.workers;
  s.jobs = o.jobs;
  s.queue_limit = o.queue_limit;
  s.tenant_quota = o.tenant_quota;
  s.default_deadline_ms = o.default_deadline_ms;
  s.store_capacity = o.store_capacity;
  s.max_line_bytes = o.max_line_bytes;
  s.log = o.log;
  s.profile_path = o.profile_path;
  return s;
}

}  // namespace

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kFindings: return "findings";
    case ErrorCode::kUsage: return "usage";
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kTooLarge: return "too_large";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kQuotaExceeded: return "quota_exceeded";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kWorkerFailed: return "worker_failed";
  }
  return "usage";
}

ErrorCode error_code_from_wire(const std::string& name) {
  if (name == "ok") return ErrorCode::kOk;
  if (name == "findings") return ErrorCode::kFindings;
  if (name == "bad_request") return ErrorCode::kBadRequest;
  if (name == "too_large") return ErrorCode::kTooLarge;
  if (name == "overloaded") return ErrorCode::kOverloaded;
  if (name == "quota_exceeded") return ErrorCode::kQuotaExceeded;
  if (name == "shutting_down") return ErrorCode::kShuttingDown;
  if (name == "deadline_exceeded") return ErrorCode::kDeadlineExceeded;
  if (name == "worker_failed") return ErrorCode::kWorkerFailed;
  return ErrorCode::kUsage;
}

int exit_code_of(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return 0;
    case ErrorCode::kFindings: return 1;
    default: return 2;
  }
}

ErrorCode error_code_of_exit(int exit_code) {
  if (exit_code == 0) return ErrorCode::kOk;
  if (exit_code == 1) return ErrorCode::kFindings;
  return ErrorCode::kUsage;
}

CheckStore::CheckStore(size_t capacity)
    : impl_(std::make_unique<Impl>(capacity)) {}
CheckStore::~CheckStore() = default;
CheckStore::CheckStore(CheckStore&&) noexcept = default;
CheckStore& CheckStore::operator=(CheckStore&&) noexcept = default;

StoreStats CheckStore::stats() const {
  return from_server(impl_->store.stats());
}

CheckResult run_check(const CheckRequest& request) {
  return from_server(server::run_check(to_server(request), nullptr));
}

CheckResult run_check(const CheckRequest& request, CheckStore& store) {
  return from_server(
      server::run_check(to_server(request), &ApiAccess::store(store)));
}

SessionResult run_session(const SessionRequest& request, CheckStore& store) {
  return from_server(
      server::run_session_check(to_server(request), ApiAccess::store(store)));
}

int run_server(const ServerOptions& options) {
  server::Server daemon(to_server(options));
  return daemon.run();
}

int protocol_version() { return server::kProtocolVersion; }

}  // namespace llhsc::api

// Semantic checker — paper §IV-C. Extracts memory regions from every node's
// `reg` property (interpreted with the parent's #address-cells/#size-cells,
// so cell-width changes such as the 64->32-bit truncation of delta d3 are
// *felt* by the interpretation, exactly the failure mode the paper targets),
// then discharges region disjointness through bit-vector SMT: regions i and j
// overlap iff  exists x: b_i <= x < b_i+s_i  /\  b_j <= x < b_j+s_j  — the
// single-witness form of the paper's formula (7). A satisfying model yields
// the collision witness address reported in each finding.
//
// Additional checks: base+size wrap-around (uadd_overflow), zero-size
// regions, per-cell width violations, and interrupt-line uniqueness (the
// "interrupts" extension named in the paper's conclusions).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "checkers/finding.hpp"
#include "dts/tree.hpp"
#include "smt/query_plan.hpp"
#include "smt/solver.hpp"
#include "support/deadline.hpp"

namespace llhsc::checkers {

namespace crossref {
class AnalysisContext;
}

/// What a region is, which decides which overlaps are faults. IPC windows
/// (veth shared memory) are carved out of RAM by design — Bao's Listing 6
/// places the ipc at 0x70000000 inside the second memory bank — so
/// ipc-over-memory is legal while every other overlap is a fault.
enum class RegionClass : uint8_t { kMemory, kDevice, kIpc };

[[nodiscard]] std::string_view to_string(RegionClass c);

/// One address range extracted from a reg entry. `base` is the CPU-view
/// address after translating through every ancestor bus's `ranges`;
/// `local_base` is the raw value written in reg (they differ only under
/// non-identity ranges).
struct MemRegion {
  std::string path;        // node path
  size_t entry_index = 0;  // which (address, size) pair within reg
  uint64_t base = 0;
  uint64_t size = 0;
  uint64_t local_base = 0;
  std::string provenance;  // delta that produced the property
  support::SourceLocation location;  // of the reg property
  RegionClass region_class = RegionClass::kDevice;

  [[nodiscard]] bool is_memory() const {
    return region_class == RegionClass::kMemory;
  }
};

/// True when an overlap between the two classes is a fault.
[[nodiscard]] bool overlap_is_fault(RegionClass a, RegionClass b);

/// The value the solver's w-bit encoding actually sees (bv_const truncates).
[[nodiscard]] uint64_t mask_address(uint64_t value, uint32_t width);

/// Mirror of the solver's uadd_overflow verdict on masked base/size: true
/// iff base + size >= 2^width, in which case [base, base+size) is empty in
/// the w-bit encoding (the end wraps to or below the base) and the region
/// cannot overlap anything.
[[nodiscard]] bool region_wraps(uint64_t base_m, uint64_t size_m,
                                uint32_t width);

/// One claim per `interrupts` tuple of one node. Tuples are compared
/// whole (all #interrupt-cells cells), tuple[0] is the line named in
/// findings (matching the single-cell message format).
struct IrqClaim {
  std::string path;
  std::string provenance;
  support::SourceLocation location;
  uint32_t parent_phandle = 0;
  size_t entry_index = 0;
  std::vector<uint64_t> tuple;  // cells, masked to 32 bits
};

/// One claim per `assigned-clocks` entry of one node: the consumer pins the
/// clock (provider, specifier-tuple). Entries stride per-provider — one
/// phandle cell plus the provider's #clock-cells specifier cells. Entries
/// whose provider phandle is unknown are skipped (the stride is unknowable;
/// the cross-reference rules report the dangling phandle).
struct ClockClaim {
  std::string path;
  std::string provenance;
  support::SourceLocation location;
  uint32_t provider_phandle = 0;
  size_t entry_index = 0;
  std::vector<uint64_t> tuple;  // specifier cells, masked to 32 bits
};

/// Collects one claim per `interrupts` tuple (stride = the interrupt
/// parent's #interrupt-cells), resolving interrupt-parent by inheritance.
[[nodiscard]] std::vector<IrqClaim> collect_interrupt_claims(
    const dts::Tree& tree);

/// Collects one claim per `assigned-clocks` entry (stride = 1 phandle cell +
/// the provider's #clock-cells).
[[nodiscard]] std::vector<ClockClaim> collect_clock_claims(
    const dts::Tree& tree);

// -- Finding builders, shared verbatim by the per-product checker and the
// -- lifted family engine so both report byte-identical defects.
[[nodiscard]] Finding zero_size_finding(const MemRegion& r);
[[nodiscard]] Finding wrap_finding(const MemRegion& r, uint32_t width);
[[nodiscard]] Finding overlap_finding(const MemRegion& a, const MemRegion& b,
                                      uint64_t witness);
[[nodiscard]] Finding interrupt_collision_finding(const IrqClaim& a,
                                                  const IrqClaim& b);
[[nodiscard]] Finding clock_collision_finding(const ClockClaim& a,
                                              const ClockClaim& b);

/// The formula-(7) query for one region pair. The witness is pinned to
/// max(base_a, base_b) (masked to `width`): for concrete non-wrapping
/// intervals that address is in the intersection iff the intersection is
/// non-empty, so the pin is equisatisfiable and makes the reported witness
/// independent of backend, batching, and model heuristics. `ns` namespaces
/// the witness variable (callers pass a fresh counter-derived prefix).
struct OverlapQuery {
  std::vector<logic::Formula> formulas;
  logic::BvTerm x;
};
[[nodiscard]] OverlapQuery build_overlap_query(smt::Solver& solver,
                                               const MemRegion& a,
                                               const MemRegion& b,
                                               uint32_t width,
                                               const std::string& ns);

struct SemanticOptions {
  /// Address space width in bits for the SMT encoding.
  uint32_t address_bits = 64;
  /// Treat zero-size regions as findings (warnings).
  bool warn_zero_size = true;
  /// Memory banks from the same memory node are allowed to be adjacent but
  /// not overlapping (always checked); devices never may overlap anything.
  bool check_interrupts = true;
  /// Check `assigned-clocks` uniqueness: two consumers pinning the same
  /// (provider, specifier) clock is a configuration fault, same shape as the
  /// interrupt-line check.
  bool check_clocks = true;
  /// Wall-clock budget in ms for one check() call's solver work (0 =
  /// unlimited). When the budget runs out, the remaining queries are skipped
  /// and one kSolverTimeout error finding reports how many were dropped —
  /// a pathological query degrades into a visible error, never a hang or a
  /// silent pass.
  uint64_t solver_timeout_ms = 0;
  /// Route queries through the smt::QueryPlanner: structurally decidable
  /// queries (concrete wrap checks, pairs the sweep-line prefilter proves
  /// disjoint, interrupt tuples in singleton hash buckets) never reach the
  /// solver, and surviving queries are batched onto one incremental
  /// instance under assumption guards. Findings are byte-identical either
  /// way (property-tested); false exists for A/B comparison and for tests
  /// that need every query to hit the backend.
  bool plan = true;
  /// Directory for the persistent query-result cache (empty = no cache).
  /// Only consulted when `plan` is set. A warm cache answers repeated
  /// queries without any solver work; entries are invalidated by backend
  /// and format-version changes (see smt::QueryCache).
  std::string cache_dir;
};

/// Extracts all regions from reg properties. Nodes whose parent declares
/// #size-cells = 0 (e.g. cpu cores, where reg is an id) are skipped.
/// Cell-width violations (a cell exceeding 32 bits, or an entry not covered
/// by a full set of cells) are reported through `out`.
[[nodiscard]] std::vector<MemRegion> extract_regions(const dts::Tree& tree,
                                                     Findings& out);
/// Same extraction over a pre-built cross-reference context, so the cells
/// environment and `ranges` translation are computed once and shared with
/// the cross-reference rules.
[[nodiscard]] std::vector<MemRegion> extract_regions(
    const crossref::AnalysisContext& ctx, Findings& out);

class SemanticChecker {
 public:
  explicit SemanticChecker(smt::Backend backend = smt::Backend::kBuiltin,
                           SemanticOptions options = {});

  /// Full semantic check of one tree.
  [[nodiscard]] Findings check(const dts::Tree& tree);

  /// Disjointness check over pre-extracted regions (used by benches to sweep
  /// region counts without re-parsing).
  [[nodiscard]] Findings check_regions(const std::vector<MemRegion>& regions);

  [[nodiscard]] uint64_t solver_checks() const { return solver_.stats().checks; }

  /// Planner counters for the last/current run (all zero when options_.plan
  /// is false — the exhaustive path bypasses the planner entirely).
  [[nodiscard]] const smt::QueryPlanStats& plan_stats() const {
    return planner_.stats();
  }

 private:
  Findings check_interrupts(const dts::Tree& tree);
  Findings check_clocks(const dts::Tree& tree);
  Findings check_regions_impl(const std::vector<MemRegion>& regions);
  Findings check_regions_exhaustive(const std::vector<MemRegion>& regions);
  Findings check_regions_planned(const std::vector<MemRegion>& regions);
  /// Member shim over the free build_overlap_query: supplies the solver and
  /// a fresh_counter_-derived namespace.
  OverlapQuery next_overlap_query(const MemRegion& a, const MemRegion& b);
  /// Starts one check() call's solver budget from options_.solver_timeout_ms.
  void arm_deadline();
  /// True when the last query was cut off; records a kSolverTimeout finding
  /// once per check() call (`where` names the query that hit the limit).
  bool query_timed_out(smt::CheckResult r, const std::string& where,
                       Findings& out);

  SemanticOptions options_;
  smt::Solver solver_;
  smt::QueryPlanner planner_;
  uint64_t fresh_counter_ = 0;
  support::Deadline deadline_;
  bool timeout_reported_ = false;
  bool cache_error_reported_ = false;
  size_t skipped_queries_ = 0;
};

}  // namespace llhsc::checkers

// Finding suppression (docs/rules.md, "Suppressing findings"). Two layers,
// both applied after the verdict is computed (and therefore after any
// artifact-store cache hit) so suppression never pollutes cached verdicts:
//
//   * inline comments — `// llhsc-disable-next-line <rule-id>[, <rule-id>]`
//     in a DTS source suppresses matching findings anchored on the next
//     line of the same file. With no ids, every rule is suppressed there.
//   * baselines — a JSON file of known findings, keyed by rule id plus the
//     structural path (`subject`), accepted via `--baseline <file>`. A
//     baseline lets a new rule land without failing existing trees; entries
//     match any location, so line churn does not invalidate them.
//
// Both are honored by all checkers uniformly: the filter runs over the final
// Findings list, not inside any one checker.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "checkers/finding.hpp"

namespace llhsc::checkers {

class SuppressionIndex {
 public:
  /// Scans one source file for `// llhsc-disable-next-line` comments. The
  /// comment may trail code; ids are comma- or space-separated.
  void add_source(std::string_view file, std::string_view text);

  /// Loads a baseline document:
  ///   {"version": 1, "findings": [{"rule": "...", "subject": "..."}]}
  /// Returns false (with `error` set) on malformed JSON or a missing
  /// findings array; unknown extra fields are ignored so baselines survive
  /// schema growth.
  [[nodiscard]] bool load_baseline(std::string_view json_text,
                                   std::string& error);

  /// Removes every suppressed finding in place; returns how many.
  size_t apply(Findings& findings) const;

  [[nodiscard]] bool empty() const {
    return lines_.empty() && baseline_.empty();
  }

  /// Serializes `findings` as a baseline document (the file --baseline
  /// consumes), one entry per (rule, subject), deduplicated and sorted.
  [[nodiscard]] static std::string to_baseline(const Findings& findings);

 private:
  [[nodiscard]] bool suppressed(const Finding& f) const;

  /// (file, line) -> rule ids disabled there; empty set = all rules.
  std::map<std::pair<std::string, uint32_t>, std::set<std::string>> lines_;
  /// (rule id, subject) pairs from the baseline.
  std::set<std::pair<std::string, std::string>> baseline_;
};

}  // namespace llhsc::checkers

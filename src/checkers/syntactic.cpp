#include "checkers/syntactic.hpp"

#include "support/strings.hpp"

namespace llhsc::checkers {

namespace {

/// The stride (cells per reg entry) a property's item counts are measured
/// in: reg-style properties use the #address-cells + #size-cells governing
/// the node (nearest-ancestor resolution); other cell arrays count single
/// cells.
uint32_t entry_stride(const dts::Tree& tree, const std::string& path,
                      const std::string& prop_name) {
  if (prop_name == "reg") {
    auto [ac, sc] = tree.applicable_cells(path);
    return ac + sc;
  }
  return 1;
}

std::string provenance_of(const dts::Property& p, const dts::Node& n) {
  return (!p.provenance.empty() ? p.provenance : n.provenance()).str();
}

}  // namespace

SyntacticChecker::SyntacticChecker(const schema::SchemaSet& schemas,
                                   smt::Backend backend,
                                   SyntacticOptions options)
    : schemas_(&schemas), options_(options), solver_(backend) {}

uint32_t SyntacticChecker::intern(const std::string& s) {
  auto it = interned_.find(s);
  if (it != interned_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(interned_.size()) + 1;
  interned_.emplace(s, id);
  return id;
}

Findings SyntacticChecker::check(const dts::Tree& tree) {
  Findings out;
  tree.visit([&](const std::string& path, const dts::Node& node) {
    Findings node_findings = check_node(tree, node, path);
    for (Finding& f : node_findings) {
      // Findings about a present property point at the property; everything
      // else (missing-required, no-schema, child rules) at the node.
      if (!f.location.valid()) {
        const dts::Property* p =
            f.property.empty() ? nullptr : node.find_property(f.property);
        f.location = (p != nullptr && p->location.valid()) ? p->location
                                                           : node.location();
      }
    }
    out.insert(out.end(), node_findings.begin(), node_findings.end());
  });
  return out;
}

Findings SyntacticChecker::check_node(const dts::Tree& tree,
                                      const dts::Node& node,
                                      const std::string& path) {
  Findings out;
  auto matching = schemas_->match(node);
  if (matching.empty()) {
    if (options_.warn_unmatched_nodes && path != "/" &&
        !(options_.skip_empty_containers && node.properties().empty())) {
      Finding f;
      f.kind = FindingKind::kNoSchema;
      f.severity = FindingSeverity::kWarning;
      f.subject = path;
      f.delta = node.provenance();
      f.message = "no binding schema matches this node";
      out.push_back(std::move(f));
    }
    return out;
  }
  for (const schema::NodeSchema* schema : matching) {
    check_schema(tree, node, path, *schema, out);
  }
  return out;
}

void SyntacticChecker::check_schema(const dts::Tree& tree,
                                    const dts::Node& node,
                                    const std::string& path,
                                    const schema::NodeSchema& schema,
                                    Findings& out) {
  auto& fa = solver_.formulas();
  auto& bv = solver_.bitvectors();
  const std::string ns = "n" + std::to_string(fresh_counter_++) + ".";

  // --- presence predicate R(x) with instance closure (constraints 5+6) ---
  std::unordered_map<std::string, logic::Formula> presence;
  auto presence_of = [&](const std::string& name) {
    auto it = presence.find(name);
    if (it != presence.end()) return it->second;
    logic::Formula var = solver_.bool_var(ns + "R(" + name + ")");
    bool present = node.find_property(name) != nullptr;
    solver_.add(present ? var : fa.mk_not(var));  // closure fact
    presence.emplace(name, var);
    return var;
  };

  // Required properties (constraints 2/3): R(x) must hold.
  for (const std::string& req : schema.required) {
    std::vector<logic::Formula> assume{presence_of(req)};
    if (solver_.check_assuming(assume) == smt::CheckResult::kUnsat) {
      Finding f;
      f.kind = FindingKind::kMissingRequired;
      f.subject = path;
      f.property = req;
      f.delta = node.provenance();
      f.message = "schema '" + schema.id + "' requires property '" + req + "'";
      out.push_back(std::move(f));
    }
  }

  // Per-property value constraints.
  for (const schema::PropertySchema& ps : schema.properties) {
    const dts::Property* inst = node.find_property(ps.name);
    if (inst == nullptr) continue;  // absence handled by `required`
    check_property_values(node, path, schema, ps, *inst,
                          entry_stride(tree, path, ps.name), out);
  }

  // additionalProperties: false — instance properties must appear in the
  // schema. (dt-schema allows the standard meta-properties everywhere.)
  if (!schema.additional_properties) {
    static const char* kMeta[] = {"#address-cells", "#size-cells", "phandle",
                                  "status", "compatible", "device_type"};
    for (const dts::Property& p : node.properties()) {
      bool known = schema.find_property(p.name) != nullptr;
      for (const char* m : kMeta) {
        known = known || p.name == m;
      }
      if (!known) {
        Finding f;
        f.kind = FindingKind::kUnknownProperty;
        f.subject = path;
        f.property = p.name;
        f.delta = provenance_of(p, node);
        f.message = "schema '" + schema.id +
                    "' does not allow additional property '" + p.name + "'";
        out.push_back(std::move(f));
      }
    }
  }

  // reg shape (the dt-schema structural rule from §I-A): the reg cell count
  // must be a positive multiple of (#address-cells + #size-cells). Encoded
  // as the SMT query  exists k >= 1:  cells == k * stride.
  if (schema.check_reg_shape) {
    if (const dts::Property* reg = node.find_property("reg")) {
      auto cells = reg->as_cells();
      if (cells) {
        uint32_t stride = entry_stride(tree, path, "reg");
        auto cells_var = bv.bv_var(ns + "reg.cells", 16);
        auto k = bv.bv_var(ns + "reg.entries", 16);
        solver_.add(bv.eq(cells_var,
                          bv.bv_const(cells->size() & 0xffff, 16)));
        solver_.push();
        solver_.add(bv.eq(cells_var,
                          bv.bv_mul(k, bv.bv_const(stride, 16))));
        solver_.add(bv.uge(k, bv.bv_const(1, 16)));
        // Guard against multiplication wrap-around for large k.
        solver_.add(bv.ule(k, bv.bv_const(4096, 16)));
        bool shape_ok = solver_.check() == smt::CheckResult::kSat;
        solver_.pop();
        if (!shape_ok) {
          Finding f;
          f.kind = FindingKind::kRegShapeViolation;
          f.subject = path;
          f.property = "reg";
          f.delta = provenance_of(*reg, node);
          f.message = "reg has " + std::to_string(cells->size()) +
                      " cells, not a positive multiple of #address-cells + "
                      "#size-cells = " +
                      std::to_string(stride);
          out.push_back(std::move(f));
        }
      }
    }
  }

  // Child rules: count + schema conformance of matching children. Counts go
  // through the solver like item counts.
  for (const schema::ChildRule& rule : schema.child_rules) {
    uint32_t count = 0;
    for (const auto& child : node.children()) {
      if (support::glob_match(rule.name_pattern, child->name())) ++count;
    }
    auto count_var =
        bv.bv_var(ns + "children(" + rule.name_pattern + ")", 16);
    solver_.add(bv.eq(count_var, bv.bv_const(count, 16)));
    logic::Formula in_bounds = fa.make_true();
    if (rule.min_count) {
      in_bounds = fa.mk_and(
          in_bounds, bv.uge(count_var, bv.bv_const(*rule.min_count, 16)));
    }
    if (rule.max_count) {
      in_bounds = fa.mk_and(
          in_bounds, bv.ule(count_var, bv.bv_const(*rule.max_count, 16)));
    }
    std::vector<logic::Formula> assume{in_bounds};
    if (solver_.check_assuming(assume) == smt::CheckResult::kUnsat) {
      Finding f;
      f.kind = FindingKind::kChildRuleViolation;
      f.subject = path;
      f.delta = node.provenance();
      f.message = "child count for pattern '" + rule.name_pattern + "' is " +
                  std::to_string(count) + ", outside the allowed range";
      out.push_back(std::move(f));
    }
  }
}

void SyntacticChecker::check_property_values(
    const dts::Node& node, const std::string& path,
    const schema::NodeSchema& schema, const schema::PropertySchema& ps,
    const dts::Property& inst, uint32_t stride, Findings& out) {
  auto& fa = solver_.formulas();
  auto& bv = solver_.bitvectors();
  const std::string ns = "p" + std::to_string(fresh_counter_++) + ".";
  const std::string delta = provenance_of(inst, node);

  auto add_finding = [&](FindingKind kind, std::string message) {
    Finding f;
    f.kind = kind;
    f.subject = path;
    f.property = ps.name;
    f.delta = delta;
    f.message = "schema '" + schema.id + "': " + std::move(message);
    out.push_back(std::move(f));
  };

  // --- type shape ---
  auto str = inst.as_string();
  auto strs = inst.as_string_list();
  auto cells = inst.as_cells();
  switch (ps.type) {
    case schema::PropertyType::kString:
      if (!str) {
        add_finding(FindingKind::kTypeMismatch,
                    "expected a single string value");
        return;
      }
      break;
    case schema::PropertyType::kStringList:
      if (!strs) {
        add_finding(FindingKind::kTypeMismatch, "expected a string list");
        return;
      }
      break;
    case schema::PropertyType::kCells:
      if (!cells) {
        add_finding(FindingKind::kTypeMismatch, "expected a cell array");
        return;
      }
      break;
    case schema::PropertyType::kBool:
      if (!inst.is_boolean()) {
        add_finding(FindingKind::kTypeMismatch,
                    "expected a boolean (presence-only) property");
        return;
      }
      break;
    case schema::PropertyType::kBytes:
      if (inst.chunks.size() != 1 ||
          inst.chunks[0].kind != dts::ChunkKind::kBytes) {
        add_finding(FindingKind::kTypeMismatch, "expected a byte string");
        return;
      }
      break;
    case schema::PropertyType::kAny:
      break;
  }

  // --- const / enum over strings (interned to bit-vector ids, the stand-in
  // for the paper's Z3 string encoding: constraint (1)/(4)) ---
  if (ps.const_string || !ps.enum_strings.empty() || ps.pattern) {
    if (!str && strs && strs->size() == 1) str = (*strs)[0];
    if (str) {
      auto value_var = bv.bv_var(ns + "v(" + ps.name + ")", 32);
      solver_.add(bv.eq(value_var, bv.bv_const(intern(*str), 32)));
      if (ps.const_string) {
        std::vector<logic::Formula> assume{
            bv.eq(value_var, bv.bv_const(intern(*ps.const_string), 32))};
        if (solver_.check_assuming(assume) == smt::CheckResult::kUnsat) {
          add_finding(FindingKind::kConstMismatch,
                      "value \"" + *str + "\" must be \"" + *ps.const_string +
                          "\"");
        }
      }
      if (!ps.enum_strings.empty()) {
        std::vector<logic::Formula> options;
        for (const std::string& e : ps.enum_strings) {
          options.push_back(bv.eq(value_var, bv.bv_const(intern(e), 32)));
        }
        std::vector<logic::Formula> assume{fa.mk_or(options)};
        if (solver_.check_assuming(assume) == smt::CheckResult::kUnsat) {
          add_finding(FindingKind::kEnumViolation,
                      "value \"" + *str + "\" is not one of the " +
                          std::to_string(ps.enum_strings.size()) +
                          " allowed values");
        }
      }
      if (ps.pattern && !support::glob_match(*ps.pattern, *str)) {
        add_finding(FindingKind::kPatternMismatch,
                    "value \"" + *str + "\" does not match pattern '" +
                        *ps.pattern + "'");
      }
    }
  }

  // --- const / enum over single-cell values ---
  if ((ps.const_cell || !ps.enum_cells.empty()) && cells &&
      cells->size() == 1) {
    auto value_var = bv.bv_var(ns + "c(" + ps.name + ")", 64);
    solver_.add(bv.eq(value_var, bv.bv_const((*cells)[0], 64)));
    if (ps.const_cell) {
      std::vector<logic::Formula> assume{
          bv.eq(value_var, bv.bv_const(*ps.const_cell, 64))};
      if (solver_.check_assuming(assume) == smt::CheckResult::kUnsat) {
        add_finding(FindingKind::kConstMismatch,
                    "value " + support::hex((*cells)[0]) + " must be " +
                        support::hex(*ps.const_cell));
      }
    }
    if (!ps.enum_cells.empty()) {
      std::vector<logic::Formula> options;
      for (uint64_t e : ps.enum_cells) {
        options.push_back(bv.eq(value_var, bv.bv_const(e, 64)));
      }
      std::vector<logic::Formula> assume{fa.mk_or(options)};
      if (solver_.check_assuming(assume) == smt::CheckResult::kUnsat) {
        add_finding(FindingKind::kEnumViolation,
                    "value " + support::hex((*cells)[0]) +
                        " is not in the allowed set");
      }
    }
  }

  // --- minimum / maximum over every cell value (manufacturer ranges) ---
  if ((ps.minimum || ps.maximum) && cells) {
    for (size_t i = 0; i < cells->size(); ++i) {
      auto value_var =
          bv.bv_var(ns + "cell" + std::to_string(i) + "(" + ps.name + ")", 64);
      solver_.add(bv.eq(value_var, bv.bv_const((*cells)[i], 64)));
      logic::Formula in_range = fa.make_true();
      if (ps.minimum) {
        in_range = fa.mk_and(in_range,
                             bv.uge(value_var, bv.bv_const(*ps.minimum, 64)));
      }
      if (ps.maximum) {
        in_range = fa.mk_and(in_range,
                             bv.ule(value_var, bv.bv_const(*ps.maximum, 64)));
      }
      std::vector<logic::Formula> assume{in_range};
      if (solver_.check_assuming(assume) == smt::CheckResult::kUnsat) {
        add_finding(FindingKind::kEnumViolation,
                    "cell " + std::to_string(i) + " value " +
                        support::hex((*cells)[i]) + " is outside [" +
                        (ps.minimum ? support::hex(*ps.minimum) : "0") + ", " +
                        (ps.maximum ? support::hex(*ps.maximum) : "max") +
                        "]");
      }
    }
  }

  // --- minItems / maxItems over the entry count ---
  if ((ps.min_items || ps.max_items) && cells) {
    uint32_t entries = stride == 0
                           ? static_cast<uint32_t>(cells->size())
                           : static_cast<uint32_t>(cells->size() / stride);
    auto count_var = bv.bv_var(ns + "items(" + ps.name + ")", 16);
    solver_.add(bv.eq(count_var, bv.bv_const(entries & 0xffff, 16)));
    logic::Formula in_bounds = fa.make_true();
    if (ps.min_items) {
      in_bounds = fa.mk_and(in_bounds,
                            bv.uge(count_var, bv.bv_const(*ps.min_items, 16)));
    }
    if (ps.max_items) {
      in_bounds = fa.mk_and(in_bounds,
                            bv.ule(count_var, bv.bv_const(*ps.max_items, 16)));
    }
    std::vector<logic::Formula> assume{in_bounds};
    if (solver_.check_assuming(assume) == smt::CheckResult::kUnsat) {
      add_finding(FindingKind::kItemCountViolation,
                  "entry count " + std::to_string(entries) +
                      " is outside [" +
                      (ps.min_items ? std::to_string(*ps.min_items) : "0") +
                      ", " +
                      (ps.max_items ? std::to_string(*ps.max_items) : "inf") +
                      "]");
    }
  }
}

}  // namespace llhsc::checkers

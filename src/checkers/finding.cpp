#include "checkers/finding.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "support/strings.hpp"

namespace llhsc::checkers {

std::string_view to_string(FindingKind k) {
  switch (k) {
    case FindingKind::kInvalidVmProduct: return "invalid-vm-product";
    case FindingKind::kExclusivityViolation: return "exclusivity-violation";
    case FindingKind::kInfeasibleAllocation: return "infeasible-allocation";
    case FindingKind::kMissingRequired: return "missing-required";
    case FindingKind::kConstMismatch: return "const-mismatch";
    case FindingKind::kEnumViolation: return "enum-violation";
    case FindingKind::kItemCountViolation: return "item-count";
    case FindingKind::kRegShapeViolation: return "reg-shape";
    case FindingKind::kTypeMismatch: return "type-mismatch";
    case FindingKind::kPatternMismatch: return "pattern-mismatch";
    case FindingKind::kUnknownProperty: return "unknown-property";
    case FindingKind::kChildRuleViolation: return "child-rule";
    case FindingKind::kNoSchema: return "no-schema";
    case FindingKind::kAddressOverlap: return "address-overlap";
    case FindingKind::kRegWidthViolation: return "reg-width";
    case FindingKind::kSizeOverflow: return "size-overflow";
    case FindingKind::kZeroSizeRegion: return "zero-size-region";
    case FindingKind::kInterruptCollision: return "interrupt-collision";
    case FindingKind::kClockCollision: return "clock-collision";
    case FindingKind::kSolverTimeout: return "solver-timeout";
    case FindingKind::kCacheUnavailable: return "cache-unavailable";
    case FindingKind::kNameConvention: return "name-convention";
    case FindingKind::kUnitAddressMismatch: return "unit-address-mismatch";
    case FindingKind::kUnitAddressMissing: return "unit-address-missing";
    case FindingKind::kDuplicateUnitAddress: return "duplicate-unit-address";
    case FindingKind::kMissingCells: return "missing-cells";
    case FindingKind::kBadStatusValue: return "bad-status-value";
    case FindingKind::kRangesViolation: return "ranges-violation";
    case FindingKind::kDanglingPhandle: return "dangling-phandle";
    case FindingKind::kDuplicatePhandle: return "duplicate-phandle";
    case FindingKind::kCellsArityViolation: return "cells-arity";
    case FindingKind::kMissingProviderCells: return "missing-provider-cells";
    case FindingKind::kInterruptTreeCycle: return "interrupt-tree-cycle";
    case FindingKind::kOrphanProvider: return "orphan-provider";
    case FindingKind::kProviderCycle: return "provider-cycle";
    case FindingKind::kDisabledProviderDependency:
      return "disabled-provider-dependency";
    case FindingKind::kExclusiveProviderClaim:
      return "exclusive-provider-claim";
    case FindingKind::kDeriveFailure: return "derive-failure";
    case FindingKind::kEnumerationCapped: return "enumeration-capped";
  }
  return "unknown";
}

std::string Finding::render() const {
  std::ostringstream os;
  if (location.valid()) {
    os << location.file << ':' << location.line << ": ";
  }
  os << (severity == FindingSeverity::kError ? "error" : "warning") << ": ["
     << rule_id() << "] " << subject;
  if (!property.empty()) os << " (property '" << property << "')";
  os << ": " << message;
  if (!other_subject.empty()) os << " [other: " << other_subject << "]";
  if (!delta.empty()) os << " [introduced by delta '" << delta << "']";
  for (const FlowStep& step : flow) {
    os << "\n    via " << step.subject;
    if (step.location.valid()) {
      os << " (" << step.location.file << ':' << step.location.line << ')';
    }
    if (!step.note.empty()) os << ": " << step.note;
  }
  return os.str();
}

size_t error_count(const Findings& findings) {
  size_t n = 0;
  for (const Finding& f : findings) {
    if (f.severity == FindingSeverity::kError) ++n;
  }
  return n;
}

bool contains(const Findings& findings, FindingKind kind) {
  for (const Finding& f : findings) {
    if (f.kind == kind) return true;
  }
  return false;
}

std::string render(const Findings& findings) {
  std::ostringstream os;
  for (const Finding& f : findings) os << f.render() << '\n';
  return os.str();
}

void sort_by_location(Findings& findings) {
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return std::tie(a.location.file, a.location.line,
                                     a.location.column) <
                                std::tie(b.location.file, b.location.line,
                                         b.location.column) ||
                            (a.location == b.location &&
                             std::forward_as_tuple(a.rule_id(), a.subject) <
                                 std::forward_as_tuple(b.rule_id(), b.subject));
                   });
}

}  // namespace llhsc::checkers

#include "checkers/lint.hpp"

#include <map>

#include "support/strings.hpp"

namespace llhsc::checkers {

namespace {

Finding warn(FindingKind kind, std::string subject, std::string message,
             std::string_view delta = {},
             support::SourceLocation location = {}) {
  Finding f;
  f.kind = kind;
  f.severity = FindingSeverity::kWarning;
  f.subject = std::move(subject);
  f.message = std::move(message);
  f.delta = std::string(delta);
  f.location = std::move(location);
  return f;
}

/// First reg entry's address under the governing cells, or nullopt.
std::optional<uint64_t> first_reg_address(const dts::Tree& tree,
                                          const dts::Node& node,
                                          const std::string& path) {
  const dts::Property* reg = node.find_property("reg");
  if (reg == nullptr) return std::nullopt;
  auto cells = reg->as_cells();
  if (!cells || cells->empty()) return std::nullopt;
  auto [ac, sc] = tree.applicable_cells(path);
  if (ac == 0 || ac > 2 || cells->size() < ac) return std::nullopt;
  uint64_t addr = 0;
  for (uint32_t i = 0; i < ac; ++i) {
    addr = (addr << 32) | ((*cells)[i] & 0xffffffffull);
  }
  (void)sc;
  return addr;
}

void lint_node(const dts::Tree& tree, const dts::Node& node,
               const std::string& path, const LintOptions& options,
               Findings& out) {
  if (path != "/") {
    if (options.check_names && !support::is_valid_node_name(node.name())) {
      out.push_back(warn(FindingKind::kNameConvention, path,
                         "node name '" + node.name() +
                             "' violates the DT spec character set / length",
                         node.provenance(), node.location()));
    }

    const dts::Property* reg = node.find_property("reg");
    bool has_unit = !node.unit_address().empty();
    if (options.check_unit_addresses) {
      if (reg != nullptr && !has_unit) {
        out.push_back(warn(FindingKind::kUnitAddressMissing, path,
                           "node has a reg property but no unit address",
                           node.provenance(), node.location()));
      } else if (reg == nullptr && has_unit) {
        out.push_back(warn(FindingKind::kUnitAddressMissing, path,
                           "node has a unit address but no reg property",
                           node.provenance(), node.location()));
      } else if (reg != nullptr && has_unit) {
        auto addr = first_reg_address(tree, node, path);
        auto unit = support::parse_integer(
            "0x" + std::string(node.unit_address()));
        if (addr && unit && *addr != *unit) {
          Finding f = warn(
              FindingKind::kUnitAddressMismatch, path,
              "unit address @" + std::string(node.unit_address()) +
                  " does not match the first reg address " +
                  support::hex(*addr),
              !reg->provenance.empty() ? reg->provenance : node.provenance(),
              reg->location.valid() ? reg->location : node.location());
          f.base_a = *unit;
          f.base_b = *addr;
          out.push_back(std::move(f));
        }
        // dtc also rejects leading zeros / "0x" prefixes in unit addresses.
        std::string_view ua = node.unit_address();
        if (ua.size() > 1 && (ua[0] == '0')) {
          out.push_back(warn(FindingKind::kNameConvention, path,
                             "unit address '@" + std::string(ua) +
                                 "' has a leading zero or 0x prefix",
                             node.provenance(), node.location()));
        }
      }
    }
  }

  if (options.check_names) {
    for (const dts::Property& p : node.properties()) {
      if (!support::is_valid_property_name(p.name)) {
        out.push_back(warn(FindingKind::kNameConvention, path,
                           "property name '" + p.name +
                               "' violates the DT spec character set / length",
                           !p.provenance.empty() ? p.provenance
                                                 : node.provenance(),
                           p.location.valid() ? p.location
                                              : node.location()));
      }
    }
  }

  if (options.check_status_values) {
    if (const dts::Property* status = node.find_property("status")) {
      auto v = status->as_string();
      bool ok = v && (*v == "okay" || *v == "ok" || *v == "disabled" ||
                      *v == "reserved" || support::starts_with(*v, "fail"));
      if (!ok) {
        out.push_back(warn(FindingKind::kBadStatusValue, path,
                           "status must be okay/disabled/reserved/fail*, got " +
                               (v ? "\"" + *v + "\"" : "a non-string value"),
                           !status->provenance.empty() ? status->provenance
                                                       : node.provenance(),
                           status->location.valid() ? status->location
                                                    : node.location()));
      }
    }
  }

  // Children-level checks.
  if (options.check_cells_declarations) {
    bool child_has_address_reg = false;
    for (const auto& child : node.children()) {
      const dts::Property* reg = child->find_property("reg");
      if (reg != nullptr && reg->as_cells() && !reg->as_cells()->empty()) {
        child_has_address_reg = true;
        break;
      }
    }
    if (child_has_address_reg &&
        node.find_property("#address-cells") == nullptr && path != "/") {
      out.push_back(
          warn(FindingKind::kMissingCells, path,
               "children use reg but this node declares no #address-cells "
               "(cells are inherited, which dtc flags as fragile)",
               node.provenance(), node.location()));
    }
  }

  if (options.check_unit_addresses) {
    // Duplicate unit addresses among same-named siblings.
    std::map<std::string, std::string> seen;  // name -> path of first holder
    for (const auto& child : node.children()) {
      if (child->unit_address().empty()) continue;
      std::string key = std::string(child->base_name()) + "@" +
                        std::string(child->unit_address());
      std::string child_path =
          path == "/" ? "/" + child->name() : path + "/" + child->name();
      auto [it, inserted] = seen.emplace(key, child_path);
      if (!inserted) {
        Finding f = warn(FindingKind::kDuplicateUnitAddress, child_path,
                         "duplicate unit address with sibling",
                         child->provenance(), child->location());
        f.other_subject = it->second;
        out.push_back(std::move(f));
      }
    }
  }
}

/// /aliases values and /chosen stdout-path must point at existing nodes.
void lint_path_references(const dts::Tree& tree, Findings& out) {
  auto check_path_property = [&](const dts::Node& node,
                                 const std::string& node_path,
                                 const dts::Property& p) {
    auto value = p.as_string();
    if (!value) return;
    // stdout-path may carry ":115200n8"-style suffixes after the path.
    std::string target = *value;
    size_t colon = target.find(':');
    if (colon != std::string::npos) target = target.substr(0, colon);
    if (target.empty() || target[0] != '/') return;  // alias-name form
    if (tree.find(target) == nullptr) {
      out.push_back(warn(FindingKind::kUnitAddressMissing, node_path,
                         "property '" + p.name + "' points at missing node " +
                             target,
                         !p.provenance.empty() ? p.provenance
                                               : node.provenance(),
                         p.location.valid() ? p.location : node.location()));
    }
  };
  if (const dts::Node* aliases = tree.find("/aliases")) {
    for (const dts::Property& p : aliases->properties()) {
      check_path_property(*aliases, "/aliases", p);
    }
  }
  if (const dts::Node* chosen = tree.find("/chosen")) {
    for (const dts::Property& p : chosen->properties()) {
      if (p.name == "stdout-path" || p.name == "linux,stdout-path") {
        check_path_property(*chosen, "/chosen", p);
      }
    }
  }
}

}  // namespace

Findings LintChecker::check(const dts::Tree& tree) const {
  Findings out;
  tree.visit([&](const std::string& path, const dts::Node& node) {
    lint_node(tree, node, path, options_, out);
  });
  if (options_.check_path_references) lint_path_references(tree, out);
  return out;
}

}  // namespace llhsc::checkers

#include "checkers/suppress.hpp"

#include <algorithm>

#include "support/json.hpp"
#include "support/strings.hpp"

namespace llhsc::checkers {

namespace {

constexpr std::string_view kMarker = "llhsc-disable-next-line";

}  // namespace

void SuppressionIndex::add_source(std::string_view file,
                                  std::string_view text) {
  uint32_t line = 1;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view row = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    // Only the comment form counts — a marker inside a string stays inert.
    size_t comment = row.find("//");
    if (comment != std::string_view::npos) {
      std::string_view rest = support::trim(row.substr(comment + 2));
      if (support::starts_with(rest, kMarker)) {
        std::string_view ids = support::trim(rest.substr(kMarker.size()));
        std::set<std::string> ruleset;
        for (const std::string& part : support::split(std::string(ids), ',')) {
          for (const std::string& id : support::split_ws(part)) {
            ruleset.insert(id);
          }
        }
        // Empty set means "suppress everything on the next line".
        lines_[{std::string(file), line + 1}] = std::move(ruleset);
      }
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
    ++line;
  }
}

bool SuppressionIndex::load_baseline(std::string_view json_text,
                                     std::string& error) {
  auto doc = support::Json::parse(json_text);
  if (!doc || !doc->is_object()) {
    error = "baseline is not a JSON object";
    return false;
  }
  const support::Json& findings = doc->at("findings");
  if (!findings.is_array()) {
    error = "baseline has no \"findings\" array";
    return false;
  }
  for (const support::Json& entry : findings.items()) {
    if (!entry.is_object()) continue;
    std::string rule = entry.at("rule").as_string();
    std::string subject = entry.at("subject").as_string();
    if (rule.empty()) {
      error = "baseline entry without a \"rule\" id";
      return false;
    }
    baseline_.insert({std::move(rule), std::move(subject)});
  }
  return true;
}

bool SuppressionIndex::suppressed(const Finding& f) const {
  const std::string rule(f.rule_id());
  if (baseline_.find({rule, f.subject}) != baseline_.end()) return true;
  if (f.location.valid()) {
    auto it = lines_.find({f.location.file.str(), f.location.line});
    if (it != lines_.end() &&
        (it->second.empty() || it->second.count(rule) != 0)) {
      return true;
    }
  }
  return false;
}

size_t SuppressionIndex::apply(Findings& findings) const {
  if (empty()) return 0;
  size_t before = findings.size();
  findings.erase(std::remove_if(findings.begin(), findings.end(),
                                [this](const Finding& f) {
                                  return suppressed(f);
                                }),
                 findings.end());
  return before - findings.size();
}

std::string SuppressionIndex::to_baseline(const Findings& findings) {
  std::set<std::pair<std::string, std::string>> entries;
  for (const Finding& f : findings) {
    entries.insert({std::string(f.rule_id()), f.subject});
  }
  support::Json doc = support::Json::object();
  doc.set("version", support::Json::integer(1));
  support::Json list = support::Json::array();
  for (const auto& [rule, subject] : entries) {
    support::Json entry = support::Json::object();
    entry.set("rule", support::Json::string(rule));
    entry.set("subject", support::Json::string(subject));
    list.push(std::move(entry));
  }
  doc.set("findings", std::move(list));
  return doc.dump(support::Json::Style::kPretty) + "\n";
}

}  // namespace llhsc::checkers

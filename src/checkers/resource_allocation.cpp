#include "checkers/resource_allocation.hpp"

namespace llhsc::checkers {

ResourceAllocationChecker::ResourceAllocationChecker(
    const feature::FeatureModel& model,
    std::vector<feature::FeatureId> exclusive, smt::Backend backend)
    : model_(&model), exclusive_(std::move(exclusive)), backend_(backend) {}

std::optional<feature::Selection> ResourceAllocationChecker::to_selection(
    const std::set<std::string>& names, Findings& out,
    const std::string& subject) const {
  feature::Selection sel(model_->size(), false);
  bool ok = true;
  for (const std::string& name : names) {
    auto id = model_->find(name);
    if (!id) {
      Finding f;
      f.kind = FindingKind::kInvalidVmProduct;
      f.subject = subject;
      f.message = "unknown feature '" + name + "'";
      out.push_back(std::move(f));
      ok = false;
      continue;
    }
    sel[id->index] = true;
  }
  if (!ok) return std::nullopt;
  return sel;
}

feature::Selection ResourceAllocationChecker::platform_union(
    const std::vector<feature::Selection>& vm_selections) {
  if (vm_selections.empty()) return {};
  feature::Selection u(vm_selections[0].size(), false);
  for (const feature::Selection& s : vm_selections) {
    for (size_t i = 0; i < s.size() && i < u.size(); ++i) {
      if (s[i]) u[i] = true;
    }
  }
  return u;
}

Findings ResourceAllocationChecker::check(
    const std::vector<std::set<std::string>>& vm_features) {
  Findings out;
  std::vector<feature::Selection> selections;
  for (size_t k = 0; k < vm_features.size(); ++k) {
    auto sel = to_selection(vm_features[k], out, "vm" + std::to_string(k));
    if (!sel) return out;
    selections.push_back(std::move(*sel));
  }

  // (a) Per-VM product validity against the feature model. Invalid products
  // are explained via an unsat core over the feature decisions.
  bool products_ok = true;
  for (size_t k = 0; k < selections.size(); ++k) {
    smt::Solver solver(backend_);
    if (!feature::is_valid_product(*model_, solver, selections[k])) {
      Finding f;
      f.kind = FindingKind::kInvalidVmProduct;
      f.subject = "vm" + std::to_string(k);
      f.message = "selection is not a valid product of the feature model";
      smt::Solver explain_solver(backend_);
      auto conflict = feature::explain_invalid_product(*model_, explain_solver,
                                                       selections[k]);
      if (!conflict.empty()) {
        f.message += "; conflicting decisions: ";
        for (size_t i = 0; i < conflict.size(); ++i) {
          if (i > 0) f.message += ", ";
          f.message += selections[k][conflict[i].index] ? "" : "!";
          f.message += model_->feature(conflict[i]).name;
        }
      }
      out.push_back(std::move(f));
      products_ok = false;
    }
  }

  // (b) Across-VM exclusivity of designated resources.
  bool exclusivity_ok = true;
  for (feature::FeatureId ex : exclusive_) {
    std::vector<size_t> holders;
    for (size_t k = 0; k < selections.size(); ++k) {
      if (selections[k][ex.index]) holders.push_back(k);
    }
    if (holders.size() > 1) {
      Finding f;
      f.kind = FindingKind::kExclusivityViolation;
      f.subject = model_->feature(ex).name;
      std::string vm_list;
      for (size_t h : holders) {
        if (!vm_list.empty()) vm_list += ", ";
        vm_list += "vm" + std::to_string(h);
      }
      f.message = "exclusive resource selected by " + vm_list;
      out.push_back(std::move(f));
      exclusivity_ok = false;
    }
  }

  // (c) Whole-allocation feasibility via the multi-VM encoding (catches
  // interactions (a) and (b) miss, e.g. union-level inconsistencies).
  if (products_ok && exclusivity_ok && !selections.empty()) {
    smt::Solver solver(backend_);
    if (!feature::check_allocation(*model_, solver, exclusive_, selections)) {
      Finding f;
      f.kind = FindingKind::kInfeasibleAllocation;
      f.subject = "allocation";
      f.message = "the combined allocation violates the multi-VM model";
      out.push_back(std::move(f));
    }
  }
  return out;
}

}  // namespace llhsc::checkers

// Syntactic checker — paper §IV-B. For every (node, matching schema) pair,
// schema constraints become first-order axioms over:
//
//   R(x)      presence predicate for property x  (Boolean variable)
//   v_x       the property's value (32-bit bit-vector; strings interned)
//   n_x       the property's reg-style entry count (bit-vector)
//
// Proof obligations extracted from the DT binding instance close the model:
// R(x) <-> (x appears in the instance) — constraints (5)+(6) — and v_x/n_x
// are fixed to the instance values. Each schema constraint is then checked
// by entailment: the constraint is violated iff facts /\ constraint is
// unsatisfiable. Both solver backends serve the checks.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "checkers/finding.hpp"
#include "dts/tree.hpp"
#include "schema/schema.hpp"
#include "smt/solver.hpp"

namespace llhsc::checkers {

struct SyntacticOptions {
  /// Emit kNoSchema warnings for nodes no schema matches.
  bool warn_unmatched_nodes = false;
  /// Skip pure container nodes (no properties, only children) when warning
  /// about unmatched nodes.
  bool skip_empty_containers = true;
};

class SyntacticChecker {
 public:
  SyntacticChecker(const schema::SchemaSet& schemas,
                   smt::Backend backend = smt::Backend::kBuiltin,
                   SyntacticOptions options = {});

  /// Checks every node of the tree against all matching schemas.
  [[nodiscard]] Findings check(const dts::Tree& tree);

  /// Checks a single node (plus its children for child rules).
  [[nodiscard]] Findings check_node(const dts::Tree& tree,
                                    const dts::Node& node,
                                    const std::string& path);

  /// Number of solver checks issued so far (benchmark instrumentation).
  [[nodiscard]] uint64_t solver_checks() const { return solver_.stats().checks; }

 private:
  /// Interns a string into a stable 32-bit id used in bit-vector equalities
  /// (the C++ stand-in for the paper's Z3 string/hybrid-theory encoding).
  uint32_t intern(const std::string& s);

  void check_schema(const dts::Tree& tree, const dts::Node& node,
                    const std::string& path, const schema::NodeSchema& schema,
                    Findings& out);
  void check_property_values(const dts::Node& node, const std::string& path,
                             const schema::NodeSchema& schema,
                             const schema::PropertySchema& ps,
                             const dts::Property& inst, uint32_t stride,
                             Findings& out);

  const schema::SchemaSet* schemas_;
  SyntacticOptions options_;
  smt::Solver solver_;
  std::unordered_map<std::string, uint32_t> interned_;
  uint64_t fresh_counter_ = 0;
};

}  // namespace llhsc::checkers

// Cross-reference rule registry + checker. Each rule has a stable id in the
// style of dtc's -W names, a default severity, and a one-line summary (shown
// in the SARIF rules metadata and docs/rules.md). Rules run over one shared
// AnalysisContext; per-rule enable/severity comes from CrossRefOptions so
// the CLI can map `--disable-rule a,b` / `--rule-severity a=warning`
// directly onto it.
//
// Rule catalog (see docs/rules.md for rationale and example fixes):
//   phandle-dangling              E  phandle reference with no owning node
//   phandle-duplicate             E  two nodes carry the same phandle value
//   interrupt-parent-dangling     E  interrupt-parent names a missing node
//   interrupt-cells-arity         E  interrupts length vs #interrupt-cells
//   interrupt-provider-missing-cells E  parent lacks #interrupt-cells
//   phandle-args-arity            E  clocks/gpios/... vs provider #*-cells
//   provider-missing-cells        E  referenced provider lacks its #*-cells
//   interrupt-tree-cycle          E  interrupt-parent chain loops
//   ranges-coverage               W  reg not covered by ancestor ranges
//   provider-orphan               W  #*-cells provider nothing references
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "checkers/crossref/context.hpp"
#include "checkers/finding.hpp"
#include "dts/tree.hpp"

namespace llhsc::checkers::crossref {

struct RuleInfo {
  std::string_view id;
  FindingKind kind;
  FindingSeverity default_severity;
  std::string_view summary;
};

/// Every registered rule, in reporting order.
[[nodiscard]] const std::vector<RuleInfo>& rule_catalog();
/// Lookup by id; nullptr for unknown ids.
[[nodiscard]] const RuleInfo* find_rule(std::string_view id);

/// Phandle+args consumer properties and the provider cells property that
/// fixes each entry's argument count ("clocks" -> "#clock-cells", ...).
/// Suffix matching covers the "*-gpios" family (cs-gpios, enable-gpios).
struct PhandleArgsSpec {
  std::string_view property;       // exact name, or suffix when is_suffix
  std::string_view cells_property; // provider-side #*-cells
  bool is_suffix = false;
};
[[nodiscard]] const std::vector<PhandleArgsSpec>& phandle_args_specs();

struct CrossRefOptions {
  /// Rule ids to skip entirely.
  std::set<std::string> disabled;
  /// Per-rule severity overrides (id -> severity).
  std::map<std::string, FindingSeverity> severity_overrides;

  [[nodiscard]] bool enabled(std::string_view id) const {
    return disabled.find(std::string(id)) == disabled.end();
  }
};

/// Parses the CLI's `--disable-rule a,b` / `--rule-severity a=warning,...`
/// comma lists, validating every id against the full rule_catalog() (the
/// graph rules included). Unknown ids append a diagnostic to `error_text`
/// that lists the valid ids and yield nullopt — callers exit 2. This is the
/// single validation point shared by the CLI and the check service, so the
/// two cannot drift.
[[nodiscard]] std::optional<CrossRefOptions> parse_rule_options(
    std::string_view disable_rule, std::string_view rule_severity,
    std::string& error_text);

class CrossRefChecker {
 public:
  explicit CrossRefChecker(CrossRefOptions options = {})
      : options_(std::move(options)) {}

  /// Builds a context and runs every enabled rule.
  [[nodiscard]] Findings check(const dts::Tree& tree) const;
  /// Runs over a pre-built context (shared with the semantic checker).
  [[nodiscard]] Findings check(const AnalysisContext& ctx) const;

 private:
  CrossRefOptions options_;
};

}  // namespace llhsc::checkers::crossref

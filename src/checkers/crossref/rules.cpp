#include "checkers/crossref/rules.hpp"

#include <unordered_set>

#include "support/strings.hpp"

namespace llhsc::checkers::crossref {

namespace {

// dtc emits 0 or 0xffffffff for references an overlay leaves open (-@);
// both are "no node yet" rather than a resolvable value.
constexpr uint64_t kPhandlePlaceholderHi = 0xffffffffull;

const RuleInfo* rule(std::string_view id) {
  const RuleInfo* r = find_rule(id);
  // The catalog is closed; a miss is a programming error caught by tests.
  return r;
}

/// Emits one finding under `id`, honouring per-rule enable and severity
/// overrides. Returns nullptr when the rule is disabled; otherwise the
/// stored finding for extra fields.
Finding* emit(const CrossRefOptions& options, Findings& out,
              std::string_view id, std::string subject, std::string message,
              const dts::Node* node, const dts::Property* prop) {
  if (!options.enabled(id)) return nullptr;
  const RuleInfo* info = rule(id);
  if (info == nullptr) return nullptr;
  Finding f;
  f.kind = info->kind;
  f.severity = info->default_severity;
  auto ov = options.severity_overrides.find(std::string(id));
  if (ov != options.severity_overrides.end()) f.severity = ov->second;
  f.rule = std::string(id);
  f.subject = std::move(subject);
  f.message = std::move(message);
  if (prop != nullptr) {
    f.property = prop->name;
    if (prop->location.valid()) f.location = prop->location;
    if (!prop->provenance.empty()) f.delta = prop->provenance;
  }
  if (node != nullptr) {
    if (!f.location.valid()) f.location = node->location();
    if (f.delta.empty()) f.delta = node->provenance();
  }
  out.push_back(std::move(f));
  return &out.back();
}

// ---------------------------------------------------------------------------
// phandle-duplicate
// ---------------------------------------------------------------------------
void run_phandle_duplicate(const AnalysisContext& ctx,
                           const CrossRefOptions& options, Findings& out) {
  for (const PhandleCollision& col : ctx.duplicate_phandles()) {
    // Report every extra holder against the first one (document order).
    const dts::Node* first = col.holders.front();
    for (size_t i = 1; i < col.holders.size(); ++i) {
      const dts::Node* dup = col.holders[i];
      Finding* f = emit(options, out, "phandle-duplicate", ctx.path_of(*dup),
                        "phandle value " + std::to_string(col.value) +
                            " is also carried by " + ctx.path_of(*first),
                        dup, dup->find_property("phandle"));
      if (f != nullptr) f->other_subject = ctx.path_of(*first);
    }
  }
}

// ---------------------------------------------------------------------------
// phandle-args-arity / phandle-dangling / provider-missing-cells
//
// Walks every phandle+args consumer property (clocks = <&p a b>, ...): each
// entry starts with a phandle cell followed by as many argument cells as the
// provider's #*-cells declares — the generic of_parse_phandle_with_args
// contract.
// ---------------------------------------------------------------------------
const PhandleArgsSpec* spec_for_property(std::string_view name) {
  for (const PhandleArgsSpec& spec : phandle_args_specs()) {
    if (spec.is_suffix ? (support::ends_with(name, spec.property) &&
                          name.size() > spec.property.size())
                       : name == spec.property) {
      return &spec;
    }
  }
  return nullptr;
}

void run_phandle_args(const AnalysisContext& ctx,
                      const CrossRefOptions& options, Findings& out) {
  for (const auto& [path, node] : ctx.nodes()) {
    for (const dts::Property& p : node->properties()) {
      const PhandleArgsSpec* spec = spec_for_property(p.name);
      if (spec == nullptr) continue;
      auto cells = p.as_cells();
      if (!cells || cells->empty()) continue;  // schema layer types it
      size_t i = 0;
      size_t entry = 0;
      while (i < cells->size()) {
        uint64_t ph = (*cells)[i];
        const dts::Node* provider =
            ph == 0 || ph == kPhandlePlaceholderHi
                ? nullptr
                : ctx.node_for_phandle(static_cast<uint32_t>(ph));
        if (provider == nullptr) {
          emit(options, out, "phandle-dangling", path,
               "entry " + std::to_string(entry) + " of '" + p.name +
                   "' references phandle " + std::to_string(ph) +
                   ", which no node carries",
               node, &p);
          break;  // argument count unknowable; stop parsing this property
        }
        const dts::Property* pc =
            provider->find_property(std::string(spec->cells_property));
        std::optional<uint32_t> argc =
            pc != nullptr ? pc->as_u32() : std::nullopt;
        if (!argc) {
          emit(options, out, "provider-missing-cells", path,
               "entry " + std::to_string(entry) + " of '" + p.name +
                   "' references " + ctx.path_of(*provider) +
                   ", which declares no " + std::string(spec->cells_property),
               node, &p);
          break;
        }
        if (i + 1 + *argc > cells->size()) {
          Finding* f = emit(
              options, out, "phandle-args-arity", path,
              "entry " + std::to_string(entry) + " of '" + p.name +
                  "' needs " + std::to_string(*argc) + " argument cell(s) (" +
                  std::string(spec->cells_property) + " of " +
                  ctx.path_of(*provider) + ") but only " +
                  std::to_string(cells->size() - i - 1) + " remain",
              node, &p);
          if (f != nullptr) f->other_subject = ctx.path_of(*provider);
          break;
        }
        i += 1 + *argc;
        ++entry;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// interrupt-parent-dangling / interrupt-provider-missing-cells /
// interrupt-cells-arity
// ---------------------------------------------------------------------------

/// The provider whose #interrupt-cells types `node`'s interrupts: the
/// resolved interrupt-parent phandle, else the nearest ancestor marked
/// interrupt-controller (the DT spec's implicit-parent fallback).
const dts::Node* effective_interrupt_provider(const AnalysisContext& ctx,
                                              const dts::Node& node) {
  if (ctx.interrupt_parent_phandle(node)) return ctx.interrupt_parent(node);
  for (const dts::Node* cur = ctx.parent_of(node); cur != nullptr;
       cur = ctx.parent_of(*cur)) {
    if (cur->find_property("interrupt-controller") != nullptr) return cur;
  }
  return nullptr;
}

void run_interrupts(const AnalysisContext& ctx, const CrossRefOptions& options,
                    Findings& out) {
  for (const auto& [path, node] : ctx.nodes()) {
    // Dangling interrupt-parent is reported where the property is written,
    // not on every descendant that inherits it.
    if (const dts::Property* ip = node->find_property("interrupt-parent")) {
      if (auto ph = ip->as_u32()) {
        if (*ph != 0 && *ph != kPhandlePlaceholderHi &&
            ctx.node_for_phandle(*ph) == nullptr) {
          emit(options, out, "interrupt-parent-dangling", path,
               "interrupt-parent references phandle " + std::to_string(*ph) +
                   ", which no node carries",
               node, ip);
        }
      }
    }

    const dts::Property* irq = node->find_property("interrupts");
    if (irq == nullptr) continue;
    auto cells = irq->as_cells();
    if (!cells || cells->empty()) continue;
    const dts::Node* provider = effective_interrupt_provider(ctx, *node);
    if (provider == nullptr) continue;  // dangling parent reported above
    const dts::Property* ic = provider->find_property("#interrupt-cells");
    std::optional<uint32_t> want =
        ic != nullptr ? ic->as_u32() : std::nullopt;
    if (!want || *want == 0) {
      Finding* f = emit(options, out, "interrupt-provider-missing-cells", path,
                        "interrupt provider " + ctx.path_of(*provider) +
                            " declares no usable #interrupt-cells",
                        node, irq);
      if (f != nullptr) f->other_subject = ctx.path_of(*provider);
      continue;
    }
    if (cells->size() % *want != 0) {
      Finding* f = emit(
          options, out, "interrupt-cells-arity", path,
          "interrupts has " + std::to_string(cells->size()) +
              " cell(s), not a multiple of #interrupt-cells=" +
              std::to_string(*want) + " of " + ctx.path_of(*provider),
          node, irq);
      if (f != nullptr) f->other_subject = ctx.path_of(*provider);
    }
  }
}

// ---------------------------------------------------------------------------
// interrupt-tree-cycle
//
// Follows the interrupt-parent chain from every interrupt client/controller.
// A provider whose parent is itself terminates the tree (Linux's
// of_irq_find_parent contract), so only cycles of length >= 2 are faults.
// ---------------------------------------------------------------------------
void run_interrupt_cycles(const AnalysisContext& ctx,
                          const CrossRefOptions& options, Findings& out) {
  std::unordered_set<const dts::Node*> reported;
  std::unordered_set<const dts::Node*> known_safe;
  for (const auto& [path, node] : ctx.nodes()) {
    if (node->find_property("interrupts") == nullptr &&
        node->find_property("interrupt-controller") == nullptr) {
      continue;
    }
    std::vector<const dts::Node*> chain;
    std::unordered_set<const dts::Node*> on_chain;
    const dts::Node* cur = node;
    while (cur != nullptr && known_safe.find(cur) == known_safe.end()) {
      if (on_chain.find(cur) != on_chain.end()) {
        if (reported.insert(cur).second) {
          emit(options, out, "interrupt-tree-cycle", ctx.path_of(*cur),
               "interrupt-parent chain starting at " + path +
                   " revisits this node — the interrupt tree has a cycle",
               cur, cur->find_property("interrupt-parent"));
        }
        break;
      }
      chain.push_back(cur);
      on_chain.insert(cur);
      const dts::Node* next = ctx.interrupt_parent(*cur);
      if (next == cur) break;  // self-parent terminates the tree
      cur = next;
    }
    // Nothing on a terminated chain can be part of a cycle.
    if (cur == nullptr || known_safe.find(cur) != known_safe.end() ||
        reported.find(cur) == reported.end()) {
      known_safe.insert(chain.begin(), chain.end());
    }
  }
}

// ---------------------------------------------------------------------------
// ranges-coverage
// ---------------------------------------------------------------------------
void run_ranges_coverage(const AnalysisContext& ctx,
                         const CrossRefOptions& options, Findings& out) {
  for (const auto& [path, node] : ctx.nodes()) {
    if (path == "/") continue;
    const dts::Property* reg = node->find_property("reg");
    if (reg == nullptr) continue;
    auto [ac, sc] = ctx.reg_cells(*node);
    if (ac == 0 || ac > 2 || sc == 0 || sc > 2) continue;  // semantic reports
    auto cells = reg->as_cells();
    if (!cells) continue;
    uint32_t stride = ac + sc;
    for (size_t e = 0; (e + 1) * stride <= cells->size(); ++e) {
      uint64_t base = 0, size = 0;
      for (uint32_t i = 0; i < ac; ++i) {
        base = (base << 32) | ((*cells)[e * stride + i] & 0xffffffffull);
      }
      for (uint32_t i = 0; i < sc; ++i) {
        size = (size << 32) | ((*cells)[e * stride + ac + i] & 0xffffffffull);
      }
      if (size == 0) continue;
      if (!ctx.translate(*node, base, size)) {
        Finding* f =
            emit(options, out, "ranges-coverage", path,
                 "reg entry " + std::to_string(e) + " (" +
                     support::hex(base) + "+" + support::hex(size) +
                     ") is not covered by the ancestor buses' ranges",
                 node, reg);
        if (f != nullptr) {
          f->base_a = base;
          f->size_a = size;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// provider-orphan
//
// A node that declares one of the phandle+args provider properties
// (#clock-cells, #gpio-cells, ...) is only consumable through a phandle
// reference; if no phandle can reach it the provider is dead weight.
// Interrupt providers are excluded — the interrupt tree reaches parents
// structurally, without phandles.
// ---------------------------------------------------------------------------
void run_provider_orphan(const AnalysisContext& ctx,
                         const CrossRefOptions& options, Findings& out) {
  // Phandle values actually referenced anywhere.
  std::unordered_set<uint32_t> referenced;
  for (const auto& [path, node] : ctx.nodes()) {
    (void)path;
    for (const dts::Property& p : node->properties()) {
      if (p.name == "interrupt-parent") {
        if (auto v = p.as_u32()) referenced.insert(*v);
        continue;
      }
      const PhandleArgsSpec* spec = spec_for_property(p.name);
      if (spec == nullptr) continue;
      auto cells = p.as_cells();
      if (!cells) continue;
      size_t i = 0;
      while (i < cells->size()) {
        uint32_t ph = static_cast<uint32_t>((*cells)[i]);
        referenced.insert(ph);
        const dts::Node* provider = ctx.node_for_phandle(ph);
        const dts::Property* pc =
            provider != nullptr
                ? provider->find_property(std::string(spec->cells_property))
                : nullptr;
        std::optional<uint32_t> argc =
            pc != nullptr ? pc->as_u32() : std::nullopt;
        if (!argc) break;  // unknowable stride; arity rules reported it
        i += 1 + *argc;
      }
    }
  }

  for (const auto& [path, node] : ctx.nodes()) {
    const dts::Property* decl = nullptr;
    for (const PhandleArgsSpec& spec : phandle_args_specs()) {
      if (spec.cells_property == "#interrupt-cells") continue;
      if (const dts::Property* p =
              node->find_property(std::string(spec.cells_property))) {
        decl = p;
        break;
      }
    }
    if (decl == nullptr) continue;
    const dts::Property* ph = node->find_property("phandle");
    std::optional<uint32_t> value =
        ph != nullptr ? ph->as_u32() : std::nullopt;
    if (value && referenced.find(*value) != referenced.end()) continue;
    emit(options, out, "provider-orphan", path,
         "declares " + decl->name +
             " but no phandle reference reaches this provider",
         node, decl);
  }
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {"phandle-dangling", FindingKind::kDanglingPhandle,
       FindingSeverity::kError,
       "A phandle-typed cell references a value no node carries."},
      {"phandle-duplicate", FindingKind::kDuplicatePhandle,
       FindingSeverity::kError,
       "Two nodes carry the same explicit phandle value."},
      {"interrupt-parent-dangling", FindingKind::kDanglingPhandle,
       FindingSeverity::kError,
       "interrupt-parent references a phandle no node carries."},
      {"interrupt-cells-arity", FindingKind::kCellsArityViolation,
       FindingSeverity::kError,
       "interrupts length is not a multiple of the provider's "
       "#interrupt-cells."},
      {"interrupt-provider-missing-cells", FindingKind::kMissingProviderCells,
       FindingSeverity::kError,
       "The resolved interrupt provider declares no usable "
       "#interrupt-cells."},
      {"phandle-args-arity", FindingKind::kCellsArityViolation,
       FindingSeverity::kError,
       "A phandle+args entry has fewer argument cells than the provider's "
       "#*-cells demands."},
      {"provider-missing-cells", FindingKind::kMissingProviderCells,
       FindingSeverity::kError,
       "A phandle+args entry references a provider without the matching "
       "#*-cells property."},
      {"interrupt-tree-cycle", FindingKind::kInterruptTreeCycle,
       FindingSeverity::kError,
       "Following interrupt-parent links revisits a node."},
      {"ranges-coverage", FindingKind::kRangesViolation,
       FindingSeverity::kWarning,
       "A reg entry is not covered by the ancestor buses' ranges."},
      {"provider-orphan", FindingKind::kOrphanProvider,
       FindingSeverity::kWarning,
       "A #*-cells provider no phandle reference can reach."},
      // Device-graph dataflow rules (checkers/graph/) — same catalog so the
      // CLI's --disable-rule/--rule-severity and SARIF metadata cover them.
      {"graph-provider-cycle", FindingKind::kProviderCycle,
       FindingSeverity::kError,
       "Provider dependencies (clocks, resets, ...) form a cycle."},
      {"graph-status-propagation", FindingKind::kDisabledProviderDependency,
       FindingSeverity::kError,
       "An enabled consumer transitively depends on a disabled or missing "
       "provider."},
      {"graph-cells-arity", FindingKind::kCellsArityViolation,
       FindingSeverity::kError,
       "A typed dependency edge violates the provider's #*-cells arity "
       "contract."},
      {"graph-orphan-provider", FindingKind::kOrphanProvider,
       FindingSeverity::kWarning,
       "A referenced provider is only demanded by disabled consumers."},
      {"graph-exclusive-provider", FindingKind::kExclusiveProviderClaim,
       FindingSeverity::kError,
       "Two units claim the same exclusive provider."},
  };
  return kCatalog;
}

const RuleInfo* find_rule(std::string_view id) {
  for (const RuleInfo& r : rule_catalog()) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

std::optional<CrossRefOptions> parse_rule_options(std::string_view disable_rule,
                                                  std::string_view rule_severity,
                                                  std::string& error_text) {
  auto valid_ids = [] {
    std::string ids = " (valid ids: ";
    bool first = true;
    for (const RuleInfo& r : rule_catalog()) {
      if (!first) ids += ", ";
      first = false;
      ids += r.id;
    }
    ids += ")";
    return ids;
  };

  CrossRefOptions opts;
  bool ok = true;
  for (const std::string& id : support::split(disable_rule, ',')) {
    auto t = support::trim(id);
    if (t.empty()) continue;
    if (find_rule(t) == nullptr) {
      error_text += "unknown rule id '" + std::string(t) +
                    "' in --disable-rule" + valid_ids() + "\n";
      ok = false;
      continue;
    }
    opts.disabled.insert(std::string(t));
  }
  for (const std::string& ov : support::split(rule_severity, ',')) {
    auto t = support::trim(ov);
    if (t.empty()) continue;
    size_t eq = t.find('=');
    std::string id(support::trim(
        t.substr(0, eq == std::string_view::npos ? t.size() : eq)));
    std::string sev = eq == std::string_view::npos
                          ? std::string()
                          : std::string(support::trim(t.substr(eq + 1)));
    if (sev != "error" && sev != "warning") {
      error_text += "bad --rule-severity entry '" + std::string(t) +
                    "' (want <rule-id>=error|warning)\n";
      ok = false;
      continue;
    }
    if (find_rule(id) == nullptr) {
      error_text += "unknown rule id '" + id + "' in --rule-severity" +
                    valid_ids() + "\n";
      ok = false;
      continue;
    }
    opts.severity_overrides[id] = sev == "error" ? FindingSeverity::kError
                                                 : FindingSeverity::kWarning;
  }
  if (!ok) return std::nullopt;
  return opts;
}

const std::vector<PhandleArgsSpec>& phandle_args_specs() {
  static const std::vector<PhandleArgsSpec> kSpecs = {
      {"clocks", "#clock-cells", false},
      {"gpios", "#gpio-cells", false},
      {"-gpios", "#gpio-cells", true},
      {"dmas", "#dma-cells", false},
      {"resets", "#reset-cells", false},
      {"pwms", "#pwm-cells", false},
      {"phys", "#phy-cells", false},
      {"mboxes", "#mbox-cells", false},
      {"io-channels", "#io-channel-cells", false},
      {"power-domains", "#power-domain-cells", false},
      {"thermal-sensors", "#thermal-sensor-cells", false},
      {"interrupts-extended", "#interrupt-cells", false},
  };
  return kSpecs;
}

Findings CrossRefChecker::check(const dts::Tree& tree) const {
  AnalysisContext ctx(tree);
  return check(ctx);
}

Findings CrossRefChecker::check(const AnalysisContext& ctx) const {
  Findings out;
  run_phandle_duplicate(ctx, options_, out);
  run_phandle_args(ctx, options_, out);
  run_interrupts(ctx, options_, out);
  run_interrupt_cycles(ctx, options_, out);
  run_ranges_coverage(ctx, options_, out);
  run_provider_orphan(ctx, options_, out);
  return out;
}

}  // namespace llhsc::checkers::crossref

// AnalysisContext — the shared, indexed view of one dts::Tree that every
// cross-reference rule (and the semantic checker's address extraction) reads
// instead of re-walking the tree. Built once per tree in a single pre-order
// pass, it provides:
//   * phandle -> node, label -> node and path -> node indexes;
//   * per-node structural facts: parent pointer, full path, the
//     #address-cells / #size-cells governing the node's own `reg`
//     (nearest-ancestor resolution, Linux of_n_addr_cells style) and the
//     cells it declares for its children;
//   * a memoised `ranges` translation environment: translate() maps a
//     child-bus-local (base, size) range through every ancestor bus's
//     `ranges` into the CPU view, Linux of_translate_address style;
//   * interrupt-tree navigation: the interrupt parent of a node is its own
//     `interrupt-parent` phandle, or the nearest ancestor's (DT spec §2.4).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dts/tree.hpp"

namespace llhsc::checkers::crossref {

/// One explicit-phandle collision: two or more nodes carry `value`.
struct PhandleCollision {
  uint32_t value = 0;
  std::vector<const dts::Node*> holders;
};

class AnalysisContext {
 public:
  explicit AnalysisContext(const dts::Tree& tree);
  AnalysisContext(const AnalysisContext&) = delete;
  AnalysisContext& operator=(const AnalysisContext&) = delete;

  [[nodiscard]] const dts::Tree& tree() const { return *tree_; }

  // -- indexes --
  /// Node carrying `phandle = <value>`, or nullptr. For collided values the
  /// first holder in document order wins (collisions are reported
  /// separately through duplicate_phandles()).
  [[nodiscard]] const dts::Node* node_for_phandle(uint32_t value) const;
  [[nodiscard]] const dts::Node* node_for_label(std::string_view label) const;
  [[nodiscard]] const dts::Node* node_at(std::string_view path) const;
  [[nodiscard]] const std::vector<PhandleCollision>& duplicate_phandles()
      const {
    return duplicates_;
  }
  /// Every phandle value owned by some node (collided or not).
  [[nodiscard]] const std::unordered_map<uint32_t, const dts::Node*>&
  phandle_index() const {
    return phandle_index_;
  }

  // -- per-node facts --
  /// Full path ("" when the node is not part of this tree).
  [[nodiscard]] const std::string& path_of(const dts::Node& node) const;
  /// Parent node (nullptr for the root or foreign nodes).
  [[nodiscard]] const dts::Node* parent_of(const dts::Node& node) const;
  /// (#address-cells, #size-cells) governing this node's `reg`.
  [[nodiscard]] std::pair<uint32_t, uint32_t> reg_cells(
      const dts::Node& node) const;
  /// The delta module that wrote the governing cells declaration ("" = core).
  [[nodiscard]] const std::string& cells_provenance(
      const dts::Node& node) const;

  // -- address translation --
  /// Maps a (base, size) range local to `node`'s bus through every ancestor
  /// `ranges` into the CPU view. nullopt when some bus's ranges does not
  /// cover the range. Absent or boolean `ranges;` is the identity.
  [[nodiscard]] std::optional<uint64_t> translate(const dts::Node& node,
                                                  uint64_t base,
                                                  uint64_t size) const;

  // -- interrupt tree --
  /// Raw `interrupt-parent` phandle applying to `node` (own property or
  /// nearest ancestor's), nullopt when no ancestor declares one.
  [[nodiscard]] std::optional<uint32_t> interrupt_parent_phandle(
      const dts::Node& node) const;
  /// The resolved interrupt parent node, or nullptr (no declaration, or a
  /// dangling phandle — rules distinguish via interrupt_parent_phandle()).
  [[nodiscard]] const dts::Node* interrupt_parent(const dts::Node& node) const;

  /// Pre-order list of (path, node) — the iteration order rules use.
  [[nodiscard]] const std::vector<std::pair<std::string, const dts::Node*>>&
  nodes() const {
    return order_;
  }

 private:
  struct RangeEntry {
    uint64_t child_base = 0;
    uint64_t parent_base = 0;
    uint64_t size = 0;
  };
  struct NodeRecord {
    std::string path;
    const dts::Node* parent = nullptr;
    uint32_t reg_ac = 2, reg_sc = 1;      // cells governing this node's reg
    uint32_t child_ac = 2, child_sc = 1;  // cells this node hands children
    std::string cells_provenance;
    /// Parsed `ranges` tuples (empty + !identity never occurs; identity is
    /// the absent/boolean/malformed case).
    std::vector<RangeEntry> ranges;
    bool identity_ranges = true;
  };

  void index_subtree(const dts::Node& node, const dts::Node* parent,
                     const std::string& path);
  [[nodiscard]] const NodeRecord* record(const dts::Node& node) const;

  const dts::Tree* tree_;
  std::unordered_map<uint32_t, const dts::Node*> phandle_index_;
  std::unordered_map<std::string, const dts::Node*> label_index_;
  std::unordered_map<std::string, const dts::Node*> path_index_;
  std::unordered_map<const dts::Node*, NodeRecord> records_;
  std::vector<PhandleCollision> duplicates_;
  std::vector<std::pair<std::string, const dts::Node*>> order_;
};

}  // namespace llhsc::checkers::crossref

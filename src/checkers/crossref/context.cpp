#include "checkers/crossref/context.hpp"

#include <algorithm>
#include <map>

namespace llhsc::checkers::crossref {

namespace {

uint64_t combine_cells(const std::vector<uint64_t>& cells, size_t offset,
                       uint32_t count) {
  uint64_t value = 0;
  for (uint32_t i = 0; i < count; ++i) {
    value = (value << 32) | (cells[offset + i] & 0xffffffffull);
  }
  return value;
}

}  // namespace

AnalysisContext::AnalysisContext(const dts::Tree& tree) : tree_(&tree) {
  // Root record seeds the cells environment; its own declarations govern
  // its children (DT spec defaults 2/1 when absent).
  NodeRecord root_rec;
  root_rec.path = "/";
  root_rec.child_ac = tree.root().address_cells_or_default();
  root_rec.child_sc = tree.root().size_cells_or_default();
  if (const dts::Property* p = tree.root().find_property("#address-cells")) {
    if (!p->provenance.empty()) root_rec.cells_provenance = p->provenance;
  }
  if (const dts::Property* p = tree.root().find_property("#size-cells")) {
    if (!p->provenance.empty()) root_rec.cells_provenance = p->provenance;
  }
  records_.emplace(&tree.root(), std::move(root_rec));
  order_.emplace_back("/", &tree.root());
  path_index_.emplace("/", &tree.root());

  // Phandle/label indexes need the whole tree before ranges parsing (ranges
  // never references phandles, but keeping one simple pass per concern is
  // clearer than fusing them).
  std::map<uint32_t, std::vector<const dts::Node*>> holders;
  tree.visit([&](const std::string&, const dts::Node& n) {
    if (const dts::Property* p = n.find_property("phandle")) {
      if (auto v = p->as_u32()) holders[*v].push_back(&n);
    }
    for (support::Atom label : n.labels()) {
      label_index_.emplace(label.str(), &n);
    }
  });
  for (auto& [value, nodes] : holders) {
    phandle_index_.emplace(value, nodes.front());
    if (nodes.size() > 1) {
      duplicates_.push_back(PhandleCollision{value, std::move(nodes)});
    }
  }

  for (const auto& child : tree.root().children()) {
    index_subtree(*child, &tree.root(), "/" + child->name());
  }
}

void AnalysisContext::index_subtree(const dts::Node& node,
                                    const dts::Node* parent,
                                    const std::string& path) {
  const NodeRecord& parent_rec = records_.at(parent);
  NodeRecord rec;
  rec.path = path;
  rec.parent = parent;
  rec.reg_ac = parent_rec.child_ac;
  rec.reg_sc = parent_rec.child_sc;
  rec.cells_provenance = parent_rec.cells_provenance;

  // Cells this node hands its children: own declaration when present, else
  // what governs this node (of_n_addr_cells inheritance).
  rec.child_ac = rec.reg_ac;
  rec.child_sc = rec.reg_sc;
  if (const dts::Property* p = node.find_property("#address-cells")) {
    if (auto v = p->as_u32()) {
      rec.child_ac = *v;
      if (!p->provenance.empty()) rec.cells_provenance = p->provenance;
    }
  }
  if (const dts::Property* p = node.find_property("#size-cells")) {
    if (auto v = p->as_u32()) {
      rec.child_sc = *v;
      if (!p->provenance.empty()) rec.cells_provenance = p->provenance;
    }
  }

  // Parse `ranges` tuples: (child addr, parent addr, size) under
  // (child_ac, reg_ac, child_sc). Boolean `ranges;`, absent ranges and
  // malformed widths are all the identity mapping.
  if (const dts::Property* ranges = node.find_property("ranges")) {
    auto cells = ranges->as_cells();
    if (cells && !cells->empty()) {
      uint32_t stride = rec.child_ac + rec.reg_ac + rec.child_sc;
      if (stride > 0 && rec.child_ac >= 1 && rec.child_ac <= 2 &&
          rec.reg_ac >= 1 && rec.reg_ac <= 2 && rec.child_sc >= 1 &&
          rec.child_sc <= 2) {
        for (size_t e = 0; e + stride <= cells->size(); e += stride) {
          RangeEntry entry;
          entry.child_base = combine_cells(*cells, e, rec.child_ac);
          entry.parent_base =
              combine_cells(*cells, e + rec.child_ac, rec.reg_ac);
          entry.size = combine_cells(*cells, e + rec.child_ac + rec.reg_ac,
                                     rec.child_sc);
          rec.ranges.push_back(entry);
        }
        rec.identity_ranges = false;
      }
    }
  }

  records_.emplace(&node, std::move(rec));
  order_.emplace_back(path, &node);
  path_index_.emplace(path, &node);
  for (const auto& child : node.children()) {
    index_subtree(*child, &node, path + "/" + child->name());
  }
}

const AnalysisContext::NodeRecord* AnalysisContext::record(
    const dts::Node& node) const {
  auto it = records_.find(&node);
  return it == records_.end() ? nullptr : &it->second;
}

const dts::Node* AnalysisContext::node_for_phandle(uint32_t value) const {
  auto it = phandle_index_.find(value);
  return it == phandle_index_.end() ? nullptr : it->second;
}

const dts::Node* AnalysisContext::node_for_label(std::string_view label) const {
  auto it = label_index_.find(std::string(label));
  return it == label_index_.end() ? nullptr : it->second;
}

const dts::Node* AnalysisContext::node_at(std::string_view path) const {
  auto it = path_index_.find(std::string(path));
  return it == path_index_.end() ? nullptr : it->second;
}

const std::string& AnalysisContext::path_of(const dts::Node& node) const {
  static const std::string kEmpty;
  const NodeRecord* rec = record(node);
  return rec == nullptr ? kEmpty : rec->path;
}

const dts::Node* AnalysisContext::parent_of(const dts::Node& node) const {
  const NodeRecord* rec = record(node);
  return rec == nullptr ? nullptr : rec->parent;
}

std::pair<uint32_t, uint32_t> AnalysisContext::reg_cells(
    const dts::Node& node) const {
  const NodeRecord* rec = record(node);
  return rec == nullptr ? std::pair<uint32_t, uint32_t>{2, 1}
                        : std::pair<uint32_t, uint32_t>{rec->reg_ac,
                                                        rec->reg_sc};
}

const std::string& AnalysisContext::cells_provenance(
    const dts::Node& node) const {
  static const std::string kEmpty;
  const NodeRecord* rec = record(node);
  return rec == nullptr ? kEmpty : rec->cells_provenance;
}

std::optional<uint64_t> AnalysisContext::translate(const dts::Node& node,
                                                   uint64_t base,
                                                   uint64_t size) const {
  const NodeRecord* rec = record(node);
  if (rec == nullptr) return base;
  for (const dts::Node* bus = rec->parent; bus != nullptr;) {
    const NodeRecord* bus_rec = record(*bus);
    if (bus_rec == nullptr) break;
    if (!bus_rec->identity_ranges) {
      bool mapped = false;
      for (const RangeEntry& entry : bus_rec->ranges) {
        if (base >= entry.child_base &&
            base + size <= entry.child_base + entry.size) {
          base = base - entry.child_base + entry.parent_base;
          mapped = true;
          break;
        }
      }
      if (!mapped) return std::nullopt;
    }
    bus = bus_rec->parent;
  }
  return base;
}

std::optional<uint32_t> AnalysisContext::interrupt_parent_phandle(
    const dts::Node& node) const {
  for (const dts::Node* cur = &node; cur != nullptr;
       cur = parent_of(*cur)) {
    if (const dts::Property* p = cur->find_property("interrupt-parent")) {
      return p->as_u32();
    }
  }
  return std::nullopt;
}

const dts::Node* AnalysisContext::interrupt_parent(
    const dts::Node& node) const {
  auto ph = interrupt_parent_phandle(node);
  if (!ph) return nullptr;
  return node_for_phandle(*ph);
}

}  // namespace llhsc::checkers::crossref

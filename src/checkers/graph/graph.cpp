#include "checkers/graph/graph.hpp"

#include <unordered_map>

#include "checkers/crossref/rules.hpp"
#include "obs/obs.hpp"
#include "support/strings.hpp"

namespace llhsc::checkers::graph {

namespace {

// dtc's unresolved-reference placeholders (overlay -@ output).
constexpr uint64_t kPhandlePlaceholderHi = 0xffffffffull;

const crossref::PhandleArgsSpec* spec_for_property(std::string_view name) {
  for (const crossref::PhandleArgsSpec& spec :
       crossref::phandle_args_specs()) {
    if (spec.is_suffix ? (support::ends_with(name, spec.property) &&
                          name.size() > spec.property.size())
                       : name == spec.property) {
      return &spec;
    }
  }
  return nullptr;
}

/// The provider whose #interrupt-cells types `node`'s interrupts: the
/// resolved interrupt-parent phandle, else the nearest ancestor marked
/// interrupt-controller (the DT spec's implicit-parent fallback).
const dts::Node* effective_interrupt_provider(
    const crossref::AnalysisContext& ctx, const dts::Node& node) {
  if (ctx.interrupt_parent_phandle(node)) return ctx.interrupt_parent(node);
  for (const dts::Node* cur = ctx.parent_of(node); cur != nullptr;
       cur = ctx.parent_of(*cur)) {
    if (cur->find_property("interrupt-controller") != nullptr) return cur;
  }
  return nullptr;
}

NodeStatus status_of(const dts::Node& node) {
  const dts::Property* p = node.find_property("status");
  if (p == nullptr) return NodeStatus::kOkay;
  auto s = p->as_string();
  if (!s || *s == "okay" || *s == "ok") return NodeStatus::kOkay;
  if (*s == "disabled") return NodeStatus::kDisabled;
  return NodeStatus::kOther;
}

bool declares_provider_cells(const dts::Node& node) {
  for (const crossref::PhandleArgsSpec& spec :
       crossref::phandle_args_specs()) {
    if (node.find_property(std::string(spec.cells_property)) != nullptr) {
      return true;
    }
  }
  return node.find_property("#interrupt-cells") != nullptr;
}

}  // namespace

std::string_view to_string(EdgeKind k) {
  switch (k) {
    case EdgeKind::kClock: return "clock";
    case EdgeKind::kInterrupt: return "interrupt";
    case EdgeKind::kPowerDomain: return "power-domain";
    case EdgeKind::kReset: return "reset";
    case EdgeKind::kDma: return "dma";
    case EdgeKind::kGpio: return "gpio";
    case EdgeKind::kPwm: return "pwm";
    case EdgeKind::kPhy: return "phy";
    case EdgeKind::kMailbox: return "mailbox";
    case EdgeKind::kIoChannel: return "io-channel";
    case EdgeKind::kThermalSensor: return "thermal-sensor";
    case EdgeKind::kOther: return "other";
  }
  return "other";
}

EdgeKind edge_kind_for_cells(std::string_view cells_property) {
  if (cells_property == "#clock-cells") return EdgeKind::kClock;
  if (cells_property == "#interrupt-cells") return EdgeKind::kInterrupt;
  if (cells_property == "#power-domain-cells") return EdgeKind::kPowerDomain;
  if (cells_property == "#reset-cells") return EdgeKind::kReset;
  if (cells_property == "#dma-cells") return EdgeKind::kDma;
  if (cells_property == "#gpio-cells") return EdgeKind::kGpio;
  if (cells_property == "#pwm-cells") return EdgeKind::kPwm;
  if (cells_property == "#phy-cells") return EdgeKind::kPhy;
  if (cells_property == "#mbox-cells") return EdgeKind::kMailbox;
  if (cells_property == "#io-channel-cells") return EdgeKind::kIoChannel;
  if (cells_property == "#thermal-sensor-cells") {
    return EdgeKind::kThermalSensor;
  }
  return EdgeKind::kOther;
}

DeviceGraph DeviceGraph::build(const crossref::AnalysisContext& ctx) {
  obs::Span span("graph.build", "graph");
  DeviceGraph g;
  const auto& order = ctx.nodes();
  g.nodes_.reserve(order.size());

  std::unordered_map<const dts::Node*, uint32_t> index_of;
  index_of.reserve(order.size());

  // Pass 1: nodes. The context's order is pre-order, so a parent's index is
  // always assigned before its children's — effective_disabled folds the
  // ancestor chain in one forward sweep.
  for (const auto& [path, node] : order) {
    uint32_t idx = static_cast<uint32_t>(g.nodes_.size());
    index_of.emplace(node, idx);
    GraphNode gn;
    gn.node = node;
    gn.path = path;
    gn.status = status_of(*node);
    gn.effectively_disabled = gn.status == NodeStatus::kDisabled;
    if (!gn.effectively_disabled) {
      if (const dts::Node* parent = ctx.parent_of(*node)) {
        auto it = index_of.find(parent);
        if (it != index_of.end()) {
          gn.effectively_disabled = g.nodes_[it->second].effectively_disabled;
        }
      }
    }
    gn.is_provider = declares_provider_cells(*node);
    gn.location = node->location();
    gn.provenance = node->provenance();
    g.nodes_.push_back(std::move(gn));
  }

  auto link = [&g](Edge e) {
    uint32_t eidx = static_cast<uint32_t>(g.edges_.size());
    g.nodes_[e.consumer].out.push_back(eidx);
    if (e.resolved) g.nodes_[e.provider].in.push_back(eidx);
    g.edges_.push_back(std::move(e));
  };

  // Pass 2: edges, in (node pre-order, property order, entry order).
  for (uint32_t ci = 0; ci < g.nodes_.size(); ++ci) {
    const dts::Node* node = g.nodes_[ci].node;

    for (const dts::Property& p : node->properties()) {
      const crossref::PhandleArgsSpec* spec = spec_for_property(p.name);
      if (spec == nullptr) continue;
      auto cells = p.as_cells();
      if (!cells || cells->empty()) continue;
      size_t i = 0;
      size_t entry = 0;
      while (i < cells->size()) {
        Edge e;
        e.consumer = ci;
        e.kind = edge_kind_for_cells(spec->cells_property);
        e.property = p.name;
        e.entry_index = entry;
        e.location = p.location.valid() ? p.location : node->location();
        e.provenance = !p.provenance.empty() ? p.provenance
                                             : node->provenance();
        uint64_t ph = (*cells)[i];
        e.phandle = static_cast<uint32_t>(ph);
        const dts::Node* provider =
            ph == 0 || ph == kPhandlePlaceholderHi
                ? nullptr
                : ctx.node_for_phandle(static_cast<uint32_t>(ph));
        if (provider == nullptr) {
          link(std::move(e));  // unresolved — a taint source downstream
          break;  // argument count unknowable; stop parsing this property
        }
        auto it = index_of.find(provider);
        if (it != index_of.end()) {
          e.provider = it->second;
          e.resolved = true;
        }
        const dts::Property* pc =
            provider->find_property(std::string(spec->cells_property));
        std::optional<uint32_t> argc =
            pc != nullptr ? pc->as_u32() : std::nullopt;
        if (!argc) {
          link(std::move(e));  // provider-missing-cells; stride unknowable
          break;
        }
        e.arity = *argc;
        if (i + 1 + *argc > cells->size()) {
          e.truncated = true;
          link(std::move(e));
          break;
        }
        link(std::move(e));
        i += 1 + *argc;
        ++entry;
      }
    }

    // `interrupts` routes through the effective interrupt parent rather
    // than an inline phandle; one edge per #interrupt-cells-sized tuple.
    const dts::Property* irq = node->find_property("interrupts");
    if (irq == nullptr) continue;
    auto cells = irq->as_cells();
    if (!cells || cells->empty()) continue;
    const dts::Node* provider = effective_interrupt_provider(ctx, *node);
    Edge proto;
    proto.consumer = ci;
    proto.kind = EdgeKind::kInterrupt;
    proto.property = "interrupts";
    proto.location = irq->location.valid() ? irq->location
                                           : node->location();
    proto.provenance = !irq->provenance.empty() ? irq->provenance
                                                : node->provenance();
    if (auto ph = ctx.interrupt_parent_phandle(*node)) {
      proto.phandle = *ph;
    }
    if (provider == nullptr) {
      link(std::move(proto));  // dangling/absent parent — one taint edge
      continue;
    }
    auto it = index_of.find(provider);
    if (it != index_of.end()) {
      proto.provider = it->second;
      proto.resolved = true;
    }
    const dts::Property* ic = provider->find_property("#interrupt-cells");
    std::optional<uint32_t> want = ic != nullptr ? ic->as_u32() : std::nullopt;
    if (!want || *want == 0) {
      link(std::move(proto));  // interrupt-provider-missing-cells shape
      continue;
    }
    proto.arity = *want;
    size_t tuples = cells->size() / *want;
    if (cells->size() % *want != 0) {
      // The ragged tail is one truncated edge after the whole tuples.
      for (size_t t = 0; t < tuples; ++t) {
        Edge e = proto;
        e.entry_index = t;
        link(std::move(e));
      }
      Edge tail = proto;
      tail.entry_index = tuples;
      tail.truncated = true;
      link(std::move(tail));
      continue;
    }
    for (size_t t = 0; t < tuples; ++t) {
      Edge e = proto;
      e.entry_index = t;
      link(std::move(e));
    }
  }

  obs::count("graph.nodes", "graph",
             static_cast<int64_t>(g.nodes_.size()));
  obs::count("graph.edges", "graph",
             static_cast<int64_t>(g.edges_.size()));
  return g;
}

DeviceGraph DeviceGraph::build(const dts::Tree& tree) {
  crossref::AnalysisContext ctx(tree);
  return build(ctx);
}

}  // namespace llhsc::checkers::graph

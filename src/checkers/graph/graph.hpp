// Device-graph IR — the whole-tree dataflow view the per-edge cross-reference
// rules cannot see. Built once per unit from the crossref::AnalysisContext
// (one pre-order pass over the same indexes), it turns the DTS into a typed
// property graph:
//
//   * one GraphNode per DT node, carrying its path, normalized status
//     (okay / disabled, with ancestor disabling folded in — a node under a
//     disabled bus is effectively disabled per the DT spec), provider role,
//     and source/delta provenance;
//   * one Edge per phandle+args tuple of every consumer property (`clocks`,
//     `resets`, `power-domains`, `dmas`, `*-gpios`, `pwms`, …) plus one per
//     `interrupts` tuple routed through the effective interrupt parent —
//     each typed by the provider contract (`#clock-cells` -> kClock, …) and
//     carrying the consumer property's source location and delta provenance,
//     so a defect path renders as a SARIF code flow step by step.
//
// The graph is self-contained after build (paths and facts are copied out of
// the context); only the dts::Node pointers alias the source tree, so the
// tree must outlive the graph — the server's GraphArtifact keeps both.
//
// Analyses (checkers/graph/rules.hpp) run Tarjan SCC and worklist fixpoints
// (checkers/graph/fixpoint.hpp) over this IR instead of re-walking the tree.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "checkers/crossref/context.hpp"
#include "dts/tree.hpp"
#include "support/diagnostics.hpp"

namespace llhsc::checkers::graph {

/// The provider contract that types an edge (derived from the provider-side
/// #*-cells property of the consumer property's spec).
enum class EdgeKind : uint8_t {
  kClock,
  kInterrupt,
  kPowerDomain,
  kReset,
  kDma,
  kGpio,
  kPwm,
  kPhy,
  kMailbox,
  kIoChannel,
  kThermalSensor,
  kOther,
};

[[nodiscard]] std::string_view to_string(EdgeKind k);
/// Maps a provider cells property ("#clock-cells") to its edge kind.
[[nodiscard]] EdgeKind edge_kind_for_cells(std::string_view cells_property);

/// One consumer->provider dependency: entry `entry_index` of the consumer's
/// `property`. Unresolved edges (dangling phandle) keep provider == kNoNode;
/// truncated edges ran out of argument cells against the provider's arity.
struct Edge {
  static constexpr uint32_t kNoNode = UINT32_MAX;

  uint32_t consumer = kNoNode;
  uint32_t provider = kNoNode;
  EdgeKind kind = EdgeKind::kOther;
  std::string property;        // consumer property name
  size_t entry_index = 0;      // which tuple within the property
  uint32_t phandle = 0;        // raw referenced phandle value (0 = structural)
  uint32_t arity = 0;          // argument cells the provider demands
  bool resolved = false;       // provider index is valid
  bool truncated = false;      // specifier ran out of cells for `arity`
  support::SourceLocation location;  // of the consumer property
  std::string provenance;      // delta module of the consumer property
};

/// Normalized `status` (DT spec §2.3.4). Absent status means enabled.
enum class NodeStatus : uint8_t { kOkay, kDisabled, kOther };

struct GraphNode {
  const dts::Node* node = nullptr;
  std::string path;
  NodeStatus status = NodeStatus::kOkay;
  /// Own status, or any ancestor's, is "disabled" — the DT-effective state.
  bool effectively_disabled = false;
  /// Declares at least one #*-cells provider contract.
  bool is_provider = false;
  std::vector<uint32_t> out;  // edge indices where this node consumes
  std::vector<uint32_t> in;   // edge indices where this node provides
  support::SourceLocation location;
  std::string provenance;
};

/// The typed property graph of one tree. Node order is the context's
/// pre-order, edge order is (node pre-order, property order, entry order) —
/// both deterministic, so analyses iterate without sorting.
class DeviceGraph {
 public:
  /// Builds from a pre-built context (shared with the crossref/semantic
  /// checkers when available).
  [[nodiscard]] static DeviceGraph build(const crossref::AnalysisContext& ctx);
  /// Convenience: builds a private context first.
  [[nodiscard]] static DeviceGraph build(const dts::Tree& tree);

  [[nodiscard]] const std::vector<GraphNode>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }
  [[nodiscard]] const GraphNode& node(uint32_t index) const {
    return nodes_[index];
  }
  [[nodiscard]] const Edge& edge(uint32_t index) const {
    return edges_[index];
  }

 private:
  std::vector<GraphNode> nodes_;
  std::vector<Edge> edges_;
};

}  // namespace llhsc::checkers::graph

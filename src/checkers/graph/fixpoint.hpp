// Worklist/fixpoint helpers for analyses over the DeviceGraph. Two pieces:
//
//   * Worklist — a FIFO with a dedup bitmap; the classic monotone-dataflow
//     driver. Analyses seed it, then pop/propagate until empty (status taint
//     runs it over reversed edges, demand reachability over forward edges).
//   * tarjan_scc — iterative Tarjan (explicit stack, no recursion: a
//     generated tree can chain thousands of nodes deep). Emits components
//     in reverse-topological completion order; callers that need
//     deterministic reporting anchor each component on its smallest member
//     index, which is the pre-order position.
//
// Both work on index-based adjacency (node count + successor callback), so
// tests can drive them with synthetic graphs without building trees.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace llhsc::checkers::graph {

/// FIFO worklist over dense uint32_t node ids with membership dedup.
class Worklist {
 public:
  explicit Worklist(size_t node_count) : queued_(node_count, false) {}

  void push(uint32_t n) {
    if (queued_[n]) return;
    queued_[n] = true;
    items_.push_back(n);
  }

  [[nodiscard]] bool empty() const { return head_ == items_.size(); }

  uint32_t pop() {
    uint32_t n = items_[head_++];
    queued_[n] = false;
    return n;
  }

 private:
  std::vector<bool> queued_;
  std::vector<uint32_t> items_;
  size_t head_ = 0;
};

/// Runs a monotone fixpoint: pops nodes until quiescence; `step(n, wl)`
/// applies the transfer function and pushes changed successors.
template <typename Step>
void run_to_fixpoint(Worklist& wl, Step&& step) {
  while (!wl.empty()) {
    uint32_t n = wl.pop();
    step(n, wl);
  }
}

/// Strongly connected components via iterative Tarjan. `successors(n)` must
/// return an iterable of uint32_t. Returns the components (each a sorted
/// list of member indices) in reverse-topological completion order.
template <typename Successors>
std::vector<std::vector<uint32_t>> tarjan_scc(size_t node_count,
                                              Successors&& successors) {
  constexpr uint32_t kUnvisited = UINT32_MAX;
  std::vector<uint32_t> index(node_count, kUnvisited);
  std::vector<uint32_t> lowlink(node_count, 0);
  std::vector<bool> on_stack(node_count, false);
  std::vector<uint32_t> stack;
  std::vector<std::vector<uint32_t>> components;
  uint32_t next_index = 0;

  // One DFS frame: the node plus how far through its successor list we are.
  struct Frame {
    uint32_t node;
    size_t next_succ;
  };
  std::vector<Frame> frames;

  for (uint32_t root = 0; root < node_count; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.push_back({root, 0});
    while (!frames.empty()) {
      Frame& fr = frames.back();
      uint32_t n = fr.node;
      if (fr.next_succ == 0) {
        index[n] = lowlink[n] = next_index++;
        stack.push_back(n);
        on_stack[n] = true;
      }
      bool descended = false;
      auto succs = successors(n);
      for (size_t i = fr.next_succ; i < succs.size(); ++i) {
        uint32_t m = succs[i];
        if (index[m] == kUnvisited) {
          fr.next_succ = i + 1;
          frames.push_back({m, 0});
          descended = true;
          break;
        }
        if (on_stack[m]) lowlink[n] = std::min(lowlink[n], index[m]);
      }
      if (descended) continue;
      fr.next_succ = succs.size();
      if (lowlink[n] == index[n]) {
        std::vector<uint32_t> comp;
        uint32_t m;
        do {
          m = stack.back();
          stack.pop_back();
          on_stack[m] = false;
          comp.push_back(m);
        } while (m != n);
        std::sort(comp.begin(), comp.end());
        components.push_back(std::move(comp));
      }
      frames.pop_back();
      if (!frames.empty()) {
        uint32_t parent = frames.back().node;
        lowlink[parent] = std::min(lowlink[parent], lowlink[n]);
      }
    }
  }
  return components;
}

}  // namespace llhsc::checkers::graph

#include "checkers/graph/rules.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "checkers/graph/fixpoint.hpp"
#include "obs/obs.hpp"

namespace llhsc::checkers::graph {

namespace {

constexpr uint32_t kUnset = UINT32_MAX;

/// Emits one finding under `id`, honouring enable/severity overrides.
/// Location/provenance come from graph facts rather than tree pointers so
/// the rules never dereference the source tree.
Finding* emit(const RuleOptions& options, Findings& out, std::string_view id,
              std::string subject, std::string message,
              const support::SourceLocation& location,
              const std::string& provenance, const std::string& property) {
  if (!options.enabled(id)) return nullptr;
  const crossref::RuleInfo* info = crossref::find_rule(id);
  if (info == nullptr) return nullptr;
  Finding f;
  f.kind = info->kind;
  f.severity = info->default_severity;
  auto ov = options.severity_overrides.find(std::string(id));
  if (ov != options.severity_overrides.end()) f.severity = ov->second;
  f.rule = std::string(id);
  f.subject = std::move(subject);
  f.message = std::move(message);
  f.location = location;
  f.delta = provenance;
  f.property = property;
  out.push_back(std::move(f));
  return &out.back();
}

std::string edge_note(const DeviceGraph& g, const Edge& e) {
  std::string note = "'" + e.property + "' entry " +
                     std::to_string(e.entry_index) + " references ";
  if (e.resolved) {
    note += g.node(e.provider).path;
  } else {
    note += "missing phandle " + std::to_string(e.phandle);
  }
  note += " (" + std::string(to_string(e.kind)) + ")";
  return note;
}

FlowStep step_for_edge(const DeviceGraph& g, const Edge& e) {
  return FlowStep{e.location, g.node(e.consumer).path, edge_note(g, e)};
}

// ---------------------------------------------------------------------------
// graph-provider-cycle
//
// Tarjan SCC over the resolved typed edges (interrupt edges excluded — the
// interrupt tree has its own structural cycle rule, interrupt-tree-cycle).
// Each component of size >= 2, and each self-loop, is reported once,
// anchored on its smallest pre-order member; the flow is the shortest cycle
// through the anchor (BFS inside the component).
// ---------------------------------------------------------------------------
void run_provider_cycle(const DeviceGraph& g, const RuleOptions& options,
                        Findings& out) {
  obs::Span span("graph.cycles", "graph");

  // Dense successor lists, keeping the edge index for flow rendering.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> succ(
      g.nodes().size());
  for (uint32_t ei = 0; ei < g.edges().size(); ++ei) {
    const Edge& e = g.edge(ei);
    if (!e.resolved || e.kind == EdgeKind::kInterrupt) continue;
    succ[e.consumer].push_back({e.provider, ei});
  }
  std::vector<std::vector<uint32_t>> adj(g.nodes().size());
  for (uint32_t n = 0; n < succ.size(); ++n) {
    for (const auto& [m, ei] : succ[n]) adj[n].push_back(m);
  }

  auto components =
      tarjan_scc(g.nodes().size(), [&adj](uint32_t n) -> const auto& {
        return adj[n];
      });

  // Components come out in reverse-topological completion order; report in
  // anchor (pre-order) order instead so output is position-stable.
  std::vector<const std::vector<uint32_t>*> cyclic;
  for (const auto& comp : components) {
    bool is_cycle = comp.size() >= 2;
    if (!is_cycle) {
      for (const auto& [m, ei] : succ[comp.front()]) {
        if (m == comp.front()) is_cycle = true;  // self-loop
      }
    }
    if (is_cycle) cyclic.push_back(&comp);
  }
  std::sort(cyclic.begin(), cyclic.end(),
            [](const auto* a, const auto* b) {
              return a->front() < b->front();
            });

  for (const auto* comp : cyclic) {
    uint32_t anchor = comp->front();  // members are sorted — smallest wins
    std::vector<bool> in_comp(g.nodes().size(), false);
    for (uint32_t m : *comp) in_comp[m] = true;

    // Shortest cycle through the anchor: BFS over component-internal edges
    // (FIFO pops in distance order), closed by the first edge found back to
    // the anchor. A self-loop on the anchor closes at distance 0.
    std::vector<uint32_t> via(g.nodes().size(), kUnset);  // edge into node
    Worklist wl(g.nodes().size());
    std::vector<bool> seen(g.nodes().size(), false);
    seen[anchor] = true;
    wl.push(anchor);
    uint32_t closing_edge = kUnset;
    run_to_fixpoint(wl, [&](uint32_t n, Worklist& w) {
      for (const auto& [m, ei] : succ[n]) {
        if (!in_comp[m]) continue;
        if (m == anchor && closing_edge == kUnset) closing_edge = ei;
        if (seen[m]) continue;
        seen[m] = true;
        via[m] = ei;
        w.push(m);
      }
    });

    // Rebuild the path anchor -> ... -> closer from the BFS parents.
    std::vector<uint32_t> cycle_edges;
    if (closing_edge != kUnset) {
      cycle_edges.push_back(closing_edge);
      uint32_t cur = g.edge(closing_edge).consumer;
      while (cur != anchor && via[cur] != kUnset) {
        cycle_edges.push_back(via[cur]);
        cur = g.edge(via[cur]).consumer;
      }
      std::reverse(cycle_edges.begin(), cycle_edges.end());
    }

    const GraphNode& a = g.node(anchor);
    std::string message =
        "provider dependencies form a cycle through " +
        std::to_string(comp->size()) + " node(s)";
    if (!cycle_edges.empty()) {
      message += ":";
      for (uint32_t ei : cycle_edges) {
        message += " " + g.node(g.edge(ei).consumer).path + " ->";
      }
      message += " " + a.path;
    }
    Finding* f = emit(options, out, "graph-provider-cycle", a.path,
                      std::move(message), a.location, a.provenance,
                      cycle_edges.empty()
                          ? std::string()
                          : g.edge(cycle_edges.front()).property);
    if (f == nullptr) continue;
    if (comp->size() >= 2) {
      f->other_subject = g.node((*comp)[1]).path;
    }
    for (uint32_t ei : cycle_edges) {
      f->flow.push_back(step_for_edge(g, g.edge(ei)));
    }
    obs::count("graph.cycle_findings", "graph", 1);
  }
}

// ---------------------------------------------------------------------------
// graph-status-propagation
//
// Taint sources: a resolved edge into an effectively-disabled provider, and
// an unresolved phandle edge (the provider does not exist at all). Taint
// flows from provider to consumer (reverse BFS), so dist[n] is the length of
// the shortest dependency chain from n to a bad provider; the flow renders
// that chain hop by hop. Only enabled consumers report — a disabled consumer
// hanging off a disabled provider is intentional.
// ---------------------------------------------------------------------------
void run_status_propagation(const DeviceGraph& g, const RuleOptions& options,
                            Findings& out) {
  obs::Span span("graph.status", "graph");

  const size_t n_nodes = g.nodes().size();
  std::vector<uint32_t> dist(n_nodes, kUnset);
  std::vector<uint32_t> via(n_nodes, kUnset);  // edge toward the cause

  Worklist wl(n_nodes);
  for (uint32_t ei = 0; ei < g.edges().size(); ++ei) {
    const Edge& e = g.edge(ei);
    bool bad_provider =
        (e.resolved && g.node(e.provider).effectively_disabled) ||
        (!e.resolved && e.phandle != 0);
    if (!bad_provider) continue;
    if (dist[e.consumer] <= 1) continue;  // keep the first (lowest) edge
    dist[e.consumer] = 1;
    via[e.consumer] = ei;
    wl.push(e.consumer);
  }

  run_to_fixpoint(wl, [&](uint32_t n, Worklist& w) {
    // n is tainted; every consumer referencing n inherits the taint.
    for (uint32_t ei : g.node(n).in) {
      const Edge& e = g.edge(ei);
      if (dist[e.consumer] <= dist[n] + 1) continue;
      dist[e.consumer] = dist[n] + 1;
      via[e.consumer] = ei;
      w.push(e.consumer);
    }
  });

  for (uint32_t n = 0; n < n_nodes; ++n) {
    if (dist[n] == kUnset) continue;
    const GraphNode& node = g.node(n);
    if (node.effectively_disabled) continue;
    if (node.status == NodeStatus::kOther) continue;  // reserved/fail-*

    // Walk the chain to the cause for the message and flow.
    std::vector<uint32_t> chain;
    uint32_t cur = n;
    while (via[cur] != kUnset) {
      uint32_t ei = via[cur];
      chain.push_back(ei);
      const Edge& e = g.edge(ei);
      if (!e.resolved || dist[e.consumer] == 1) break;
      cur = e.provider;
    }
    const Edge& cause = g.edge(chain.back());
    std::string message;
    if (cause.resolved) {
      message = "enabled node transitively depends on disabled provider " +
                g.node(cause.provider).path + " (" +
                std::to_string(dist[n]) + " hop(s))";
    } else {
      message = "enabled node transitively depends on missing provider "
                "(phandle " +
                std::to_string(cause.phandle) + ", " +
                std::to_string(dist[n]) + " hop(s))";
    }
    const Edge& first = g.edge(chain.front());
    Finding* f = emit(options, out, "graph-status-propagation", node.path,
                      std::move(message), first.location, first.provenance,
                      first.property);
    if (f == nullptr) continue;
    if (cause.resolved) f->other_subject = g.node(cause.provider).path;
    for (uint32_t ei : chain) f->flow.push_back(step_for_edge(g, g.edge(ei)));
    if (cause.resolved) {
      const GraphNode& p = g.node(cause.provider);
      f->flow.push_back(FlowStep{
          p.location, p.path,
          p.status == NodeStatus::kDisabled
              ? "status is \"disabled\""
              : "disabled through an ancestor's status"});
    }
    obs::count("graph.status_findings", "graph", 1);
  }
}

// ---------------------------------------------------------------------------
// graph-cells-arity
//
// The builder marks an edge truncated when the consumer tuple ran out of
// cells against the provider's #*-cells (or, for interrupts, when the
// property length is not a multiple of #interrupt-cells). One finding per
// truncated edge, typed by the edge kind, with a consumer -> provider flow.
// ---------------------------------------------------------------------------
void run_cells_arity(const DeviceGraph& g, const RuleOptions& options,
                     Findings& out) {
  obs::Span span("graph.arity", "graph");

  for (uint32_t ei = 0; ei < g.edges().size(); ++ei) {
    const Edge& e = g.edge(ei);
    if (!e.truncated || !e.resolved) continue;
    const GraphNode& consumer = g.node(e.consumer);
    const GraphNode& provider = g.node(e.provider);
    std::string message =
        std::string(to_string(e.kind)) + " edge ('" + e.property +
        "' entry " + std::to_string(e.entry_index) + ") violates the " +
        std::to_string(e.arity) + "-cell contract of provider " +
        provider.path;
    Finding* f = emit(options, out, "graph-cells-arity", consumer.path,
                      std::move(message), e.location, e.provenance,
                      e.property);
    if (f == nullptr) continue;
    f->other_subject = provider.path;
    f->flow.push_back(step_for_edge(g, e));
    f->flow.push_back(FlowStep{provider.location, provider.path,
                               "declares the " + std::to_string(e.arity) +
                                   "-cell " + std::string(to_string(e.kind)) +
                                   " contract"});
    obs::count("graph.arity_findings", "graph", 1);
  }
}

// ---------------------------------------------------------------------------
// graph-orphan-provider
//
// Demand fixpoint: every enabled non-provider node demands its providers,
// and demand is transitive (a demanded provider demands the providers *it*
// consumes). A provider that is referenced but never demanded is live only
// through disabled consumers — dead configuration weight. The zero-reference
// case stays with the crossref provider-orphan rule.
// ---------------------------------------------------------------------------
void run_orphan_provider(const DeviceGraph& g, const RuleOptions& options,
                         Findings& out) {
  obs::Span span("graph.orphan", "graph");

  const size_t n_nodes = g.nodes().size();
  std::vector<bool> demanded(n_nodes, false);
  Worklist wl(n_nodes);
  for (uint32_t n = 0; n < n_nodes; ++n) {
    const GraphNode& node = g.node(n);
    if (node.is_provider || node.effectively_disabled) continue;
    demanded[n] = true;
    wl.push(n);
  }
  run_to_fixpoint(wl, [&](uint32_t n, Worklist& w) {
    for (uint32_t ei : g.node(n).out) {
      const Edge& e = g.edge(ei);
      if (!e.resolved || demanded[e.provider]) continue;
      demanded[e.provider] = true;
      w.push(e.provider);
    }
  });

  for (uint32_t n = 0; n < n_nodes; ++n) {
    const GraphNode& node = g.node(n);
    if (!node.is_provider || node.effectively_disabled) continue;
    if (demanded[n] || node.in.empty()) continue;
    Finding* f = emit(options, out, "graph-orphan-provider", node.path,
                      "provider is referenced, but only by consumers no "
                      "enabled device transitively demands",
                      node.location, node.provenance, std::string());
    if (f == nullptr) continue;
    // Name the (dead) consumers — at most four, in edge order.
    size_t steps = 0;
    for (uint32_t ei : node.in) {
      if (steps++ == 4) break;
      f->flow.push_back(step_for_edge(g, g.edge(ei)));
    }
    obs::count("graph.orphan_findings", "graph", 1);
  }
}

}  // namespace

Findings GraphChecker::check(const DeviceGraph& g) const {
  Findings out;
  run_provider_cycle(g, options_, out);
  run_status_propagation(g, options_, out);
  run_cells_arity(g, options_, out);
  run_orphan_provider(g, options_, out);
  return out;
}

Findings check_exclusive_providers(const std::vector<UnitGraph>& units,
                                   const RuleOptions& options) {
  obs::Span span("graph.exclusive", "graph");
  Findings out;

  struct Claim {
    size_t unit_index;
    uint32_t node;
    uint32_t edge;
  };
  // provider path -> first claim, in unit order (std::map for stable,
  // path-sorted reporting within each later unit).
  std::map<std::string, Claim> first_claim;

  for (size_t ui = 0; ui < units.size(); ++ui) {
    const DeviceGraph& g = *units[ui].graph;
    // Collect this unit's claims first so a unit never conflicts with
    // itself, then merge against earlier units.
    std::map<std::string, Claim> local;
    for (uint32_t n = 0; n < g.nodes().size(); ++n) {
      const GraphNode& node = g.node(n);
      if (!node.is_provider || node.effectively_disabled) continue;
      if (node.node != nullptr &&
          node.node->find_property("shared") != nullptr) {
        continue;  // provider opted out of exclusivity
      }
      for (uint32_t ei : node.in) {
        const Edge& e = g.edge(ei);
        // Interrupt controllers are virtualized per VM, never passed
        // through exclusively — an interrupt edge is not a claim.
        if (e.kind == EdgeKind::kInterrupt) continue;
        if (g.node(e.consumer).effectively_disabled) continue;
        local.emplace(node.path, Claim{ui, n, ei});
        break;  // first enabled consumer is the representative
      }
    }
    for (const auto& [path, claim] : local) {
      auto it = first_claim.find(path);
      if (it == first_claim.end()) {
        first_claim.emplace(path, claim);
        continue;
      }
      const Claim& first = it->second;
      const DeviceGraph& fg = *units[first.unit_index].graph;
      const GraphNode& node = (*units[claim.unit_index].graph).node(claim.node);
      const Edge& edge = (*units[claim.unit_index].graph).edge(claim.edge);
      Finding* f = emit(
          options, out, "graph-exclusive-provider", path,
          "exclusive provider is claimed by unit '" +
              units[first.unit_index].unit + "' and unit '" +
              units[claim.unit_index].unit + "'",
          edge.location, node.provenance, edge.property);
      if (f == nullptr) continue;
      f->other_subject = units[first.unit_index].unit;
      const Edge& fe = fg.edge(first.edge);
      f->flow.push_back(FlowStep{
          fe.location, fg.node(fe.consumer).path,
          "claims " + path + " in unit '" + units[first.unit_index].unit +
              "' via '" + fe.property + "'"});
      f->flow.push_back(FlowStep{
          edge.location, g.node(edge.consumer).path,
          "claims " + path + " in unit '" + units[claim.unit_index].unit +
              "' via '" + edge.property + "'"});
      obs::count("graph.exclusive_findings", "graph", 1);
    }
  }
  return out;
}

}  // namespace llhsc::checkers::graph

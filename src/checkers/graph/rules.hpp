// Whole-graph dataflow rules over the DeviceGraph IR. Registered in the same
// catalog as the cross-reference rules (checkers/crossref/rules.hpp), so the
// CLI's --disable-rule / --rule-severity and SARIF rule metadata cover them
// uniformly:
//
//   graph-provider-cycle       E  provider dependencies (clocks, resets, ...)
//                                 loop — Tarjan SCC over the typed edges
//   graph-status-propagation   E  an enabled consumer transitively depends on
//                                 a disabled or missing provider — reverse
//                                 multi-source BFS from every taint source
//   graph-cells-arity          E  a typed edge violates the provider's
//                                 #*-cells arity contract (truncated tuple or
//                                 ragged interrupts), generalized per EdgeKind
//   graph-orphan-provider      W  a referenced provider only disabled
//                                 consumers demand — demand fixpoint from the
//                                 enabled sinks
//   graph-exclusive-provider   E  two units claim the same exclusive provider
//                                 (cross-unit; providers opt out with a
//                                 boolean `shared` property)
//
// Every finding carries the defect path in Finding::flow, rendered as SARIF
// codeFlows/relatedLocations by checkers/report.cpp.
#pragma once

#include <string>
#include <vector>

#include "checkers/crossref/rules.hpp"
#include "checkers/finding.hpp"
#include "checkers/graph/graph.hpp"

namespace llhsc::checkers::graph {

/// Per-rule enable/severity plumbing is shared with the crossref checker —
/// one --disable-rule flag drives both.
using RuleOptions = crossref::CrossRefOptions;

class GraphChecker {
 public:
  explicit GraphChecker(RuleOptions options = {})
      : options_(std::move(options)) {}

  /// Runs the four per-unit analyses (cycle, status, arity, orphan). Each
  /// analysis records an obs span; callers sort the result per their
  /// determinism contract (the pipeline sorts per stage chunk).
  [[nodiscard]] Findings check(const DeviceGraph& g) const;

 private:
  RuleOptions options_;
};

/// One unit's graph for the cross-unit analysis ("vm1", "platform", ...).
struct UnitGraph {
  std::string unit;
  const DeviceGraph* graph = nullptr;
};

/// graph-exclusive-provider: flags a provider path claimed (referenced by an
/// enabled consumer over a non-interrupt edge) in two or more units. Units
/// are compared in the given order; each later claimer yields one finding
/// naming the first. Providers carrying a boolean `shared` property are
/// exempt, and interrupt edges never claim (interrupt controllers are
/// virtualized per VM, not passed through).
[[nodiscard]] Findings check_exclusive_providers(
    const std::vector<UnitGraph>& units, const RuleOptions& options = {});

}  // namespace llhsc::checkers::graph

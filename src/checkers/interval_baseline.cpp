#include "checkers/interval_baseline.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace llhsc::checkers {

std::vector<OverlapPair> find_overlaps_sweepline(
    const std::vector<MemRegion>& regions) {
  // Sort region indices by base address; scan with an active set of regions
  // whose end exceeds the current base. With the active set kept as a vector
  // pruned on entry, the scan is O(n log n + k·a) where a is the active-set
  // size — linear for sparse layouts, degrading gracefully for dense ones.
  std::vector<size_t> order(regions.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return regions[a].base < regions[b].base;
  });

  std::vector<OverlapPair> out;
  std::vector<size_t> active;
  for (size_t idx : order) {
    const MemRegion& r = regions[idx];
    if (r.size == 0) continue;
    // Retire regions that end at or before this base.
    std::erase_if(active, [&](size_t a) {
      return regions[a].base + regions[a].size <= r.base;
    });
    for (size_t a : active) {
      // Active regions all have end > r.base and base <= r.base: overlap.
      if (!overlap_is_fault(regions[a].region_class, r.region_class)) continue;
      OverlapPair pair{std::min(a, idx), std::max(a, idx)};
      out.push_back(pair);
    }
    active.push_back(idx);
  }
  std::sort(out.begin(), out.end(), [](const OverlapPair& a, const OverlapPair& b) {
    return a.first != b.first ? a.first < b.first : a.second < b.second;
  });
  return out;
}

Findings check_regions_baseline(const std::vector<MemRegion>& regions) {
  Findings out;
  for (const OverlapPair& pair : find_overlaps_sweepline(regions)) {
    const MemRegion& a = regions[pair.first];
    const MemRegion& b = regions[pair.second];
    Finding f;
    f.kind = FindingKind::kAddressOverlap;
    f.subject = a.path + "[" + std::to_string(a.entry_index) + "]";
    f.other_subject = b.path + "[" + std::to_string(b.entry_index) + "]";
    f.delta = !b.provenance.empty() ? b.provenance : a.provenance;
    f.base_a = a.base;
    f.size_a = a.size;
    f.base_b = b.base;
    f.size_b = b.size;
    f.message = "regions " + support::hex(a.base) + "+" + support::hex(a.size) +
                " and " + support::hex(b.base) + "+" + support::hex(b.size) +
                " overlap (structural check, no witness)";
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace llhsc::checkers

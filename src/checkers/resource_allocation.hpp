// Resource-allocation checker — paper §IV-A. Validates a concrete
// static-partitioning configuration: one feature selection per VM, checked
// against (a) the per-VM feature-model semantics, (b) across-VM exclusivity
// of designated resources (CPU cores), and (c) overall allocation
// feasibility through the multi-VM SMT encoding. Guarantees the paper's
// "correct by construction" property: a selection passing this checker is a
// valid multi-product of the feature model.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "checkers/finding.hpp"
#include "feature/multivm.hpp"

namespace llhsc::checkers {

class ResourceAllocationChecker {
 public:
  ResourceAllocationChecker(const feature::FeatureModel& model,
                            std::vector<feature::FeatureId> exclusive,
                            smt::Backend backend = smt::Backend::kBuiltin);

  /// Checks one VM-indexed list of selected feature-name sets.
  [[nodiscard]] Findings check(
      const std::vector<std::set<std::string>>& vm_features);

  /// Converts feature names to a Selection; unknown names are reported.
  [[nodiscard]] std::optional<feature::Selection> to_selection(
      const std::set<std::string>& names, Findings& out,
      const std::string& subject) const;

  /// The union of VM selections = the platform selection (paper §III-A:
  /// "the platform DTS is the union of selected features in both products").
  [[nodiscard]] static feature::Selection platform_union(
      const std::vector<feature::Selection>& vm_selections);

  [[nodiscard]] const feature::FeatureModel& model() const { return *model_; }

 private:
  const feature::FeatureModel* model_;
  std::vector<feature::FeatureId> exclusive_;
  smt::Backend backend_;
};

}  // namespace llhsc::checkers

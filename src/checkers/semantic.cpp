#include "checkers/semantic.hpp"

#include "checkers/crossref/context.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "checkers/interval_baseline.hpp"
#include "support/strings.hpp"

namespace llhsc::checkers {

namespace {

RegionClass classify(const dts::Node& node) {
  if (const dts::Property* dt = node.find_property("device_type")) {
    if (dt->as_string() == std::optional<std::string>("memory")) {
      return RegionClass::kMemory;
    }
  }
  if (const dts::Property* c = node.find_property("compatible")) {
    // compatible is a stringlist (most-specific first); the veth binding may
    // appear at any position, e.g. compatible = "acme,veth-2", "veth".
    if (auto list = c->as_string_list()) {
      for (const std::string& entry : *list) {
        if (entry == "veth") return RegionClass::kIpc;
      }
    }
  }
  if (node.base_name().rfind("veth", 0) == 0) return RegionClass::kIpc;
  return RegionClass::kDevice;
}

uint64_t combine_cells(const std::vector<uint64_t>& cells, size_t offset,
                       uint32_t count) {
  uint64_t value = 0;
  for (uint32_t i = 0; i < count; ++i) {
    value = (value << 32) | (cells[offset + i] & 0xffffffffull);
  }
  return value;
}

/// Extracts the regions of one node's reg through the shared context: the
/// governing cells come from ctx.reg_cells (nearest-ancestor resolution) and
/// the CPU-view base from ctx.translate (composition of every ancestor
/// bus's `ranges`).
void extract_node_regions(const crossref::AnalysisContext& ctx,
                          const dts::Node& node, const std::string& path,
                          std::vector<MemRegion>& regions, Findings& out) {
  const dts::Property* reg = node.find_property("reg");
  if (reg == nullptr) return;
  auto [ac, sc] = ctx.reg_cells(node);
  if (sc == 0) return;  // reg is an id (cpu cores), not an address range
  if (ac == 0 || ac > 2 || sc > 2) {
    Finding f;
    f.kind = FindingKind::kRegWidthViolation;
    f.subject = path;
    f.property = "reg";
    f.delta = node.provenance();
    f.location = reg->location.valid() ? reg->location : node.location();
    f.message = "#address-cells=" + std::to_string(ac) + " / #size-cells=" +
                std::to_string(sc) + " outside the supported 1..2 range";
    out.push_back(std::move(f));
    return;
  }
  auto cells = reg->as_cells();
  if (!cells) return;  // non-cell reg: schema layer reports the type error

  // Per-cell width rule: every cell must fit 32 bits.
  for (uint64_t c : *cells) {
    if (c > UINT32_MAX) {
      Finding f;
      f.kind = FindingKind::kRegWidthViolation;
      f.subject = path;
      f.property = "reg";
      f.delta = !reg->provenance.empty() ? reg->provenance : node.provenance();
      f.location = reg->location.valid() ? reg->location : node.location();
      f.message = "cell value " + support::hex(c) + " exceeds 32 bits";
      out.push_back(std::move(f));
      return;
    }
  }

  uint32_t stride = ac + sc;
  size_t full_entries = cells->size() / stride;
  for (size_t e = 0; e < full_entries; ++e) {
    MemRegion r;
    r.path = path;
    r.entry_index = e;
    r.base = combine_cells(*cells, e * stride, ac);
    r.size = combine_cells(*cells, e * stride + ac, sc);
    r.local_base = r.base;
    r.location = reg->location.valid() ? reg->location : node.location();
    // Blame resolution: the delta that last wrote reg; else the delta that
    // produced the node; else the delta that changed the governing cell
    // widths (the d3-truncation case — reg is untouched core content but the
    // re-interpretation is the delta's doing).
    r.provenance = !reg->provenance.empty()   ? reg->provenance
                   : !node.provenance().empty() ? node.provenance()
                                                : ctx.cells_provenance(node);
    r.region_class = classify(node);
    // Translate through the bus chain into the CPU view.
    if (r.size > 0) {
      auto mapped = ctx.translate(node, r.base, r.size);
      if (!mapped) {
        Finding f;
        f.kind = FindingKind::kRangesViolation;
        f.subject = path;
        f.property = "reg";
        f.delta = r.provenance;
        f.location = r.location;
        f.base_a = r.base;
        f.size_a = r.size;
        f.message = "reg entry " + support::hex(r.base) + "+" +
                    support::hex(r.size) +
                    " is not covered by the parent bus's ranges";
        out.push_back(std::move(f));
        continue;
      }
      r.base = *mapped;
    }
    regions.push_back(std::move(r));
  }
}

}  // namespace

std::string_view to_string(RegionClass c) {
  switch (c) {
    case RegionClass::kMemory: return "memory";
    case RegionClass::kDevice: return "device";
    case RegionClass::kIpc: return "ipc";
  }
  return "unknown";
}

bool overlap_is_fault(RegionClass a, RegionClass b) {
  // Only the ipc/memory combination is a sanctioned overlap.
  if ((a == RegionClass::kIpc && b == RegionClass::kMemory) ||
      (a == RegionClass::kMemory && b == RegionClass::kIpc)) {
    return false;
  }
  return true;
}

uint64_t mask_address(uint64_t value, uint32_t width) {
  return width >= 64 ? value : (value & ((1ull << width) - 1));
}

bool region_wraps(uint64_t base_m, uint64_t size_m, uint32_t width) {
  if (size_m == 0) return false;
  if (width >= 64) return base_m > UINT64_MAX - size_m;
  return base_m + size_m >= (1ull << width);
}

Finding zero_size_finding(const MemRegion& r) {
  Finding f;
  f.kind = FindingKind::kZeroSizeRegion;
  f.severity = FindingSeverity::kWarning;
  f.subject = r.path;
  f.property = "reg";
  f.delta = r.provenance;
  f.location = r.location;
  f.base_a = r.base;
  f.message = "region at " + support::hex(r.base) + " has size 0";
  return f;
}

Finding wrap_finding(const MemRegion& r, uint32_t width) {
  Finding f;
  f.kind = FindingKind::kSizeOverflow;
  f.subject = r.path;
  f.property = "reg";
  f.delta = r.provenance;
  f.location = r.location;
  f.base_a = r.base;
  f.size_a = r.size;
  f.message = "region " + support::hex(r.base) + "+" + support::hex(r.size) +
              " wraps around the " + std::to_string(width) +
              "-bit address space";
  return f;
}

Finding overlap_finding(const MemRegion& a, const MemRegion& b,
                        uint64_t witness) {
  Finding f;
  f.kind = FindingKind::kAddressOverlap;
  f.subject = a.path + "[" + std::to_string(a.entry_index) + "]";
  f.other_subject = b.path + "[" + std::to_string(b.entry_index) + "]";
  // Blame the most recent delta involved (b's provenance wins when both
  // have one — later deltas modify earlier state).
  f.delta = !b.provenance.empty() ? b.provenance : a.provenance;
  f.location = a.location;
  f.base_a = a.base;
  f.size_a = a.size;
  f.base_b = b.base;
  f.size_b = b.size;
  f.witness = witness;
  f.message = "regions " + support::hex(a.base) + "+" + support::hex(a.size) +
              " and " + support::hex(b.base) + "+" + support::hex(b.size) +
              " overlap (witness address " + support::hex(witness) + ")";
  return f;
}

Finding interrupt_collision_finding(const IrqClaim& a, const IrqClaim& b) {
  Finding f;
  f.kind = FindingKind::kInterruptCollision;
  f.subject = b.path;
  f.property = "interrupts";
  f.other_subject = a.path;
  f.delta = !b.provenance.empty() ? b.provenance : a.provenance;
  f.location = b.location;
  f.base_a = b.tuple.empty() ? 0 : b.tuple[0];
  f.message = "interrupt line " + std::to_string(f.base_a) +
              " already claimed by " + a.path;
  return f;
}

Finding clock_collision_finding(const ClockClaim& a, const ClockClaim& b) {
  Finding f;
  f.kind = FindingKind::kClockCollision;
  f.subject = b.path;
  f.property = "assigned-clocks";
  f.other_subject = a.path;
  f.delta = !b.provenance.empty() ? b.provenance : a.provenance;
  f.location = b.location;
  f.base_a = b.tuple.empty() ? 0 : b.tuple[0];
  f.message = "clock " + std::to_string(f.base_a) +
              " of provider phandle " + std::to_string(b.provider_phandle) +
              " already assigned by " + a.path;
  return f;
}

std::vector<MemRegion> extract_regions(const dts::Tree& tree, Findings& out) {
  crossref::AnalysisContext ctx(tree);
  return extract_regions(ctx, out);
}

std::vector<MemRegion> extract_regions(const crossref::AnalysisContext& ctx,
                                       Findings& out) {
  // Cell widths resolve like Linux's of_n_addr_cells: the nearest ancestor
  // declaring #address-cells / #size-cells wins (spec defaults only when no
  // ancestor declares them). A pure spec-default reading would mis-parse the
  // running example's veth nodes, whose container inherits the root's 32-bit
  // addressing installed by delta d3. The context pre-computes exactly that
  // environment (plus the ranges translation), shared with the cross-
  // reference rules.
  std::vector<MemRegion> regions;
  for (const auto& [path, node] : ctx.nodes()) {
    if (path == "/") continue;
    extract_node_regions(ctx, *node, path, regions, out);
  }
  return regions;
}

std::vector<IrqClaim> collect_interrupt_claims(const dts::Tree& tree) {
  // Pass 1: phandle -> #interrupt-cells, to know each claim's tuple stride.
  std::unordered_map<uint32_t, uint32_t> interrupt_cells;
  tree.visit([&](const std::string&, const dts::Node& node) {
    const dts::Property* ph = node.find_property("phandle");
    if (ph == nullptr) return;
    auto phv = ph->as_u32();
    if (!phv) return;
    uint32_t ic = 1;
    if (const dts::Property* icp = node.find_property("#interrupt-cells")) {
      ic = icp->as_u32().value_or(1);
    }
    interrupt_cells[*phv] = ic == 0 ? 1 : ic;
  });

  // Pass 2: walk with interrupt-parent inheritance (a node without its own
  // interrupt-parent uses the nearest ancestor's, per the DT spec).
  std::vector<IrqClaim> claims;
  std::function<void(const dts::Node&, const std::string&, uint32_t)> walk =
      [&](const dts::Node& node, const std::string& path, uint32_t parent) {
        if (const dts::Property* ip = node.find_property("interrupt-parent")) {
          parent = ip->as_u32().value_or(0);
        }
        const dts::Property* irq = node.find_property("interrupts");
        if (irq != nullptr) {
          auto cells = irq->as_cells();
          if (cells && !cells->empty()) {
            size_t stride = 1;
            auto it = interrupt_cells.find(parent);
            if (it != interrupt_cells.end()) stride = it->second;
            for (size_t off = 0, e = 0; off < cells->size();
                 off += stride, ++e) {
              IrqClaim claim;
              claim.path = path;
              claim.provenance = !irq->provenance.empty() ? irq->provenance
                                                          : node.provenance();
              claim.location =
                  irq->location.valid() ? irq->location : node.location();
              claim.parent_phandle = parent;
              claim.entry_index = e;
              const size_t n = std::min(stride, cells->size() - off);
              claim.tuple.reserve(n);
              for (size_t k = 0; k < n; ++k) {
                claim.tuple.push_back((*cells)[off + k] & 0xffffffffull);
              }
              claims.push_back(std::move(claim));
            }
          }
        }
        for (const auto& child : node.children()) {
          const std::string child_path = path == "/"
                                             ? "/" + child->name()
                                             : path + "/" + child->name();
          walk(*child, child_path, parent);
        }
      };
  walk(tree.root(), "/", 0);
  return claims;
}

std::vector<ClockClaim> collect_clock_claims(const dts::Tree& tree) {
  // Pass 1: phandle -> #clock-cells. A provider without #clock-cells is a
  // single-clock provider (specifier length 0) per the clock bindings.
  std::unordered_map<uint32_t, uint32_t> clock_cells;
  tree.visit([&](const std::string&, const dts::Node& node) {
    const dts::Property* ph = node.find_property("phandle");
    if (ph == nullptr) return;
    auto phv = ph->as_u32();
    if (!phv) return;
    uint32_t cc = 0;
    if (const dts::Property* ccp = node.find_property("#clock-cells")) {
      cc = ccp->as_u32().value_or(0);
    }
    clock_cells[*phv] = cc;
  });

  // Pass 2: one claim per assigned-clocks entry. The stride is per-entry —
  // one phandle cell plus that provider's #clock-cells — so a property can
  // legally mix providers of different arity. An entry naming an unknown
  // phandle ends the parse of that property: the stride past it is
  // unknowable, and the dangling reference is the cross-reference rules'
  // finding, not ours.
  std::vector<ClockClaim> claims;
  tree.visit([&](const std::string& path, const dts::Node& node) {
    const dts::Property* ac = node.find_property("assigned-clocks");
    if (ac == nullptr) return;
    auto cells = ac->as_cells();
    if (!cells || cells->empty()) return;
    size_t off = 0, e = 0;
    while (off < cells->size()) {
      const uint32_t phandle =
          static_cast<uint32_t>((*cells)[off] & 0xffffffffull);
      auto it = clock_cells.find(phandle);
      if (it == clock_cells.end()) break;
      const size_t cc = it->second;
      ClockClaim claim;
      claim.path = path;
      claim.provenance =
          !ac->provenance.empty() ? ac->provenance : node.provenance();
      claim.location = ac->location.valid() ? ac->location : node.location();
      claim.provider_phandle = phandle;
      claim.entry_index = e;
      const size_t n = std::min(cc, cells->size() - off - 1);
      claim.tuple.reserve(n);
      for (size_t k = 0; k < n; ++k) {
        claim.tuple.push_back((*cells)[off + 1 + k] & 0xffffffffull);
      }
      claims.push_back(std::move(claim));
      off += 1 + cc;
      ++e;
    }
  });
  return claims;
}

OverlapQuery build_overlap_query(smt::Solver& solver, const MemRegion& a,
                                 const MemRegion& b, uint32_t width,
                                 const std::string& ns) {
  auto& fa = solver.formulas();
  auto& bv = solver.bitvectors();
  OverlapQuery q;
  q.x = bv.bv_var(ns + ".x", width);
  auto in_range = [&](const MemRegion& r) {
    auto base_t = bv.bv_const(r.base, width);
    auto end_t = bv.bv_add(base_t, bv.bv_const(r.size, width));
    // base <= x < base + size; the wrap case is reported separately, and
    // for wrapped regions the conjunction below under-approximates.
    return fa.mk_and(bv.uge(q.x, base_t), bv.ult(q.x, end_t));
  };
  q.formulas.push_back(in_range(a));
  q.formulas.push_back(in_range(b));
  // Witness pin (see header): the larger masked base is in the intersection
  // iff the intersection is non-empty, so this keeps the query
  // equisatisfiable while fixing the model value every backend reports.
  const uint64_t pin =
      std::max(mask_address(a.base, width), mask_address(b.base, width));
  q.formulas.push_back(bv.eq(q.x, bv.bv_const(pin, width)));
  return q;
}

SemanticChecker::SemanticChecker(smt::Backend backend, SemanticOptions options)
    : options_(options),
      solver_(backend),
      planner_(solver_, options.plan ? options.cache_dir : std::string()) {}

void SemanticChecker::arm_deadline() {
  deadline_ = options_.solver_timeout_ms > 0
                  ? support::Deadline::after_ms(options_.solver_timeout_ms)
                  : support::Deadline();
  solver_.set_deadline(deadline_);
  timeout_reported_ = false;
  skipped_queries_ = 0;
}

bool SemanticChecker::query_timed_out(smt::CheckResult r,
                                      const std::string& where,
                                      Findings& out) {
  if (r != smt::CheckResult::kUnknown) return false;
  ++skipped_queries_;
  if (!timeout_reported_) {
    timeout_reported_ = true;
    Finding f;
    f.kind = FindingKind::kSolverTimeout;
    f.subject = where;
    f.message =
        options_.solver_timeout_ms > 0
            ? "solver query exceeded the " +
                  std::to_string(options_.solver_timeout_ms) +
                  " ms budget; this and the remaining semantic checks were "
                  "not decided"
            : "solver returned unknown; this semantic check was not decided";
    out.push_back(std::move(f));
  }
  return true;
}

Findings SemanticChecker::check(const dts::Tree& tree) {
  Findings out;
  arm_deadline();
  // A requested-but-unusable cache degrades to a cold run, which is sound —
  // but the user asked for persistence, so say once why they are not
  // getting it (checked at open: file in the way, unwritable directory).
  if (!cache_error_reported_ && !planner_.cache_error().empty()) {
    cache_error_reported_ = true;
    Finding f;
    f.kind = FindingKind::kCacheUnavailable;
    f.severity = FindingSeverity::kWarning;
    f.subject = options_.cache_dir;
    f.message = "query cache disabled: " + planner_.cache_error() +
                "; semantic checks ran without persistent caching";
    out.push_back(std::move(f));
  }
  std::vector<MemRegion> regions = extract_regions(tree, out);
  Findings overlap = check_regions_impl(regions);
  out.insert(out.end(), overlap.begin(), overlap.end());

  if (options_.check_interrupts) {
    Findings irq = check_interrupts(tree);
    out.insert(out.end(), irq.begin(), irq.end());
  }
  if (options_.check_clocks) {
    Findings clk = check_clocks(tree);
    out.insert(out.end(), clk.begin(), clk.end());
  }
  return out;
}

Findings SemanticChecker::check_regions(const std::vector<MemRegion>& regions) {
  arm_deadline();
  return check_regions_impl(regions);
}

OverlapQuery SemanticChecker::next_overlap_query(const MemRegion& a,
                                                 const MemRegion& b) {
  const std::string ns = "ov" + std::to_string(fresh_counter_++);
  return build_overlap_query(solver_, a, b, options_.address_bits, ns);
}

// Interrupt uniqueness through the solver (the paper's conclusions name
// interrupts alongside memory addresses as bit-vector-validated): two claims
// under the same interrupt parent collide iff their full specifier tuples
// are equal — cell by cell, tuple_a[k] == tuple_b[k] satisfiable with each
// cell fixed to its instance value. Structurally this is equality, but
// routing it through the solver keeps every semantic rule in one constraint
// store (the paper's extensibility argument, §VI) and allows symbolic lines
// later. In planned mode, a hash bucket on (parent, tuple) prefilters the
// pairs: only claims sharing a bucket can collide, so every other pair is
// pruned without a query, and the surviving queries go through the planner
// (batched + cached).
Findings SemanticChecker::check_interrupts(const dts::Tree& tree) {
  Findings out;
  auto& bv = solver_.bitvectors();
  std::vector<IrqClaim> claims = collect_interrupt_claims(tree);

  // Solver terms per claim, created on first use (terms are a solver-side
  // concern; the claims themselves stay plain data shared with src/lift).
  std::vector<std::vector<logic::BvTerm>> terms(claims.size());
  auto ensure_terms = [&](size_t i) {
    if (!terms[i].empty() || claims[i].tuple.empty()) return;
    const std::string ns = "irq" + std::to_string(fresh_counter_++);
    terms[i].reserve(claims[i].tuple.size());
    for (size_t k = 0; k < claims[i].tuple.size(); ++k) {
      terms[i].push_back(
          bv.bv_var(ns + "." + claims[i].path + "." + std::to_string(k), 32));
    }
  };
  auto comparable = [](const IrqClaim& a, const IrqClaim& b) {
    return a.parent_phandle == b.parent_phandle &&
           a.tuple.size() == b.tuple.size();
  };

  if (!options_.plan) {
    // Exhaustive: fix every claim's cells globally, then one query per
    // comparable pair.
    for (size_t i = 0; i < claims.size(); ++i) {
      ensure_terms(i);
      for (size_t k = 0; k < claims[i].tuple.size(); ++k) {
        solver_.add(bv.eq(terms[i][k], bv.bv_const(claims[i].tuple[k], 32)));
      }
    }
    for (size_t i = 0; i < claims.size(); ++i) {
      for (size_t j = i + 1; j < claims.size(); ++j) {
        const IrqClaim& a = claims[i];
        const IrqClaim& b = claims[j];
        if (!comparable(a, b)) continue;
        std::vector<logic::Formula> same;
        same.reserve(a.tuple.size());
        for (size_t k = 0; k < a.tuple.size(); ++k) {
          same.push_back(bv.eq(terms[i][k], terms[j][k]));
        }
        smt::CheckResult irq_r = solver_.check_assuming(same);
        if (query_timed_out(irq_r,
                            "interrupt check of " + a.path + " vs " + b.path,
                            out)) {
          return out;
        }
        if (irq_r == smt::CheckResult::kSat) {
          out.push_back(interrupt_collision_finding(a, b));
        }
      }
    }
    return out;
  }

  // Planned: bucket claims by (parent, tuple). Claims in different buckets
  // cannot collide (concrete unequal tuples), so only intra-bucket pairs
  // reach the solver; the rest of the comparable pairs are pruned. Candidate
  // pairs are processed in the exhaustive loop's (i, j) order so the
  // findings come out byte-identical.
  std::map<std::pair<uint32_t, std::vector<uint64_t>>, std::vector<size_t>>
      buckets;
  std::map<std::pair<uint32_t, size_t>, uint64_t> comparable_group_sizes;
  for (size_t i = 0; i < claims.size(); ++i) {
    buckets[{claims[i].parent_phandle, claims[i].tuple}].push_back(i);
    ++comparable_group_sizes[{claims[i].parent_phandle,
                              claims[i].tuple.size()}];
  }
  uint64_t comparable_pairs = 0;
  for (const auto& [key, n] : comparable_group_sizes) {
    comparable_pairs += n * (n - 1) / 2;
  }
  std::vector<std::pair<size_t, size_t>> candidates;
  for (const auto& [key, members] : buckets) {
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        candidates.emplace_back(members[i], members[j]);
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  planner_.note_pruned(comparable_pairs - candidates.size());

  for (const auto& [i, j] : candidates) {
    const IrqClaim& a = claims[i];
    const IrqClaim& b = claims[j];
    ensure_terms(i);
    ensure_terms(j);
    // Self-contained query (cache-portable): the cell fixings ride along
    // instead of being asserted globally.
    std::vector<logic::Formula> fs;
    fs.reserve(a.tuple.size() * 3);
    for (size_t k = 0; k < a.tuple.size(); ++k) {
      fs.push_back(bv.eq(terms[i][k], bv.bv_const(a.tuple[k], 32)));
      fs.push_back(bv.eq(terms[j][k], bv.bv_const(b.tuple[k], 32)));
      fs.push_back(bv.eq(terms[i][k], terms[j][k]));
    }
    smt::QueryPlanner::Outcome o = planner_.check(fs);
    if (query_timed_out(o.result,
                        "interrupt check of " + a.path + " vs " + b.path,
                        out)) {
      return out;
    }
    if (o.result == smt::CheckResult::kSat) {
      out.push_back(interrupt_collision_finding(a, b));
    }
  }
  return out;
}

// Clock-assignment uniqueness, the same query shape generalised from the
// interrupt check (ROADMAP item 4's "generalise to clock providers"): two
// assigned-clocks entries collide iff they name the same provider AND their
// specifier tuples are equal. The provider equality rides along in the
// formulas so every query is self-contained and non-empty even for
// zero-cell providers (two pins of a single-clock provider still collide).
// Planned mode buckets on (provider, tuple) with the exact pruned count,
// exhaustive mode issues every comparable pair — findings byte-identical.
Findings SemanticChecker::check_clocks(const dts::Tree& tree) {
  Findings out;
  auto& bv = solver_.bitvectors();
  std::vector<ClockClaim> claims = collect_clock_claims(tree);

  // One provider term + tuple terms per claim, created on first use.
  std::vector<std::vector<logic::BvTerm>> terms(claims.size());
  auto ensure_terms = [&](size_t i) {
    if (!terms[i].empty()) return;
    const std::string ns = "clk" + std::to_string(fresh_counter_++);
    terms[i].reserve(claims[i].tuple.size() + 1);
    terms[i].push_back(bv.bv_var(ns + "." + claims[i].path + ".ph", 32));
    for (size_t k = 0; k < claims[i].tuple.size(); ++k) {
      terms[i].push_back(
          bv.bv_var(ns + "." + claims[i].path + "." + std::to_string(k), 32));
    }
  };
  auto comparable = [](const ClockClaim& a, const ClockClaim& b) {
    return a.provider_phandle == b.provider_phandle &&
           a.tuple.size() == b.tuple.size();
  };
  auto query_formulas = [&](size_t i, size_t j) {
    const ClockClaim& a = claims[i];
    const ClockClaim& b = claims[j];
    std::vector<logic::Formula> fs;
    fs.reserve((a.tuple.size() + 1) * 3);
    fs.push_back(
        bv.eq(terms[i][0], bv.bv_const(a.provider_phandle, 32)));
    fs.push_back(
        bv.eq(terms[j][0], bv.bv_const(b.provider_phandle, 32)));
    fs.push_back(bv.eq(terms[i][0], terms[j][0]));
    for (size_t k = 0; k < a.tuple.size(); ++k) {
      fs.push_back(bv.eq(terms[i][k + 1], bv.bv_const(a.tuple[k], 32)));
      fs.push_back(bv.eq(terms[j][k + 1], bv.bv_const(b.tuple[k], 32)));
      fs.push_back(bv.eq(terms[i][k + 1], terms[j][k + 1]));
    }
    return fs;
  };

  if (!options_.plan) {
    for (size_t i = 0; i < claims.size(); ++i) {
      for (size_t j = i + 1; j < claims.size(); ++j) {
        const ClockClaim& a = claims[i];
        const ClockClaim& b = claims[j];
        if (!comparable(a, b)) continue;
        ensure_terms(i);
        ensure_terms(j);
        smt::CheckResult clk_r = solver_.check_assuming(query_formulas(i, j));
        if (query_timed_out(clk_r,
                            "clock check of " + a.path + " vs " + b.path,
                            out)) {
          return out;
        }
        if (clk_r == smt::CheckResult::kSat) {
          out.push_back(clock_collision_finding(a, b));
        }
      }
    }
    return out;
  }

  std::map<std::pair<uint32_t, std::vector<uint64_t>>, std::vector<size_t>>
      buckets;
  std::map<std::pair<uint32_t, size_t>, uint64_t> comparable_group_sizes;
  for (size_t i = 0; i < claims.size(); ++i) {
    buckets[{claims[i].provider_phandle, claims[i].tuple}].push_back(i);
    ++comparable_group_sizes[{claims[i].provider_phandle,
                              claims[i].tuple.size()}];
  }
  uint64_t comparable_pairs = 0;
  for (const auto& [key, n] : comparable_group_sizes) {
    comparable_pairs += n * (n - 1) / 2;
  }
  std::vector<std::pair<size_t, size_t>> candidates;
  for (const auto& [key, members] : buckets) {
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        candidates.emplace_back(members[i], members[j]);
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  planner_.note_pruned(comparable_pairs - candidates.size());

  for (const auto& [i, j] : candidates) {
    const ClockClaim& a = claims[i];
    const ClockClaim& b = claims[j];
    ensure_terms(i);
    ensure_terms(j);
    smt::QueryPlanner::Outcome o = planner_.check(query_formulas(i, j));
    if (query_timed_out(o.result,
                        "clock check of " + a.path + " vs " + b.path, out)) {
      return out;
    }
    if (o.result == smt::CheckResult::kSat) {
      out.push_back(clock_collision_finding(a, b));
    }
  }
  return out;
}

Findings SemanticChecker::check_regions_impl(
    const std::vector<MemRegion>& regions) {
  return options_.plan ? check_regions_planned(regions)
                       : check_regions_exhaustive(regions);
}

Findings SemanticChecker::check_regions_exhaustive(
    const std::vector<MemRegion>& regions) {
  Findings out;
  auto& bv = solver_.bitvectors();
  uint32_t width = options_.address_bits;

  for (const MemRegion& r : regions) {
    if (r.size == 0) {
      if (options_.warn_zero_size) out.push_back(zero_size_finding(r));
      continue;
    }
    // Wrap-around: base + size must not overflow the address space.
    auto base_t = bv.bv_const(r.base, width);
    auto size_t_ = bv.bv_const(r.size, width);
    solver_.push();
    solver_.add(bv.uadd_overflow(base_t, size_t_));
    smt::CheckResult wrap_r = solver_.check();
    solver_.pop();
    if (query_timed_out(wrap_r, "wrap-around check of " + r.path, out)) {
      return out;
    }
    if (wrap_r == smt::CheckResult::kSat) {
      out.push_back(wrap_finding(r, width));
    }
  }

  // Pairwise disjointness via formula (7): find a witness address inside
  // both ranges. Skipped pairs: a region against itself.
  for (size_t i = 0; i < regions.size(); ++i) {
    for (size_t j = i + 1; j < regions.size(); ++j) {
      const MemRegion& a = regions[i];
      const MemRegion& b = regions[j];
      if (a.size == 0 || b.size == 0) continue;
      if (!overlap_is_fault(a.region_class, b.region_class)) continue;
      OverlapQuery q = next_overlap_query(a, b);
      solver_.push();
      for (logic::Formula f : q.formulas) solver_.add(f);
      smt::CheckResult overlap_r = solver_.check();
      bool overlaps = overlap_r == smt::CheckResult::kSat;
      uint64_t witness = overlaps ? solver_.model_bv(q.x) : 0;
      solver_.pop();
      if (query_timed_out(overlap_r,
                          "overlap check of " + a.path + " vs " + b.path,
                          out)) {
        return out;
      }
      if (overlaps) out.push_back(overlap_finding(a, b, witness));
    }
  }
  return out;
}

Findings SemanticChecker::check_regions_planned(
    const std::vector<MemRegion>& regions) {
  Findings out;
  const uint32_t width = options_.address_bits;

  // Shadow copy in the solver's w-bit semantics: bases and sizes masked,
  // wrapped regions (whose in-range predicate is empty — see region_wraps)
  // zeroed out so the sweep-line prefilter agrees with the encoding.
  std::vector<MemRegion> shadow = regions;
  for (MemRegion& s : shadow) {
    s.base = mask_address(s.base, width);
    s.size = mask_address(s.size, width);
  }

  for (size_t i = 0; i < regions.size(); ++i) {
    const MemRegion& r = regions[i];
    if (r.size == 0) {
      if (options_.warn_zero_size) out.push_back(zero_size_finding(r));
      continue;
    }
    // The wrap check is concrete arithmetic: decided here, one solver query
    // pruned relative to the exhaustive path.
    planner_.note_pruned(1);
    if (region_wraps(shadow[i].base, shadow[i].size, width)) {
      out.push_back(wrap_finding(r, width));
      shadow[i].size = 0;
    }
  }

  // Queries the exhaustive path would issue: every ordered pair of nonzero
  // regions whose class combination is a fault. Counted by class tally so
  // the pruning counter is exact without an O(n^2) walk.
  uint64_t nonzero = 0, ipc = 0, memory = 0;
  for (const MemRegion& r : regions) {
    if (r.size == 0) continue;
    ++nonzero;
    if (r.region_class == RegionClass::kIpc) ++ipc;
    if (r.region_class == RegionClass::kMemory) ++memory;
  }
  const uint64_t queryable = nonzero * (nonzero - 1) / 2 - ipc * memory;

  // Sound prefilter: the sweep-line reports every pair whose masked
  // intervals intersect, which is exactly the set of pairs the solver can
  // find satisfiable — everything else is pruned. Candidates arrive sorted
  // (first, second) lexicographically, the exhaustive loop's order.
  std::vector<OverlapPair> candidates = find_overlaps_sweepline(shadow);
  planner_.note_pruned(queryable - candidates.size());

  for (const OverlapPair& pair : candidates) {
    const MemRegion& a = regions[pair.first];
    const MemRegion& b = regions[pair.second];
    OverlapQuery q = next_overlap_query(a, b);
    smt::QueryPlanner::Outcome o = planner_.check(q.formulas, q.x);
    if (query_timed_out(o.result,
                        "overlap check of " + a.path + " vs " + b.path,
                        out)) {
      return out;
    }
    if (o.result == smt::CheckResult::kSat) {
      out.push_back(overlap_finding(a, b, o.witness));
    }
  }
  return out;
}

}  // namespace llhsc::checkers

#include "checkers/semantic.hpp"

#include "checkers/crossref/context.hpp"

#include <functional>
#include <map>
#include <memory>

#include "support/strings.hpp"

namespace llhsc::checkers {

namespace {

RegionClass classify(const dts::Node& node) {
  if (const dts::Property* dt = node.find_property("device_type")) {
    if (dt->as_string() == std::optional<std::string>("memory")) {
      return RegionClass::kMemory;
    }
  }
  if (const dts::Property* c = node.find_property("compatible")) {
    auto one = c->as_string();
    if (one == std::optional<std::string>("veth")) return RegionClass::kIpc;
  }
  if (node.base_name().rfind("veth", 0) == 0) return RegionClass::kIpc;
  return RegionClass::kDevice;
}

uint64_t combine_cells(const std::vector<uint64_t>& cells, size_t offset,
                       uint32_t count) {
  uint64_t value = 0;
  for (uint32_t i = 0; i < count; ++i) {
    value = (value << 32) | (cells[offset + i] & 0xffffffffull);
  }
  return value;
}

/// Extracts the regions of one node's reg through the shared context: the
/// governing cells come from ctx.reg_cells (nearest-ancestor resolution) and
/// the CPU-view base from ctx.translate (composition of every ancestor
/// bus's `ranges`).
void extract_node_regions(const crossref::AnalysisContext& ctx,
                          const dts::Node& node, const std::string& path,
                          std::vector<MemRegion>& regions, Findings& out) {
  const dts::Property* reg = node.find_property("reg");
  if (reg == nullptr) return;
  auto [ac, sc] = ctx.reg_cells(node);
  if (sc == 0) return;  // reg is an id (cpu cores), not an address range
  if (ac == 0 || ac > 2 || sc > 2) {
    Finding f;
    f.kind = FindingKind::kRegWidthViolation;
    f.subject = path;
    f.property = "reg";
    f.delta = node.provenance();
    f.location = reg->location.valid() ? reg->location : node.location();
    f.message = "#address-cells=" + std::to_string(ac) + " / #size-cells=" +
                std::to_string(sc) + " outside the supported 1..2 range";
    out.push_back(std::move(f));
    return;
  }
  auto cells = reg->as_cells();
  if (!cells) return;  // non-cell reg: schema layer reports the type error

  // Per-cell width rule: every cell must fit 32 bits.
  for (uint64_t c : *cells) {
    if (c > UINT32_MAX) {
      Finding f;
      f.kind = FindingKind::kRegWidthViolation;
      f.subject = path;
      f.property = "reg";
      f.delta = !reg->provenance.empty() ? reg->provenance : node.provenance();
      f.location = reg->location.valid() ? reg->location : node.location();
      f.message = "cell value " + support::hex(c) + " exceeds 32 bits";
      out.push_back(std::move(f));
      return;
    }
  }

  uint32_t stride = ac + sc;
  size_t full_entries = cells->size() / stride;
  for (size_t e = 0; e < full_entries; ++e) {
    MemRegion r;
    r.path = path;
    r.entry_index = e;
    r.base = combine_cells(*cells, e * stride, ac);
    r.size = combine_cells(*cells, e * stride + ac, sc);
    r.local_base = r.base;
    r.location = reg->location.valid() ? reg->location : node.location();
    // Blame resolution: the delta that last wrote reg; else the delta that
    // produced the node; else the delta that changed the governing cell
    // widths (the d3-truncation case — reg is untouched core content but the
    // re-interpretation is the delta's doing).
    r.provenance = !reg->provenance.empty()   ? reg->provenance
                   : !node.provenance().empty() ? node.provenance()
                                                : ctx.cells_provenance(node);
    r.region_class = classify(node);
    // Translate through the bus chain into the CPU view.
    if (r.size > 0) {
      auto mapped = ctx.translate(node, r.base, r.size);
      if (!mapped) {
        Finding f;
        f.kind = FindingKind::kRangesViolation;
        f.subject = path;
        f.property = "reg";
        f.delta = r.provenance;
        f.location = r.location;
        f.base_a = r.base;
        f.size_a = r.size;
        f.message = "reg entry " + support::hex(r.base) + "+" +
                    support::hex(r.size) +
                    " is not covered by the parent bus's ranges";
        out.push_back(std::move(f));
        continue;
      }
      r.base = *mapped;
    }
    regions.push_back(std::move(r));
  }
}

}  // namespace

std::string_view to_string(RegionClass c) {
  switch (c) {
    case RegionClass::kMemory: return "memory";
    case RegionClass::kDevice: return "device";
    case RegionClass::kIpc: return "ipc";
  }
  return "unknown";
}

bool overlap_is_fault(RegionClass a, RegionClass b) {
  // Only the ipc/memory combination is a sanctioned overlap.
  if ((a == RegionClass::kIpc && b == RegionClass::kMemory) ||
      (a == RegionClass::kMemory && b == RegionClass::kIpc)) {
    return false;
  }
  return true;
}

std::vector<MemRegion> extract_regions(const dts::Tree& tree, Findings& out) {
  crossref::AnalysisContext ctx(tree);
  return extract_regions(ctx, out);
}

std::vector<MemRegion> extract_regions(const crossref::AnalysisContext& ctx,
                                       Findings& out) {
  // Cell widths resolve like Linux's of_n_addr_cells: the nearest ancestor
  // declaring #address-cells / #size-cells wins (spec defaults only when no
  // ancestor declares them). A pure spec-default reading would mis-parse the
  // running example's veth nodes, whose container inherits the root's 32-bit
  // addressing installed by delta d3. The context pre-computes exactly that
  // environment (plus the ranges translation), shared with the cross-
  // reference rules.
  std::vector<MemRegion> regions;
  for (const auto& [path, node] : ctx.nodes()) {
    if (path == "/") continue;
    extract_node_regions(ctx, *node, path, regions, out);
  }
  return regions;
}

SemanticChecker::SemanticChecker(smt::Backend backend, SemanticOptions options)
    : options_(options), solver_(backend) {}

void SemanticChecker::arm_deadline() {
  deadline_ = options_.solver_timeout_ms > 0
                  ? support::Deadline::after_ms(options_.solver_timeout_ms)
                  : support::Deadline();
  solver_.set_deadline(deadline_);
  timeout_reported_ = false;
  skipped_queries_ = 0;
}

bool SemanticChecker::query_timed_out(smt::CheckResult r,
                                      const std::string& where,
                                      Findings& out) {
  if (r != smt::CheckResult::kUnknown) return false;
  ++skipped_queries_;
  if (!timeout_reported_) {
    timeout_reported_ = true;
    Finding f;
    f.kind = FindingKind::kSolverTimeout;
    f.subject = where;
    f.message =
        options_.solver_timeout_ms > 0
            ? "solver query exceeded the " +
                  std::to_string(options_.solver_timeout_ms) +
                  " ms budget; this and the remaining semantic checks were "
                  "not decided"
            : "solver returned unknown; this semantic check was not decided";
    out.push_back(std::move(f));
  }
  return true;
}

Findings SemanticChecker::check(const dts::Tree& tree) {
  Findings out;
  arm_deadline();
  std::vector<MemRegion> regions = extract_regions(tree, out);
  Findings overlap = check_regions_impl(regions);
  out.insert(out.end(), overlap.begin(), overlap.end());

  if (options_.check_interrupts) {
    Findings irq = check_interrupts(tree);
    out.insert(out.end(), irq.begin(), irq.end());
  }
  return out;
}

Findings SemanticChecker::check_regions(const std::vector<MemRegion>& regions) {
  arm_deadline();
  return check_regions_impl(regions);
}

// Interrupt uniqueness through the solver (the paper's conclusions name
// interrupts alongside memory addresses as bit-vector-validated): two device
// nodes sharing an interrupt parent collide iff  line_a == line_b  is
// satisfiable, where the lines are 32-bit vectors fixed to the instance
// values. Structurally this is equality, but routing it through the solver
// keeps every semantic rule in one constraint store (the paper's
// extensibility argument, §VI) and allows symbolic lines later.
Findings SemanticChecker::check_interrupts(const dts::Tree& tree) {
  Findings out;
  auto& bv = solver_.bitvectors();
  struct IrqClaim {
    std::string path;
    std::string provenance;
    support::SourceLocation location;
    uint32_t parent_phandle;
    uint64_t line;
    logic::BvTerm term;
  };
  std::vector<IrqClaim> claims;
  tree.visit([&](const std::string& path, const dts::Node& node) {
    const dts::Property* irq = node.find_property("interrupts");
    if (irq == nullptr) return;
    auto cells = irq->as_cells();
    if (!cells || cells->empty()) return;
    IrqClaim claim;
    claim.path = path;
    claim.provenance =
        !irq->provenance.empty() ? irq->provenance : node.provenance();
    claim.location =
        irq->location.valid() ? irq->location : node.location();
    claim.parent_phandle = 0;
    if (const dts::Property* ip = node.find_property("interrupt-parent")) {
      claim.parent_phandle = ip->as_u32().value_or(0);
    }
    claim.line = (*cells)[0];
    const std::string ns = "irq" + std::to_string(fresh_counter_++);
    claim.term = bv.bv_var(ns + "." + path, 32);
    solver_.add(bv.eq(claim.term, bv.bv_const(claim.line & 0xffffffff, 32)));
    claims.push_back(std::move(claim));
  });
  for (size_t i = 0; i < claims.size(); ++i) {
    for (size_t j = i + 1; j < claims.size(); ++j) {
      const IrqClaim& a = claims[i];
      const IrqClaim& b = claims[j];
      if (a.parent_phandle != b.parent_phandle) continue;
      std::vector<logic::Formula> same{bv.eq(a.term, b.term)};
      smt::CheckResult irq_r = solver_.check_assuming(same);
      if (query_timed_out(irq_r,
                          "interrupt check of " + a.path + " vs " + b.path,
                          out)) {
        return out;
      }
      if (irq_r == smt::CheckResult::kSat) {
        Finding f;
        f.kind = FindingKind::kInterruptCollision;
        f.subject = b.path;
        f.property = "interrupts";
        f.other_subject = a.path;
        f.delta = !b.provenance.empty() ? b.provenance : a.provenance;
        f.location = b.location;
        f.base_a = b.line;
        f.message = "interrupt line " + std::to_string(b.line) +
                    " already claimed by " + a.path;
        out.push_back(std::move(f));
      }
    }
  }
  return out;
}

Findings SemanticChecker::check_regions_impl(
    const std::vector<MemRegion>& regions) {
  Findings out;
  auto& fa = solver_.formulas();
  auto& bv = solver_.bitvectors();
  uint32_t width = options_.address_bits;

  for (const MemRegion& r : regions) {
    if (r.size == 0) {
      if (options_.warn_zero_size) {
        Finding f;
        f.kind = FindingKind::kZeroSizeRegion;
        f.severity = FindingSeverity::kWarning;
        f.subject = r.path;
        f.property = "reg";
        f.delta = r.provenance;
        f.location = r.location;
        f.base_a = r.base;
        f.message = "region at " + support::hex(r.base) + " has size 0";
        out.push_back(std::move(f));
      }
      continue;
    }
    // Wrap-around: base + size must not overflow the address space.
    auto base_t = bv.bv_const(r.base, width);
    auto size_t_ = bv.bv_const(r.size, width);
    solver_.push();
    solver_.add(bv.uadd_overflow(base_t, size_t_));
    smt::CheckResult wrap_r = solver_.check();
    solver_.pop();
    if (query_timed_out(wrap_r, "wrap-around check of " + r.path, out)) {
      return out;
    }
    bool wraps = wrap_r == smt::CheckResult::kSat;
    if (wraps) {
      Finding f;
      f.kind = FindingKind::kSizeOverflow;
      f.subject = r.path;
      f.property = "reg";
      f.delta = r.provenance;
      f.location = r.location;
      f.base_a = r.base;
      f.size_a = r.size;
      f.message = "region " + support::hex(r.base) + "+" +
                  support::hex(r.size) + " wraps around the " +
                  std::to_string(width) + "-bit address space";
      out.push_back(std::move(f));
    }
  }

  // Pairwise disjointness via formula (7): find a witness address inside
  // both ranges. Skipped pairs: a region against itself.
  for (size_t i = 0; i < regions.size(); ++i) {
    for (size_t j = i + 1; j < regions.size(); ++j) {
      const MemRegion& a = regions[i];
      const MemRegion& b = regions[j];
      if (a.size == 0 || b.size == 0) continue;
      if (!overlap_is_fault(a.region_class, b.region_class)) continue;
      const std::string ns = "ov" + std::to_string(fresh_counter_++);
      auto x = bv.bv_var(ns + ".x", width);
      auto in_range = [&](const MemRegion& r) {
        auto base_t = bv.bv_const(r.base, width);
        auto end_t = bv.bv_add(base_t, bv.bv_const(r.size, width));
        // base <= x < base + size; the wrap case is reported separately, and
        // for wrapped regions the conjunction below under-approximates.
        return fa.mk_and(bv.uge(x, base_t), bv.ult(x, end_t));
      };
      solver_.push();
      solver_.add(in_range(a));
      solver_.add(in_range(b));
      smt::CheckResult overlap_r = solver_.check();
      bool overlaps = overlap_r == smt::CheckResult::kSat;
      uint64_t witness = overlaps ? solver_.model_bv(x) : 0;
      solver_.pop();
      if (query_timed_out(overlap_r,
                          "overlap check of " + a.path + " vs " + b.path,
                          out)) {
        return out;
      }
      if (overlaps) {
        Finding f;
        f.kind = FindingKind::kAddressOverlap;
        f.subject = a.path + "[" + std::to_string(a.entry_index) + "]";
        f.other_subject = b.path + "[" + std::to_string(b.entry_index) + "]";
        // Blame the most recent delta involved (b's provenance wins when both
        // have one — later deltas modify earlier state).
        f.delta = !b.provenance.empty() ? b.provenance : a.provenance;
        f.location = a.location;
        f.base_a = a.base;
        f.size_a = a.size;
        f.base_b = b.base;
        f.size_b = b.size;
        f.witness = witness;
        f.message = "regions " + support::hex(a.base) + "+" +
                    support::hex(a.size) + " and " + support::hex(b.base) +
                    "+" + support::hex(b.size) +
                    " overlap (witness address " + support::hex(witness) + ")";
        out.push_back(std::move(f));
      }
    }
  }
  return out;
}

}  // namespace llhsc::checkers

// Machine-readable reports: JSON rendering of Findings for editor/tooling
// integration (the cloud-service use case of §V wants structured output).
// Hand-rolled serialisation — no external JSON dependency.
#pragma once

#include <string>

#include "checkers/finding.hpp"

namespace llhsc::checkers {

/// Renders findings as a JSON array of objects:
///   [{"kind": "...", "severity": "error", "subject": "...", "property":
///     "...", "other": "...", "delta": "...", "message": "...",
///     "addresses": {"base_a": ..., ...}, "witness": ...}, ...]
/// Address fields appear only for findings that carry them.
[[nodiscard]] std::string to_json(const Findings& findings);

/// One summary object: {"errors": N, "warnings": M, "findings": [...]}.
[[nodiscard]] std::string report_json(const Findings& findings);

}  // namespace llhsc::checkers

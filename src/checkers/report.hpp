// Machine-readable reports: JSON rendering of Findings for editor/tooling
// integration (the cloud-service use case of §V wants structured output).
// Hand-rolled serialisation — no external JSON dependency.
#pragma once

#include <string>

#include "checkers/finding.hpp"

namespace llhsc::checkers {

/// Renders findings as a JSON array of objects:
///   [{"kind": "...", "severity": "error", "subject": "...", "property":
///     "...", "other": "...", "delta": "...", "message": "...",
///     "addresses": {"base_a": ..., ...}, "witness": ...}, ...]
/// Address fields appear only for findings that carry them.
[[nodiscard]] std::string to_json(const Findings& findings);

/// One summary object: {"errors": N, "warnings": M, "findings": [...]}.
[[nodiscard]] std::string report_json(const Findings& findings);

/// Renders findings as a SARIF 2.1.0 log (one run, tool driver "llhsc").
/// Every distinct rule id becomes a reportingDescriptor — enriched with the
/// cross-reference catalog's summary and default severity when the id is a
/// registered rule. `artifact_uri` names the checked file and is used for
/// findings whose SourceLocation is invalid (synthesized trees).
[[nodiscard]] std::string to_sarif(const Findings& findings,
                                   std::string_view artifact_uri);

}  // namespace llhsc::checkers

// Machine-readable checker results. Checkers emit Findings (data, not text);
// examples and the pipeline render them. `delta` carries provenance so a
// finding on a generated DTS names the delta module that caused it (§III-B).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/diagnostics.hpp"

namespace llhsc::checkers {

enum class FindingKind : uint8_t {
  // Resource allocation (§IV-A)
  kInvalidVmProduct,       // a VM's selection violates the feature model
  kExclusivityViolation,   // same exclusive resource in two VMs
  kInfeasibleAllocation,   // no allocation exists for the requested VM count
  // Syntactic (§IV-B)
  kMissingRequired,        // required property absent
  kConstMismatch,          // const-constrained property has a different value
  kEnumViolation,          // value outside the allowed enum
  kItemCountViolation,     // minItems/maxItems violated
  kRegShapeViolation,      // reg size not a positive multiple of the stride
  kTypeMismatch,           // property value has the wrong shape
  kPatternMismatch,        // string does not match the schema pattern
  kUnknownProperty,        // additionalProperties: false violated
  kChildRuleViolation,     // child count/schema rules violated
  kNoSchema,               // node matched no schema (warning)
  // Semantic (§IV-C)
  kAddressOverlap,         // two regions overlap
  kRegWidthViolation,      // cell value exceeds the configured cell width
  kSizeOverflow,           // base + size wraps around the address space
  kZeroSizeRegion,         // region with size 0 (warning)
  kInterruptCollision,     // two devices claim the same interrupt line
  kClockCollision,         // two devices assign the same clock of a provider
  kSolverTimeout,          // a solver query exceeded its deadline
  kCacheUnavailable,       // --cache-dir unusable; checks ran uncached
  // Lint (dtc-style structural warnings)
  kNameConvention,         // node/property name violates the DT spec charset
  kUnitAddressMismatch,    // unit address disagrees with the first reg entry
  kUnitAddressMissing,     // node has reg but no unit address (or vice versa)
  kDuplicateUnitAddress,   // two siblings share a unit address
  kMissingCells,           // children use reg but parent declares no cells
  kBadStatusValue,         // status outside okay/disabled/reserved/fail*
  kRangesViolation,        // child reg not covered by the bus's ranges
  // Cross-reference engine (rule ids in checkers/crossref/rules.hpp)
  kDanglingPhandle,        // phandle value with no owning node
  kDuplicatePhandle,       // two nodes carry the same phandle value
  kCellsArityViolation,    // specifier length disagrees with provider #*-cells
  kMissingProviderCells,   // referenced provider lacks its #*-cells property
  kInterruptTreeCycle,     // interrupt-parent chain loops
  kOrphanProvider,         // provider node no phandle reference can reach
  // Device-graph dataflow (rule ids in checkers/graph/rules.hpp)
  kProviderCycle,          // clock/reset/... provider dependencies loop
  kDisabledProviderDependency,  // okay consumer depends on disabled provider
  kExclusiveProviderClaim, // two VMs claim the same exclusive provider
  // Family-based (lifted) product-line checking (src/lift)
  kDeriveFailure,          // a class of configurations fails delta derivation
  kEnumerationCapped,      // product enumeration stopped at --max-products
};

[[nodiscard]] std::string_view to_string(FindingKind k);

enum class FindingSeverity : uint8_t { kWarning, kError };

/// One step of a defect path (a cycle member, a hop of a dependency chain).
/// Rendered as SARIF codeFlows/relatedLocations and the JSON "flow" array;
/// the text renderer prints one indented "via" line per step.
struct FlowStep {
  support::SourceLocation location;
  /// Node path of this step.
  std::string subject;
  /// Role of the step in the path ("depends on /soc/clk via clocks").
  std::string note;
};

struct Finding {
  FindingKind kind = FindingKind::kNoSchema;
  FindingSeverity severity = FindingSeverity::kError;
  /// Stable rule id for registry-driven checkers (dtc -W style). Empty for
  /// the fixed-rule checkers; rule_id() falls back to the kind name.
  std::string rule;
  /// Source position of the offending node/property (invalid when the tree
  /// was synthesized programmatically).
  support::SourceLocation location;
  /// Node path (or VM index rendering) the finding is about.
  std::string subject;
  /// Property involved, when applicable.
  std::string property;
  /// Second party for pairwise findings (the other overlapping region).
  std::string other_subject;
  /// Delta provenance ("" = core module).
  std::string delta;
  /// Address payload for semantic findings.
  uint64_t base_a = 0, size_a = 0, base_b = 0, size_b = 0;
  /// Overlap witness address produced by the solver model.
  uint64_t witness = 0;
  /// Human-readable explanation.
  std::string message;
  /// Defect path for whole-graph findings (empty for single-site findings).
  std::vector<FlowStep> flow;

  /// `rule` when set, else the kind name — the id reports key on.
  [[nodiscard]] std::string_view rule_id() const {
    return rule.empty() ? to_string(kind) : std::string_view(rule);
  }

  [[nodiscard]] std::string render() const;
};

using Findings = std::vector<Finding>;

/// Counts findings at error severity.
[[nodiscard]] size_t error_count(const Findings& findings);
/// True when `findings` contains a finding of `kind`.
[[nodiscard]] bool contains(const Findings& findings, FindingKind kind);
/// Renders all findings, one per line.
[[nodiscard]] std::string render(const Findings& findings);
/// Stable sort by (source location, rule id, subject). The pipeline applies
/// this per (VM, stage) chunk before merging so parallel collection renders
/// byte-identically to a serial run.
void sort_by_location(Findings& findings);

}  // namespace llhsc::checkers

// Structural overlap baseline: the comparator a non-SMT tool (dt-schema
// extended with interval arithmetic) could implement. A sweep-line over
// region endpoints finds all overlapping pairs in O(n log n + k). It is
// orders of magnitude faster than the solver path (see
// bench_semantic_overlap) but cannot produce witness addresses, reason about
// symbolic placements, or share a constraint store with the feature-model
// and schema axioms — which is the paper's argument for SMT. The property
// tests keep it verdict-equivalent with SemanticChecker on concrete inputs.
#pragma once

#include <vector>

#include "checkers/semantic.hpp"

namespace llhsc::checkers {

struct OverlapPair {
  size_t first = 0;   // indices into the input region vector
  size_t second = 0;
  friend bool operator==(const OverlapPair&, const OverlapPair&) = default;
};

/// All pairs of regions that overlap and whose class combination is a fault
/// (same rules as the semantic checker). Pairs are reported with
/// first < second, sorted lexicographically.
[[nodiscard]] std::vector<OverlapPair> find_overlaps_sweepline(
    const std::vector<MemRegion>& regions);

/// Findings-shaped adapter so the baseline can slot into the pipeline for
/// A/B comparisons. No witnesses (structural tools cannot produce them).
[[nodiscard]] Findings check_regions_baseline(
    const std::vector<MemRegion>& regions);

}  // namespace llhsc::checkers

// Lint checker: dtc-style structural warnings that need no solver. These
// are the "powerful syntax checker" rules beyond what the DTS grammar
// enforces (paper §I): name conventions from the DT spec charset, unit
// address vs reg consistency (dtc's -Wunit_address_vs_reg and
// -Wunique_unit_address), cell-declaration hygiene, and status values.
// All findings are warnings unless noted.
#pragma once

#include "checkers/finding.hpp"
#include "dts/tree.hpp"

namespace llhsc::checkers {

struct LintOptions {
  bool check_names = true;
  bool check_unit_addresses = true;
  bool check_cells_declarations = true;
  bool check_status_values = true;
  /// /aliases values and /chosen stdout-path must target existing nodes.
  bool check_path_references = true;
};

class LintChecker {
 public:
  explicit LintChecker(LintOptions options = {}) : options_(options) {}

  [[nodiscard]] Findings check(const dts::Tree& tree) const;

 private:
  LintOptions options_;
};

}  // namespace llhsc::checkers

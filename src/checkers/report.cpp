#include "checkers/report.hpp"

#include <map>
#include <sstream>
#include <vector>

#include "checkers/crossref/rules.hpp"

namespace llhsc::checkers {

namespace {

void append_escaped(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void append_finding(std::ostringstream& os, const Finding& f) {
  os << "{\"kind\": ";
  append_escaped(os, to_string(f.kind));
  os << ", \"rule\": ";
  append_escaped(os, f.rule_id());
  os << ", \"severity\": ";
  append_escaped(os, f.severity == FindingSeverity::kError ? "error"
                                                           : "warning");
  os << ", \"subject\": ";
  append_escaped(os, f.subject);
  if (f.location.valid()) {
    os << ", \"location\": {\"file\": ";
    append_escaped(os, f.location.file);
    os << ", \"line\": " << f.location.line
       << ", \"column\": " << f.location.column << "}";
  }
  if (!f.property.empty()) {
    os << ", \"property\": ";
    append_escaped(os, f.property);
  }
  if (!f.other_subject.empty()) {
    os << ", \"other\": ";
    append_escaped(os, f.other_subject);
  }
  if (!f.delta.empty()) {
    os << ", \"delta\": ";
    append_escaped(os, f.delta);
  }
  bool has_addresses = f.base_a != 0 || f.size_a != 0 || f.base_b != 0 ||
                       f.size_b != 0 || f.kind == FindingKind::kAddressOverlap;
  if (has_addresses) {
    os << ", \"addresses\": {\"base_a\": " << f.base_a
       << ", \"size_a\": " << f.size_a << ", \"base_b\": " << f.base_b
       << ", \"size_b\": " << f.size_b << "}";
    if (f.kind == FindingKind::kAddressOverlap) {
      os << ", \"witness\": " << f.witness;
    }
  }
  os << ", \"message\": ";
  append_escaped(os, f.message);
  os << '}';
}

}  // namespace

std::string to_json(const Findings& findings) {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < findings.size(); ++i) {
    if (i > 0) os << ", ";
    append_finding(os, findings[i]);
  }
  os << ']';
  return os.str();
}

std::string report_json(const Findings& findings) {
  std::ostringstream os;
  os << "{\"errors\": " << error_count(findings)
     << ", \"warnings\": " << (findings.size() - error_count(findings))
     << ", \"findings\": " << to_json(findings) << '}';
  return os.str();
}

std::string to_sarif(const Findings& findings, std::string_view artifact_uri) {
  // Rules table: first-seen order over the findings, enriched from the
  // cross-reference catalog when the id is registered there.
  std::vector<std::string> rule_ids;
  std::map<std::string, size_t> rule_index;
  for (const Finding& f : findings) {
    std::string id(f.rule_id());
    if (rule_index.emplace(id, rule_ids.size()).second) {
      rule_ids.push_back(std::move(id));
    }
  }

  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"llhsc\",\n"
     << "          \"informationUri\": \"https://example.org/llhsc\",\n"
     << "          \"rules\": [";
  for (size_t i = 0; i < rule_ids.size(); ++i) {
    const crossref::RuleInfo* info = crossref::find_rule(rule_ids[i]);
    os << (i > 0 ? "," : "") << "\n            {\"id\": ";
    append_escaped(os, rule_ids[i]);
    if (info != nullptr) {
      os << ", \"shortDescription\": {\"text\": ";
      append_escaped(os, info->summary);
      os << "}, \"defaultConfiguration\": {\"level\": ";
      append_escaped(os, info->default_severity == FindingSeverity::kError
                             ? "error"
                             : "warning");
      os << "}";
    }
    os << "}";
  }
  if (!rule_ids.empty()) os << "\n          ";
  os << "]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << (i > 0 ? "," : "") << "\n        {\"ruleId\": ";
    append_escaped(os, f.rule_id());
    os << ", \"ruleIndex\": " << rule_index.at(std::string(f.rule_id()));
    os << ", \"level\": ";
    append_escaped(os, f.severity == FindingSeverity::kError ? "error"
                                                             : "warning");
    os << ", \"message\": {\"text\": ";
    std::string text = f.subject;
    if (!f.property.empty()) text += " (property '" + f.property + "')";
    text += ": " + f.message;
    append_escaped(os, text);
    os << "}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
          "{\"uri\": ";
    append_escaped(os, f.location.valid() ? std::string_view(f.location.file)
                                          : artifact_uri);
    os << "}";
    if (f.location.valid()) {
      os << ", \"region\": {\"startLine\": " << f.location.line;
      if (f.location.column > 0) {
        os << ", \"startColumn\": " << f.location.column;
      }
      os << "}";
    }
    os << "}, \"logicalLocations\": [{\"fullyQualifiedName\": ";
    append_escaped(os, f.subject);
    os << "}]}]}";
  }
  if (!findings.empty()) os << "\n      ";
  os << "]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
  return os.str();
}

}  // namespace llhsc::checkers

#include "checkers/report.hpp"

#include <map>
#include <sstream>
#include <vector>

#include "checkers/crossref/rules.hpp"
#include "support/json.hpp"

namespace llhsc::checkers {

namespace {

void append_escaped(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

using support::Json;

Json finding_json(const Finding& f) {
  Json j = Json::object();
  j.set("kind", Json::string(std::string(to_string(f.kind))));
  j.set("rule", Json::string(std::string(f.rule_id())));
  j.set("severity", Json::string(f.severity == FindingSeverity::kError
                                     ? "error"
                                     : "warning"));
  j.set("subject", Json::string(f.subject));
  if (f.location.valid()) {
    Json loc = Json::object();
    loc.set("file", Json::string(f.location.file.str()));
    loc.set("line", Json::unsigned_integer(f.location.line));
    loc.set("column", Json::unsigned_integer(f.location.column));
    j.set("location", std::move(loc));
  }
  if (!f.property.empty()) j.set("property", Json::string(f.property));
  if (!f.other_subject.empty()) j.set("other", Json::string(f.other_subject));
  if (!f.delta.empty()) j.set("delta", Json::string(f.delta));
  bool has_addresses = f.base_a != 0 || f.size_a != 0 || f.base_b != 0 ||
                       f.size_b != 0 || f.kind == FindingKind::kAddressOverlap;
  if (has_addresses) {
    Json addr = Json::object();
    addr.set("base_a", Json::unsigned_integer(f.base_a));
    addr.set("size_a", Json::unsigned_integer(f.size_a));
    addr.set("base_b", Json::unsigned_integer(f.base_b));
    addr.set("size_b", Json::unsigned_integer(f.size_b));
    j.set("addresses", std::move(addr));
    if (f.kind == FindingKind::kAddressOverlap) {
      j.set("witness", Json::unsigned_integer(f.witness));
    }
  }
  j.set("message", Json::string(f.message));
  if (!f.flow.empty()) {
    Json flow = Json::array();
    for (const FlowStep& step : f.flow) {
      Json s = Json::object();
      s.set("subject", Json::string(step.subject));
      if (step.location.valid()) {
        Json loc = Json::object();
        loc.set("file", Json::string(step.location.file.str()));
        loc.set("line", Json::unsigned_integer(step.location.line));
        loc.set("column", Json::unsigned_integer(step.location.column));
        s.set("location", std::move(loc));
      }
      if (!step.note.empty()) s.set("note", Json::string(step.note));
      flow.push(std::move(s));
    }
    j.set("flow", std::move(flow));
  }
  return j;
}

Json findings_json(const Findings& findings) {
  Json arr = Json::array();
  for (const Finding& f : findings) arr.push(finding_json(f));
  return arr;
}

}  // namespace

std::string to_json(const Findings& findings) {
  return findings_json(findings).dump(Json::Style::kSpaced);
}

std::string report_json(const Findings& findings) {
  Json doc = Json::object();
  doc.set("schema_version", Json::integer(1));
  doc.set("errors", Json::unsigned_integer(error_count(findings)));
  doc.set("warnings",
          Json::unsigned_integer(findings.size() - error_count(findings)));
  doc.set("findings", findings_json(findings));
  return doc.dump(Json::Style::kSpaced);
}

std::string to_sarif(const Findings& findings, std::string_view artifact_uri) {
  // Rules table: first-seen order over the findings, enriched from the
  // cross-reference catalog when the id is registered there.
  std::vector<std::string> rule_ids;
  std::map<std::string, size_t> rule_index;
  for (const Finding& f : findings) {
    std::string id(f.rule_id());
    if (rule_index.emplace(id, rule_ids.size()).second) {
      rule_ids.push_back(std::move(id));
    }
  }

  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"llhsc\",\n"
     << "          \"informationUri\": \"https://example.org/llhsc\",\n"
     << "          \"rules\": [";
  for (size_t i = 0; i < rule_ids.size(); ++i) {
    const crossref::RuleInfo* info = crossref::find_rule(rule_ids[i]);
    os << (i > 0 ? "," : "") << "\n            {\"id\": ";
    append_escaped(os, rule_ids[i]);
    if (info != nullptr) {
      os << ", \"shortDescription\": {\"text\": ";
      append_escaped(os, info->summary);
      os << "}, \"defaultConfiguration\": {\"level\": ";
      append_escaped(os, info->default_severity == FindingSeverity::kError
                             ? "error"
                             : "warning");
      os << "}";
    }
    os << "}";
  }
  if (!rule_ids.empty()) os << "\n          ";
  os << "]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << (i > 0 ? "," : "") << "\n        {\"ruleId\": ";
    append_escaped(os, f.rule_id());
    os << ", \"ruleIndex\": " << rule_index.at(std::string(f.rule_id()));
    os << ", \"level\": ";
    append_escaped(os, f.severity == FindingSeverity::kError ? "error"
                                                             : "warning");
    os << ", \"message\": {\"text\": ";
    std::string text = f.subject;
    if (!f.property.empty()) text += " (property '" + f.property + "')";
    text += ": " + f.message;
    append_escaped(os, text);
    os << "}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
          "{\"uri\": ";
    append_escaped(os, f.location.valid() ? std::string_view(f.location.file)
                                          : artifact_uri);
    os << "}";
    if (f.location.valid()) {
      os << ", \"region\": {\"startLine\": " << f.location.line;
      if (f.location.column > 0) {
        os << ", \"startColumn\": " << f.location.column;
      }
      os << "}";
    }
    os << "}, \"logicalLocations\": [{\"fullyQualifiedName\": ";
    append_escaped(os, f.subject);
    os << "}]}]";
    if (!f.flow.empty()) {
      // The defect path, twice per the SARIF spec's division of labour:
      // codeFlows for viewers that step through the path, relatedLocations
      // for plain result listings.
      auto location_body = [&](const FlowStep& step) {
        os << "{\"physicalLocation\": {\"artifactLocation\": {\"uri\": ";
        append_escaped(os, step.location.valid()
                               ? std::string_view(step.location.file)
                               : artifact_uri);
        os << "}";
        if (step.location.valid()) {
          os << ", \"region\": {\"startLine\": " << step.location.line;
          if (step.location.column > 0) {
            os << ", \"startColumn\": " << step.location.column;
          }
          os << "}";
        }
        os << "}, \"logicalLocations\": [{\"fullyQualifiedName\": ";
        append_escaped(os, step.subject);
        os << "}], \"message\": {\"text\": ";
        append_escaped(os, step.note);
        os << "}}";
      };
      os << ", \"codeFlows\": [{\"threadFlows\": [{\"locations\": [";
      for (size_t s = 0; s < f.flow.size(); ++s) {
        os << (s > 0 ? ", " : "") << "{\"location\": ";
        location_body(f.flow[s]);
        os << "}";
      }
      os << "]}]}], \"relatedLocations\": [";
      for (size_t s = 0; s < f.flow.size(); ++s) {
        os << (s > 0 ? ", " : "");
        location_body(f.flow[s]);
      }
      os << "]";
    }
    os << "}";
  }
  if (!findings.empty()) os << "\n      ";
  os << "]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
  return os.str();
}

}  // namespace llhsc::checkers

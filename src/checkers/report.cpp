#include "checkers/report.hpp"

#include <sstream>

namespace llhsc::checkers {

namespace {

void append_escaped(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void append_finding(std::ostringstream& os, const Finding& f) {
  os << "{\"kind\": ";
  append_escaped(os, to_string(f.kind));
  os << ", \"severity\": ";
  append_escaped(os, f.severity == FindingSeverity::kError ? "error"
                                                           : "warning");
  os << ", \"subject\": ";
  append_escaped(os, f.subject);
  if (!f.property.empty()) {
    os << ", \"property\": ";
    append_escaped(os, f.property);
  }
  if (!f.other_subject.empty()) {
    os << ", \"other\": ";
    append_escaped(os, f.other_subject);
  }
  if (!f.delta.empty()) {
    os << ", \"delta\": ";
    append_escaped(os, f.delta);
  }
  bool has_addresses = f.base_a != 0 || f.size_a != 0 || f.base_b != 0 ||
                       f.size_b != 0 || f.kind == FindingKind::kAddressOverlap;
  if (has_addresses) {
    os << ", \"addresses\": {\"base_a\": " << f.base_a
       << ", \"size_a\": " << f.size_a << ", \"base_b\": " << f.base_b
       << ", \"size_b\": " << f.size_b << "}";
    if (f.kind == FindingKind::kAddressOverlap) {
      os << ", \"witness\": " << f.witness;
    }
  }
  os << ", \"message\": ";
  append_escaped(os, f.message);
  os << '}';
}

}  // namespace

std::string to_json(const Findings& findings) {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < findings.size(); ++i) {
    if (i > 0) os << ", ";
    append_finding(os, findings[i]);
  }
  os << ']';
  return os.str();
}

std::string report_json(const Findings& findings) {
  std::ostringstream os;
  os << "{\"errors\": " << error_count(findings)
     << ", \"warnings\": " << (findings.size() - error_count(findings))
     << ", \"findings\": " << to_json(findings) << '}';
  return os.str();
}

}  // namespace llhsc::checkers

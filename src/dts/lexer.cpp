#include "dts/lexer.hpp"

#include <cctype>

#include "dts/parser.hpp"
#include "support/strings.hpp"

namespace llhsc::dts {

namespace {
bool is_ident_start(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '#' ||
         c == '.' || c == '+' || c == '-' || c == ',';
}
bool is_ident_char(char c) {
  return is_ident_start(c) || c == '@' || c == '?';
}

/// Fixed spellings interned once per process, so punctuation tokens never
/// touch the intern table's locks.
struct FixedAtoms {
  support::Atom lbrace{"{"}, rbrace{"}"}, semi{";"}, equals{"="},
      lbracket{"["}, rbracket{"]"}, lparen{"("}, rparen{")"}, comma{","},
      shl{"<<"}, shr{">>"}, langle{"<"}, rangle{">"}, amp{"&"}, slash{"/"};
};
const FixedAtoms& fixed() {
  static const FixedAtoms f;
  return f;
}
}  // namespace

Lexer::Lexer(std::string_view source, std::string filename,
             support::DiagnosticEngine& diags, const SourceManager* sources,
             int max_include_depth)
    : diags_(&diags),
      sources_(sources),
      max_include_depth_(max_include_depth) {
  Buffer b;
  b.src = source;
  b.filename = support::Atom(filename);
  buffers_.push_back(std::move(b));
}

support::SourceLocation Lexer::here() const {
  const Buffer& b = buffers_.back();
  return support::SourceLocation{b.filename, b.line, b.column};
}

bool Lexer::at_end_of_buffer() const {
  const Buffer& b = buffers_.back();
  return b.pos >= b.src.size();
}

char Lexer::cur() const {
  const Buffer& b = buffers_.back();
  return b.pos < b.src.size() ? b.src[b.pos] : '\0';
}

char Lexer::ahead(size_t n) const {
  const Buffer& b = buffers_.back();
  return b.pos + n < b.src.size() ? b.src[b.pos + n] : '\0';
}

void Lexer::advance() {
  Buffer& b = top();
  if (b.pos >= b.src.size()) return;
  if (b.src[b.pos] == '\n') {
    ++b.line;
    b.column = 1;
  } else {
    ++b.column;
  }
  ++b.pos;
}

void Lexer::skip_trivia() {
  while (true) {
    if (at_end_of_buffer()) {
      if (buffers_.size() == 1) return;
      buffers_.pop_back();  // return to the including file
      continue;
    }
    char c = cur();
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
    } else if (c == '/' && ahead() == '/') {
      while (!at_end_of_buffer() && cur() != '\n') advance();
    } else if (c == '/' && ahead() == '*') {
      support::SourceLocation start = here();
      advance();
      advance();
      bool closed = false;
      while (!at_end_of_buffer()) {
        if (cur() == '*' && ahead() == '/') {
          advance();
          advance();
          closed = true;
          break;
        }
        advance();
      }
      if (!closed) {
        // Anchor at the opening '/*' — at EOF "here()" would point one past
        // the buffer, a location no editor can jump to.
        diags_->error("dts-lex", "unterminated block comment", start);
        diags_->note("dts-lex", "comment opened here is never closed", start);
      }
    } else {
      return;
    }
  }
}

Token Lexer::make(TokenKind kind, support::Atom text) {
  Token t;
  t.kind = kind;
  t.text = text;
  t.location = here();
  return t;
}

/// The span of `src` consumed while `pred` holds — the allocation-free path
/// for identifiers and digit runs, which are always contiguous in one buffer.
template <typename Pred>
std::string_view Lexer::take_while(Pred pred) {
  const Buffer& b = buffers_.back();
  size_t start = b.pos;
  while (!at_end_of_buffer() && pred(cur())) advance();
  return b.src.substr(start, buffers_.back().pos - start);
}

const Token& Lexer::peek() {
  if (!has_lookahead_) {
    lookahead_ = lex_token();
    has_lookahead_ = true;
  }
  return lookahead_;
}

Token Lexer::next() {
  if (has_lookahead_) {
    has_lookahead_ = false;
    return lookahead_;
  }
  return lex_token();
}

void Lexer::handle_include(const support::SourceLocation& loc) {
  // Consume the filename string that must follow /include/.
  Token name = lex_token();
  if (name.kind != TokenKind::kString) {
    diags_->error("dts-include", "/include/ expects a quoted filename", loc);
    return;
  }
  if (sources_ == nullptr) {
    diags_->error("dts-include",
                  "/include/ \"" + name.text +
                      "\" is not available in this context",
                  name.location);
    return;
  }
  if (static_cast<int>(buffers_.size()) > max_include_depth_) {
    diags_->error("dts-include",
                  "include depth limit exceeded at \"" + name.text + "\"",
                  name.location);
    return;
  }
  auto content = sources_->load(name.text.str());
  if (!content) {
    diags_->error("dts-include", "cannot open include \"" + name.text + "\"",
                  name.location);
    return;
  }
  Buffer b;
  b.owned = std::make_unique<std::string>(std::move(*content));
  b.src = *b.owned;
  b.filename = name.text;
  buffers_.push_back(std::move(b));
}

Token Lexer::lex_token() {
  skip_trivia();
  support::SourceLocation loc = here();
  auto at = [&](Token t) {
    t.location = loc;
    return t;
  };
  if (at_end_of_buffer() && buffers_.size() == 1) {
    return at(make(TokenKind::kEnd));
  }

  char c = cur();
  switch (c) {
    case '{': advance(); return at(make(TokenKind::kLBrace, fixed().lbrace));
    case '}': advance(); return at(make(TokenKind::kRBrace, fixed().rbrace));
    case ';': advance(); return at(make(TokenKind::kSemi, fixed().semi));
    case '=': advance(); return at(make(TokenKind::kEquals, fixed().equals));
    case '[': advance(); return at(make(TokenKind::kLBracket, fixed().lbracket));
    case ']': advance(); return at(make(TokenKind::kRBracket, fixed().rbracket));
    case '(': advance(); return at(make(TokenKind::kLParen, fixed().lparen));
    case ')': advance(); return at(make(TokenKind::kRParen, fixed().rparen));
    case ',': advance(); return at(make(TokenKind::kComma, fixed().comma));
    default: break;
  }

  if (c == '<') {
    if (ahead() == '<') {
      advance();
      advance();
      return at(make(TokenKind::kArith, fixed().shl));
    }
    advance();
    return at(make(TokenKind::kLAngle, fixed().langle));
  }
  if (c == '>') {
    if (ahead() == '>') {
      advance();
      advance();
      return at(make(TokenKind::kArith, fixed().shr));
    }
    advance();
    return at(make(TokenKind::kRAngle, fixed().rangle));
  }

  if (c == '"') {
    advance();
    std::string payload;
    while (!at_end_of_buffer() && cur() != '"') {
      if (cur() == '\\' && !at_end_of_buffer()) {
        advance();
        char esc = cur();
        switch (esc) {
          case 'n': payload += '\n'; break;
          case 't': payload += '\t'; break;
          case 'r': payload += '\r'; break;
          case '0': payload += '\0'; break;
          case '\\': payload += '\\'; break;
          case '"': payload += '"'; break;
          default: payload += esc; break;
        }
        advance();
      } else {
        payload += cur();
        advance();
      }
    }
    if (at_end_of_buffer()) {
      // Same anchoring as block comments: the opening quote, not EOF.
      diags_->error("dts-lex", "unterminated string literal", loc);
      diags_->note("dts-lex", "string opened here is never closed", loc);
      return at(make(TokenKind::kEnd));
    }
    advance();  // closing quote
    return at(make(TokenKind::kString, support::Atom(payload)));
  }

  if (c == '&') {
    advance();
    std::string_view label;
    if (cur() == '{') {
      // &{/full/path}
      advance();
      label = take_while([](char ch) { return ch != '}'; });
      if (cur() == '}') advance();
    } else {
      label = take_while(is_ident_char);
    }
    if (label.empty()) {
      // bare '&' is a bitwise operator inside expressions
      return at(make(TokenKind::kArith, fixed().amp));
    }
    return at(make(TokenKind::kRef, support::Atom(label)));
  }

  if (c == '/') {
    // Directive /ident/ or the root node '/'. Save only the cursor so the
    // buffer's owned storage is never copied (src points into it).
    size_t save_pos = top().pos;
    uint32_t save_line = top().line;
    uint32_t save_col = top().column;
    advance();
    std::string_view word = take_while([](char ch) {
      return std::isalnum(static_cast<unsigned char>(ch)) || ch == '-';
    });
    if (!word.empty() && cur() == '/') {
      advance();
      if (word == "include") {
        handle_include(loc);
        return lex_token();  // splice: next token comes from the include
      }
      return at(make(TokenKind::kDirective, support::Atom(word)));
    }
    // Not a directive: rewind to just after '/'.
    top().pos = save_pos;
    top().line = save_line;
    top().column = save_col;
    advance();
    return at(make(TokenKind::kSlash, fixed().slash));
  }

  if (std::isdigit(static_cast<unsigned char>(c))) {
    const Buffer& b = buffers_.back();
    size_t start = b.pos;
    std::string_view digits = take_while([](char ch) {
      return std::isalnum(static_cast<unsigned char>(ch)) != 0;
    });
    auto parsed = support::parse_integer(std::string(digits));
    if (parsed) {
      Token t = make(TokenKind::kInt, support::Atom(digits));
      t.value = *parsed;
      return at(std::move(t));
    }
    // A name like "2nd-bus" starts with a digit: continue as identifier.
    while (!at_end_of_buffer() && is_ident_char(cur())) advance();
    std::string_view word = b.src.substr(start, buffers_.back().pos - start);
    return at(make(TokenKind::kIdent, support::Atom(word)));
  }

  if (is_ident_start(c)) {
    std::string_view word = take_while(is_ident_char);
    if (cur() == ':') {
      advance();
      return at(make(TokenKind::kLabel, support::Atom(word)));
    }
    return at(make(TokenKind::kIdent, support::Atom(word)));
  }

  if (c == '+' || c == '-' || c == '*' || c == '%' || c == '|' || c == '^' ||
      c == '~' || c == '!') {
    advance();
    return at(make(TokenKind::kArith, support::Atom(std::string_view(&c, 1))));
  }

  diags_->error("dts-lex", std::string("unexpected character '") + c + "'", loc);
  advance();
  return lex_token();
}

std::vector<Token> Lexer::tokenize_all() {
  std::vector<Token> out;
  while (true) {
    Token t = next();
    bool end = t.kind == TokenKind::kEnd;
    out.push_back(std::move(t));
    if (end) return out;
  }
}

}  // namespace llhsc::dts

#include "dts/lexer.hpp"

#include <cctype>

#include "dts/parser.hpp"
#include "support/strings.hpp"

namespace llhsc::dts {

namespace {
bool is_ident_start(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '#' ||
         c == '.' || c == '+' || c == '-' || c == ',';
}
bool is_ident_char(char c) {
  return is_ident_start(c) || c == '@' || c == '?';
}
}  // namespace

Lexer::Lexer(std::string_view source, std::string filename,
             support::DiagnosticEngine& diags, const SourceManager* sources,
             int max_include_depth)
    : diags_(&diags),
      sources_(sources),
      max_include_depth_(max_include_depth) {
  Buffer b;
  b.src = source;
  b.filename = std::move(filename);
  buffers_.push_back(std::move(b));
}

support::SourceLocation Lexer::here() const {
  const Buffer& b = buffers_.back();
  return support::SourceLocation{b.filename, b.line, b.column};
}

bool Lexer::at_end_of_buffer() const {
  const Buffer& b = buffers_.back();
  return b.pos >= b.src.size();
}

char Lexer::cur() const {
  const Buffer& b = buffers_.back();
  return b.pos < b.src.size() ? b.src[b.pos] : '\0';
}

char Lexer::ahead(size_t n) const {
  const Buffer& b = buffers_.back();
  return b.pos + n < b.src.size() ? b.src[b.pos + n] : '\0';
}

void Lexer::advance() {
  Buffer& b = top();
  if (b.pos >= b.src.size()) return;
  if (b.src[b.pos] == '\n') {
    ++b.line;
    b.column = 1;
  } else {
    ++b.column;
  }
  ++b.pos;
}

void Lexer::skip_trivia() {
  while (true) {
    if (at_end_of_buffer()) {
      if (buffers_.size() == 1) return;
      buffers_.pop_back();  // return to the including file
      continue;
    }
    char c = cur();
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
    } else if (c == '/' && ahead() == '/') {
      while (!at_end_of_buffer() && cur() != '\n') advance();
    } else if (c == '/' && ahead() == '*') {
      support::SourceLocation start = here();
      advance();
      advance();
      bool closed = false;
      while (!at_end_of_buffer()) {
        if (cur() == '*' && ahead() == '/') {
          advance();
          advance();
          closed = true;
          break;
        }
        advance();
      }
      if (!closed) {
        // Anchor at the opening '/*' — at EOF "here()" would point one past
        // the buffer, a location no editor can jump to.
        diags_->error("dts-lex", "unterminated block comment", start);
        diags_->note("dts-lex", "comment opened here is never closed", start);
      }
    } else {
      return;
    }
  }
}

Token Lexer::make(TokenKind kind, std::string text) {
  Token t;
  t.kind = kind;
  t.text = std::move(text);
  t.location = here();
  return t;
}

const Token& Lexer::peek() {
  if (!has_lookahead_) {
    lookahead_ = lex_token();
    has_lookahead_ = true;
  }
  return lookahead_;
}

Token Lexer::next() {
  if (has_lookahead_) {
    has_lookahead_ = false;
    return lookahead_;
  }
  return lex_token();
}

void Lexer::handle_include(const support::SourceLocation& loc) {
  // Consume the filename string that must follow /include/.
  Token name = lex_token();
  if (name.kind != TokenKind::kString) {
    diags_->error("dts-include", "/include/ expects a quoted filename", loc);
    return;
  }
  if (sources_ == nullptr) {
    diags_->error("dts-include",
                  "/include/ \"" + name.text +
                      "\" is not available in this context",
                  name.location);
    return;
  }
  if (static_cast<int>(buffers_.size()) > max_include_depth_) {
    diags_->error("dts-include",
                  "include depth limit exceeded at \"" + name.text + "\"",
                  name.location);
    return;
  }
  auto content = sources_->load(name.text);
  if (!content) {
    diags_->error("dts-include", "cannot open include \"" + name.text + "\"",
                  name.location);
    return;
  }
  Buffer b;
  b.owned = std::make_unique<std::string>(std::move(*content));
  b.src = *b.owned;
  b.filename = name.text;
  buffers_.push_back(std::move(b));
}

Token Lexer::lex_token() {
  skip_trivia();
  support::SourceLocation loc = here();
  auto at = [&](Token t) {
    t.location = loc;
    return t;
  };
  if (at_end_of_buffer() && buffers_.size() == 1) {
    return at(make(TokenKind::kEnd));
  }

  char c = cur();
  switch (c) {
    case '{': advance(); return at(make(TokenKind::kLBrace, "{"));
    case '}': advance(); return at(make(TokenKind::kRBrace, "}"));
    case ';': advance(); return at(make(TokenKind::kSemi, ";"));
    case '=': advance(); return at(make(TokenKind::kEquals, "="));
    case '[': advance(); return at(make(TokenKind::kLBracket, "["));
    case ']': advance(); return at(make(TokenKind::kRBracket, "]"));
    case '(': advance(); return at(make(TokenKind::kLParen, "("));
    case ')': advance(); return at(make(TokenKind::kRParen, ")"));
    case ',': advance(); return at(make(TokenKind::kComma, ","));
    default: break;
  }

  if (c == '<') {
    if (ahead() == '<') {
      advance();
      advance();
      return at(make(TokenKind::kArith, "<<"));
    }
    advance();
    return at(make(TokenKind::kLAngle, "<"));
  }
  if (c == '>') {
    if (ahead() == '>') {
      advance();
      advance();
      return at(make(TokenKind::kArith, ">>"));
    }
    advance();
    return at(make(TokenKind::kRAngle, ">"));
  }

  if (c == '"') {
    advance();
    std::string payload;
    while (!at_end_of_buffer() && cur() != '"') {
      if (cur() == '\\' && !at_end_of_buffer()) {
        advance();
        char esc = cur();
        switch (esc) {
          case 'n': payload += '\n'; break;
          case 't': payload += '\t'; break;
          case 'r': payload += '\r'; break;
          case '0': payload += '\0'; break;
          case '\\': payload += '\\'; break;
          case '"': payload += '"'; break;
          default: payload += esc; break;
        }
        advance();
      } else {
        payload += cur();
        advance();
      }
    }
    if (at_end_of_buffer()) {
      // Same anchoring as block comments: the opening quote, not EOF.
      diags_->error("dts-lex", "unterminated string literal", loc);
      diags_->note("dts-lex", "string opened here is never closed", loc);
      return at(make(TokenKind::kEnd));
    }
    advance();  // closing quote
    return at(make(TokenKind::kString, std::move(payload)));
  }

  if (c == '&') {
    advance();
    std::string label;
    if (cur() == '{') {
      // &{/full/path}
      advance();
      while (!at_end_of_buffer() && cur() != '}') {
        label += cur();
        advance();
      }
      if (cur() == '}') advance();
    } else {
      while (!at_end_of_buffer() && is_ident_char(cur())) {
        label += cur();
        advance();
      }
    }
    if (label.empty()) {
      // bare '&' is a bitwise operator inside expressions
      return at(make(TokenKind::kArith, "&"));
    }
    return at(make(TokenKind::kRef, std::move(label)));
  }

  if (c == '/') {
    // Directive /ident/ or the root node '/'. Save only the cursor so the
    // buffer's owned storage is never copied (src points into it).
    size_t save_pos = top().pos;
    uint32_t save_line = top().line;
    uint32_t save_col = top().column;
    advance();
    std::string word;
    while (!at_end_of_buffer() &&
           (std::isalnum(static_cast<unsigned char>(cur())) || cur() == '-')) {
      word += cur();
      advance();
    }
    if (!word.empty() && cur() == '/') {
      advance();
      if (word == "include") {
        handle_include(loc);
        return lex_token();  // splice: next token comes from the include
      }
      return at(make(TokenKind::kDirective, std::move(word)));
    }
    // Not a directive: rewind to just after '/'.
    top().pos = save_pos;
    top().line = save_line;
    top().column = save_col;
    advance();
    return at(make(TokenKind::kSlash, "/"));
  }

  if (std::isdigit(static_cast<unsigned char>(c))) {
    std::string digits;
    while (!at_end_of_buffer() &&
           std::isalnum(static_cast<unsigned char>(cur()))) {
      digits += cur();
      advance();
    }
    auto parsed = support::parse_integer(digits);
    if (parsed) {
      Token t = make(TokenKind::kInt, digits);
      t.value = *parsed;
      return at(std::move(t));
    }
    // A name like "2nd-bus" starts with a digit: continue as identifier.
    while (!at_end_of_buffer() && is_ident_char(cur())) {
      digits += cur();
      advance();
    }
    return at(make(TokenKind::kIdent, std::move(digits)));
  }

  if (is_ident_start(c)) {
    std::string word;
    while (!at_end_of_buffer() && is_ident_char(cur())) {
      word += cur();
      advance();
    }
    if (cur() == ':') {
      advance();
      return at(make(TokenKind::kLabel, std::move(word)));
    }
    return at(make(TokenKind::kIdent, std::move(word)));
  }

  if (c == '+' || c == '-' || c == '*' || c == '%' || c == '|' || c == '^' ||
      c == '~' || c == '!') {
    advance();
    return at(make(TokenKind::kArith, std::string(1, c)));
  }

  diags_->error("dts-lex", std::string("unexpected character '") + c + "'", loc);
  advance();
  return lex_token();
}

std::vector<Token> Lexer::tokenize_all() {
  std::vector<Token> out;
  while (true) {
    Token t = next();
    bool end = t.kind == TokenKind::kEnd;
    out.push_back(std::move(t));
    if (end) return out;
  }
}

}  // namespace llhsc::dts

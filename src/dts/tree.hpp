// In-memory DeviceTree model. Mirrors the DTS data model of the DeviceTree
// Specification v0.4: a tree of named nodes, each carrying an ordered list of
// properties; property values are sequences of chunks — cell arrays (<...>),
// strings, byte strings ([..]) and label references (&label).
//
// Two llhsc-specific extensions:
//   * provenance: every node/property remembers which delta module produced
//     it (empty = core module), so checker findings can be traced back to the
//     culpable delta (paper §III-B);
//   * merge semantics matching dtc: defining the same node twice merges the
//     bodies, with later properties overriding earlier ones. The delta engine
//     builds its `modifies` operation on top of this.
//
// All of the model's string payload — node names, property names, labels,
// string values, label references, provenance ids — is interned
// (support/intern.hpp): fields are support::Atom views into the process-wide
// arena-backed table. A Cell is trivially copyable, a Chunk copy clones no
// characters, and Node::clone()/merge_from() — the hot operations of delta
// derivation — move pointer pairs instead of std::strings. Atoms are stable
// for the process lifetime, so subtrees move between trees freely.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/diagnostics.hpp"
#include "support/intern.hpp"

namespace llhsc::dts {

using support::Atom;

/// One 32-bit cell inside <...>; either a literal or a reference to a label
/// (resolved to a phandle during finalisation).
struct Cell {
  uint64_t value = 0;       // literal (may exceed 32 bits before validation)
  Atom ref;                 // label name when is_ref
  bool is_ref = false;

  static Cell literal(uint64_t v) { return Cell{v, {}, false}; }
  static Cell reference(Atom label) { return Cell{0, label, true}; }
  friend bool operator==(const Cell&, const Cell&) = default;
};

enum class ChunkKind : uint8_t { kCells, kString, kBytes, kRef };

/// One comma-separated piece of a property value.
struct Chunk {
  ChunkKind kind = ChunkKind::kCells;
  std::vector<Cell> cells;   // kCells
  Atom text;                 // kString / kRef (label name)
  std::vector<uint8_t> bytes;  // kBytes
  /// Element width for kCells set by the /bits/ directive (8/16/32/64);
  /// 32 is the DTS default.
  uint8_t element_bits = 32;

  static Chunk make_cells(std::vector<Cell> cs, uint8_t bits = 32) {
    Chunk c;
    c.kind = ChunkKind::kCells;
    c.cells = std::move(cs);
    c.element_bits = bits;
    return c;
  }
  static Chunk make_string(Atom s) {
    Chunk c;
    c.kind = ChunkKind::kString;
    c.text = s;
    return c;
  }
  static Chunk make_bytes(std::vector<uint8_t> b) {
    Chunk c;
    c.kind = ChunkKind::kBytes;
    c.bytes = std::move(b);
    return c;
  }
  static Chunk make_ref(Atom label) {
    Chunk c;
    c.kind = ChunkKind::kRef;
    c.text = label;
    return c;
  }
  friend bool operator==(const Chunk&, const Chunk&) = default;
};

struct Property {
  Atom name;
  std::vector<Chunk> chunks;          // empty = boolean/presence property
  support::SourceLocation location;
  Atom provenance;                    // delta module id; empty = core

  /// Convenience constructors for programmatic tree building.
  static Property boolean(Atom name);
  static Property cells(Atom name, std::vector<uint64_t> values);
  static Property string(Atom name, Atom value);
  static Property strings(Atom name, std::vector<std::string> values);

  // -- typed readers (nullopt when the shape does not match) --
  [[nodiscard]] bool is_boolean() const { return chunks.empty(); }
  /// Flattens every kCells chunk into one cell vector (refs excluded -> nullopt).
  [[nodiscard]] std::optional<std::vector<uint64_t>> as_cells() const;
  [[nodiscard]] std::optional<std::string> as_string() const;
  [[nodiscard]] std::optional<std::vector<std::string>> as_string_list() const;
  /// First cell as u32 (the #address-cells / #size-cells accessor shape).
  [[nodiscard]] std::optional<uint32_t> as_u32() const;

  friend bool operator==(const Property& a, const Property& b) {
    return a.name == b.name && a.chunks == b.chunks;
  }
};

class Node {
 public:
  Node() = default;
  explicit Node(Atom name) : name_(name) {}
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;
  Node(Node&&) = default;
  Node& operator=(Node&&) = default;

  [[nodiscard]] Atom name() const { return name_; }
  void set_name(Atom n) { name_ = n; }

  /// Node name without the unit address ("memory" for "memory@40000000").
  [[nodiscard]] std::string_view base_name() const;
  /// Unit address text after '@' (empty when absent).
  [[nodiscard]] std::string_view unit_address() const;

  [[nodiscard]] const std::vector<Property>& properties() const { return properties_; }
  [[nodiscard]] std::vector<Property>& properties() { return properties_; }
  [[nodiscard]] const Property* find_property(std::string_view name) const;
  [[nodiscard]] Property* find_property(std::string_view name);
  /// Adds or replaces (dtc merge semantics). Returns the stored property.
  Property& set_property(Property p);
  bool remove_property(std::string_view name);

  [[nodiscard]] const std::vector<std::unique_ptr<Node>>& children() const {
    return children_;
  }
  [[nodiscard]] const Node* find_child(std::string_view name) const;
  [[nodiscard]] Node* find_child(std::string_view name);
  /// Finds a child by name, or by base name when exactly one child matches.
  [[nodiscard]] Node* find_child_fuzzy(std::string_view name);
  Node& add_child(std::unique_ptr<Node> child);
  Node& get_or_create_child(std::string_view name);
  bool remove_child(std::string_view name);

  [[nodiscard]] const std::vector<Atom>& labels() const { return labels_; }
  void add_label(Atom label);

  [[nodiscard]] const support::SourceLocation& location() const { return location_; }
  void set_location(support::SourceLocation loc) { location_ = std::move(loc); }

  [[nodiscard]] Atom provenance() const { return provenance_; }
  void set_provenance(Atom p) { provenance_ = p; }

  /// Merges `other` into this node (dtc duplicate-definition semantics):
  /// properties override by name, children merge recursively, labels union.
  void merge_from(Node&& other);

  /// Deep copy (provenance and labels included).
  [[nodiscard]] std::unique_ptr<Node> clone() const;

  /// #address-cells / #size-cells declared *on this node* (defaults per DT
  /// spec when absent: 2 and 1 respectively).
  [[nodiscard]] uint32_t address_cells_or_default() const;
  [[nodiscard]] uint32_t size_cells_or_default() const;

  /// Total number of nodes in this subtree (including this node).
  [[nodiscard]] size_t subtree_size() const;

 private:
  Atom name_;
  std::vector<Property> properties_;
  std::vector<std::unique_ptr<Node>> children_;
  std::vector<Atom> labels_;
  support::SourceLocation location_;
  Atom provenance_;
};

struct MemReserve {
  uint64_t address = 0;
  uint64_t size = 0;
  friend bool operator==(const MemReserve&, const MemReserve&) = default;
};

/// A whole DeviceTree: root node plus file-level artifacts.
class Tree {
 public:
  Tree() : root_(std::make_unique<Node>("/")) {}

  [[nodiscard]] Node& root() { return *root_; }
  [[nodiscard]] const Node& root() const { return *root_; }

  [[nodiscard]] std::vector<MemReserve>& memreserves() { return memreserves_; }
  [[nodiscard]] const std::vector<MemReserve>& memreserves() const {
    return memreserves_;
  }

  /// Path lookup: "/", "/memory@40000000", "/cpus/cpu@0". Also accepts
  /// base-name matching when unambiguous ("/memory" finds "/memory@40000000").
  [[nodiscard]] Node* find(std::string_view path);
  [[nodiscard]] const Node* find(std::string_view path) const;

  /// Finds the node carrying `label`, or nullptr.
  [[nodiscard]] Node* find_label(std::string_view label);

  /// The (#address-cells, #size-cells) pair that governs the `reg` property
  /// of the node at `path`: nearest-ancestor declaration wins (Linux
  /// of_n_addr_cells semantics), spec defaults (2, 1) when no ancestor
  /// declares them. The node's own declarations apply to its children, not
  /// itself, and are therefore ignored.
  [[nodiscard]] std::pair<uint32_t, uint32_t> applicable_cells(
      std::string_view path) const;

  /// Full path of a node within this tree ("" if not found).
  [[nodiscard]] std::string path_of(const Node& node) const;

  /// Resolves &label references in cells to phandles: assigns a `phandle`
  /// property to every referenced node and substitutes the value. Reports
  /// unresolved labels through `diags`. Returns false on any error.
  bool resolve_references(support::DiagnosticEngine& diags);

  [[nodiscard]] std::unique_ptr<Tree> clone() const;

  /// Visits every node pre-order; callback gets (path, node).
  template <typename F>
  void visit(F&& f) const {
    visit_impl(*root_, "/", f);
  }
  template <typename F>
  void visit(F&& f) {
    visit_impl(*root_, "/", f);
  }

  [[nodiscard]] size_t node_count() const { return root_->subtree_size(); }

 private:
  template <typename F>
  static void visit_impl(const Node& n, const std::string& path, F& f) {
    f(path, n);
    for (const auto& c : n.children()) {
      std::string child_path = path == "/" ? "/" + c->name() : path + "/" + c->name();
      visit_impl(*c, child_path, f);
    }
  }
  template <typename F>
  static void visit_impl(Node& n, const std::string& path, F& f) {
    f(path, n);
    for (const auto& c : n.children()) {
      std::string child_path = path == "/" ? "/" + c->name() : path + "/" + c->name();
      visit_impl(*c, child_path, f);
    }
  }

  std::unique_ptr<Node> root_;
  std::vector<MemReserve> memreserves_;
};

}  // namespace llhsc::dts

// Recursive-descent parser for DTS. Supports the dtc feature set llhsc needs:
//   /dts-v1/; /memreserve/; /include/ "x.dtsi"; labelled nodes; top-level
//   node merging (duplicate definitions merge, dtc semantics); &label node
//   extension; /delete-node/ and /delete-property/; property values made of
//   cell lists (with parenthesised C integer expressions), strings, byte
//   strings and references.
//
// Include resolution goes through a SourceManager so tests and the delta
// engine can feed purely in-memory product lines (the paper's running example
// includes "cpus.dtsi" from the main DTS).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "dts/lexer.hpp"
#include "dts/tree.hpp"

namespace llhsc::dts {

/// Maps include names to buffers. Files registered in memory shadow the
/// filesystem; unregistered names fall back to reading relative to
/// `base_directory` when set.
class SourceManager {
 public:
  void register_file(std::string name, std::string content);
  void set_base_directory(std::string dir) { base_directory_ = std::move(dir); }

  /// Returns the buffer for `name`, loading from disk on fallback.
  [[nodiscard]] std::optional<std::string> load(const std::string& name) const;

  /// Observes every successful load() with the include name and its content,
  /// so a caller can content-address a parse against its transitive includes
  /// (the server's artifact store records (name, hash) dependency edges from
  /// this). One observer at a time; pass {} to clear.
  using LoadObserver = std::function<void(const std::string& name,
                                          const std::string& content)>;
  void set_load_observer(LoadObserver observer) {
    observer_ = std::move(observer);
  }

 private:
  std::map<std::string, std::string> files_;
  std::string base_directory_;
  LoadObserver observer_;
};

struct ParseOptions {
  /// Maximum include nesting before aborting (cycle guard).
  int max_include_depth = 32;
  /// When true (default), &label cell references are resolved to phandles
  /// after parsing.
  bool resolve_references = true;
};

/// Parses `source` (named `filename` for diagnostics) into a Tree. Returns
/// nullptr when errors prevented producing a usable tree; partial trees with
/// recoverable errors are still returned (diagnostics carry the details).
std::unique_ptr<Tree> parse_dts(std::string_view source, std::string filename,
                                const SourceManager& sources,
                                support::DiagnosticEngine& diags,
                                const ParseOptions& options = {});

/// Convenience overload with an empty SourceManager (no includes).
std::unique_ptr<Tree> parse_dts(std::string_view source, std::string filename,
                                support::DiagnosticEngine& diags);

/// Parses node-body content from `lexer` into `node`, assuming the opening
/// '{' has already been consumed; stops after the matching '}'. Exposed for
/// the delta-module language, which embeds DTS fragments (paper Listing 4).
/// Returns false when errors were reported.
bool parse_node_body_into(Node& node, Lexer& lexer,
                          support::DiagnosticEngine& diags);

}  // namespace llhsc::dts

#include "dts/parser.hpp"

#include <cassert>
#include <fstream>
#include <sstream>

#include "support/strings.hpp"

namespace llhsc::dts {

void SourceManager::register_file(std::string name, std::string content) {
  files_[std::move(name)] = std::move(content);
}

std::optional<std::string> SourceManager::load(const std::string& name) const {
  auto found = [&](std::string content) -> std::optional<std::string> {
    if (observer_) observer_(name, content);
    return content;
  };
  auto it = files_.find(name);
  if (it != files_.end()) return found(it->second);
  if (!base_directory_.empty()) {
    std::ifstream in(base_directory_ + "/" + name, std::ios::binary);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      return found(buf.str());
    }
  }
  std::ifstream in(name, std::ios::binary);
  if (in) {
    std::ostringstream buf;
    buf << in.rdbuf();
    return found(buf.str());
  }
  return std::nullopt;
}

namespace {

// Parses directly into the target tree: duplicate node definitions merge as
// they are encountered (dtc semantics), which also gives /delete-node/ and
// /delete-property/ their correct "applies to everything seen so far"
// behaviour.
class Parser {
 public:
  Parser(Lexer& lexer, support::DiagnosticEngine& diags)
      : lexer_(lexer), diags_(&diags) {}

  /// Entry point for embedded node-body fragments (delta modules).
  void parse_body(Node& node) { parse_node_body(node); }

  void parse_file(Tree& tree) {
    while (true) {
      Token t = lexer_.next();
      switch (t.kind) {
        case TokenKind::kEnd:
          return;
        case TokenKind::kDirective:
          handle_directive(tree, t);
          break;
        case TokenKind::kSlash: {
          // Root node definition: / { ... };
          expect(TokenKind::kLBrace, "'{' after '/'");
          if (!tree.root().location().valid()) {
            tree.root().set_location(t.location);
          }
          parse_node_body(tree.root());
          expect(TokenKind::kSemi, "';' after node");
          break;
        }
        case TokenKind::kLabel:
          // A label preceding '/' or '&ref' at the top level.
          pending_labels_.push_back(t.text);
          break;
        case TokenKind::kRef: {
          // &label { ... }; extends an existing node.
          Token open = lexer_.next();
          if (open.kind != TokenKind::kLBrace) {
            diags_->error("dts-parse", "expected '{' after top-level &" + t.text,
                          open.location);
            recover_to_semi();
            break;
          }
          Node* target = tree.find_label(t.text);
          if (target == nullptr) {
            diags_->error("dts-unresolved-ref",
                          "extension of unknown label &" + t.text, t.location);
            Node scratch("&" + t.text);
            parse_node_body(scratch);  // consume the body
          } else {
            for (support::Atom l : pending_labels_) target->add_label(l);
            parse_node_body(*target);
          }
          pending_labels_.clear();
          expect(TokenKind::kSemi, "';' after node");
          break;
        }
        case TokenKind::kIdent:
          diags_->error("dts-parse",
                        "unexpected top-level identifier '" + t.text +
                            "' (node definitions at the top level must be "
                            "under '/')",
                        t.location);
          recover_to_semi();
          break;
        default:
          diags_->error("dts-parse", "unexpected token '" + t.text + "'",
                        t.location);
          recover_to_semi();
          break;
      }
    }
  }

 private:
  void handle_directive(Tree& tree, const Token& t) {
    if (t.text == "dts-v1") {
      expect(TokenKind::kSemi, "';' after /dts-v1/");
    } else if (t.text == "memreserve") {
      Token a = lexer_.next();
      Token b = lexer_.next();
      if (a.kind != TokenKind::kInt || b.kind != TokenKind::kInt) {
        diags_->error("dts-parse", "/memreserve/ expects two integers",
                      t.location);
        recover_to_semi();
        return;
      }
      expect(TokenKind::kSemi, "';' after /memreserve/");
      tree.memreserves().push_back(MemReserve{a.value, b.value});
    } else {
      diags_->error("dts-parse", "unknown directive /" + t.text + "/",
                    t.location);
      recover_to_semi();
    }
  }

  void parse_node_body(Node& node) {
    std::vector<support::Atom> labels;
    while (true) {
      Token t = lexer_.next();
      switch (t.kind) {
        case TokenKind::kRBrace:
          return;
        case TokenKind::kEnd:
          diags_->error("dts-parse", "unexpected end of file inside node '" +
                                         node.name() + "'",
                        t.location);
          return;
        case TokenKind::kLabel:
          labels.push_back(t.text);
          break;
        case TokenKind::kDirective: {
          if (t.text == "delete-node") {
            Token name = lexer_.next();
            expect(TokenKind::kSemi, "';' after /delete-node/");
            if (!node.remove_child(name.text)) {
              diags_->warning("dts-delete",
                              "/delete-node/ target '" + name.text +
                                  "' not found",
                              name.location);
            }
          } else if (t.text == "delete-property") {
            Token name = lexer_.next();
            expect(TokenKind::kSemi, "';' after /delete-property/");
            if (!node.remove_property(name.text)) {
              diags_->warning("dts-delete",
                              "/delete-property/ target '" + name.text +
                                  "' not found",
                              name.location);
            }
          } else {
            diags_->error("dts-parse", "unexpected directive /" + t.text +
                                           "/ inside node body",
                          t.location);
            recover_to_semi();
          }
          break;
        }
        case TokenKind::kIdent:
        case TokenKind::kInt: {
          // Either a property or a child node; disambiguate on next token.
          // (kInt covers names like "0" that lex numerically.)
          support::Atom name = t.text;
          const Token& nxt = lexer_.peek();
          if (nxt.kind == TokenKind::kLBrace) {
            lexer_.next();  // consume {
            Node& child = node.get_or_create_child(name);
            if (!child.location().valid()) child.set_location(t.location);
            for (support::Atom l : labels) child.add_label(l);
            labels.clear();
            parse_node_body(child);
            expect(TokenKind::kSemi, "';' after node");
          } else {
            labels.clear();  // labels on properties are legal but unused here
            Property p = parse_property(name, t.location);
            node.set_property(std::move(p));
          }
          break;
        }
        default:
          diags_->error("dts-parse",
                        "unexpected token '" + t.text + "' in node body",
                        t.location);
          recover_to_semi();
          break;
      }
    }
  }

  Property parse_property(support::Atom name, support::SourceLocation loc) {
    Property p;
    p.name = name;
    p.location = loc;
    Token t = lexer_.next();
    if (t.kind == TokenKind::kSemi) return p;  // boolean property
    if (t.kind != TokenKind::kEquals) {
      diags_->error("dts-parse",
                    "expected '=' or ';' after property name '" + p.name + "'",
                    t.location);
      recover_to_semi();
      return p;
    }
    // value (',' value)* ';'
    while (true) {
      Token v = lexer_.next();
      uint8_t bits = 32;
      bool explicit_bits = false;
      if (v.kind == TokenKind::kDirective && v.text == "bits") {
        explicit_bits = true;
        // /bits/ N <...> — N in {8, 16, 32, 64}.
        Token width = lexer_.next();
        if (width.kind != TokenKind::kInt ||
            (width.value != 8 && width.value != 16 && width.value != 32 &&
             width.value != 64)) {
          diags_->error("dts-parse", "/bits/ expects 8, 16, 32 or 64",
                        width.location);
          recover_to_semi();
          return p;
        }
        bits = static_cast<uint8_t>(width.value);
        v = lexer_.next();
        if (v.kind != TokenKind::kLAngle) {
          diags_->error("dts-parse", "/bits/ must be followed by a cell list",
                        v.location);
          recover_to_semi();
          return p;
        }
      }
      switch (v.kind) {
        case TokenKind::kLAngle: {
          Chunk chunk = parse_cells();
          chunk.element_bits = bits;
          // Range-check literals against the element width. An explicit
          // /bits/ violation is a hard error; default-width overflow is a
          // warning (dtc semantics: it truncates), keeping the value so the
          // semantic layer can inspect it.
          if (bits < 64) {
            uint64_t max = (1ull << bits) - 1;
            for (const Cell& cell : chunk.cells) {
              if (!cell.is_ref && cell.value > max) {
                std::string msg = "value " + std::to_string(cell.value) +
                                  " does not fit in " +
                                  std::to_string(bits) + "-bit cells";
                if (explicit_bits) {
                  diags_->error("dts-parse", std::move(msg), v.location);
                } else {
                  diags_->warning("dts-cell-overflow", std::move(msg),
                                  v.location);
                }
              }
            }
          }
          if (bits != 32) {
            for (const Cell& cell : chunk.cells) {
              if (cell.is_ref) {
                diags_->error("dts-parse",
                              "references are only allowed in 32-bit cells",
                              v.location);
              }
            }
          }
          p.chunks.push_back(std::move(chunk));
          break;
        }
        case TokenKind::kString:
          p.chunks.push_back(Chunk::make_string(v.text));
          break;
        case TokenKind::kLBracket:
          p.chunks.push_back(parse_bytes());
          break;
        case TokenKind::kRef:
          p.chunks.push_back(Chunk::make_ref(v.text));
          break;
        default:
          diags_->error("dts-parse",
                        "unexpected token '" + v.text + "' in property value",
                        v.location);
          recover_to_semi();
          return p;
      }
      Token sep = lexer_.next();
      if (sep.kind == TokenKind::kSemi) return p;
      if (sep.kind != TokenKind::kComma) {
        diags_->error("dts-parse", "expected ',' or ';' in property value",
                      sep.location);
        recover_to_semi();
        return p;
      }
    }
  }

  Chunk parse_cells() {
    std::vector<Cell> cells;
    while (true) {
      Token t = lexer_.next();
      if (t.kind == TokenKind::kRAngle) break;
      if (t.kind == TokenKind::kEnd) {
        diags_->error("dts-parse", "unterminated cell list", t.location);
        break;
      }
      if (t.kind == TokenKind::kInt) {
        cells.push_back(Cell::literal(t.value));
      } else if (t.kind == TokenKind::kRef) {
        cells.push_back(Cell::reference(t.text));
      } else if (t.kind == TokenKind::kLParen) {
        cells.push_back(Cell::literal(parse_expression()));
      } else {
        diags_->error("dts-parse", "unexpected token '" + t.text +
                                       "' inside cell list",
                      t.location);
      }
    }
    return Chunk::make_cells(std::move(cells));
  }

  // Parses a parenthesised C-style integer expression after '(' has been
  // consumed; returns its value. Supports + - * / % << >> & | ^ ~ and nesting.
  uint64_t parse_expression() {
    uint64_t value = parse_expr_binary(0);
    Token close = lexer_.next();
    if (close.kind != TokenKind::kRParen) {
      diags_->error("dts-parse", "expected ')' in expression", close.location);
    }
    return value;
  }

  static int precedence(std::string_view op) {
    if (op == "*" || op == "/" || op == "%") return 5;
    if (op == "+" || op == "-") return 4;
    if (op == "<<" || op == ">>") return 3;
    if (op == "&") return 2;
    if (op == "^") return 1;
    if (op == "|") return 0;
    return -1;
  }

  uint64_t parse_expr_binary(int min_prec) {
    uint64_t lhs = parse_expr_unary();
    while (true) {
      const Token& t = lexer_.peek();
      std::string_view op;
      if (t.kind == TokenKind::kArith) {
        op = t.text;
      } else if (t.kind == TokenKind::kIdent &&
                 (t.text == "-" || t.text == "+")) {
        op = t.text;  // lexer folds bare +/- into idents
      } else if (t.kind == TokenKind::kSlash) {
        op = "/";
      } else {
        break;
      }
      int prec = precedence(op);
      if (prec < min_prec) break;
      lexer_.next();
      uint64_t rhs = parse_expr_binary(prec + 1);
      if (op == "*") lhs *= rhs;
      else if (op == "/") lhs = rhs == 0 ? 0 : lhs / rhs;
      else if (op == "%") lhs = rhs == 0 ? 0 : lhs % rhs;
      else if (op == "+") lhs += rhs;
      else if (op == "-") lhs -= rhs;
      else if (op == "<<") lhs <<= (rhs & 63);
      else if (op == ">>") lhs >>= (rhs & 63);
      else if (op == "&") lhs &= rhs;
      else if (op == "^") lhs ^= rhs;
      else if (op == "|") lhs |= rhs;
    }
    return lhs;
  }

  uint64_t parse_expr_unary() {
    Token t = lexer_.next();
    if (t.kind == TokenKind::kInt) return t.value;
    if (t.kind == TokenKind::kLParen) return parse_expression();
    if (t.kind == TokenKind::kArith && t.text == "~") return ~parse_expr_unary();
    if ((t.kind == TokenKind::kArith || t.kind == TokenKind::kIdent) &&
        t.text == "-") {
      return static_cast<uint64_t>(-static_cast<int64_t>(parse_expr_unary()));
    }
    // Negative literals may lex as one ident token starting with '-'.
    if (t.kind == TokenKind::kIdent && t.text.size() > 1 && t.text[0] == '-') {
      auto v = support::parse_integer(std::string_view(t.text).substr(1));
      if (v) return static_cast<uint64_t>(-static_cast<int64_t>(*v));
    }
    diags_->error("dts-parse", "expected integer in expression", t.location);
    return 0;
  }

  Chunk parse_bytes() {
    std::vector<uint8_t> bytes;
    while (true) {
      Token t = lexer_.next();
      if (t.kind == TokenKind::kRBracket) break;
      if (t.kind == TokenKind::kEnd) {
        diags_->error("dts-parse", "unterminated byte string", t.location);
        break;
      }
      // Hex pairs may lex as kInt ("00") or kIdent ("aa", "deadbeef").
      const support::Atom text = t.text;
      if (text.size() % 2 != 0) {
        diags_->error("dts-parse",
                      "byte string element '" + text + "' has odd length",
                      t.location);
        continue;
      }
      bool ok = true;
      for (size_t i = 0; i < text.size(); i += 2) {
        auto v = support::parse_integer("0x" + std::string(text.substr(i, 2)));
        if (!v) {
          ok = false;
          break;
        }
        bytes.push_back(static_cast<uint8_t>(*v));
      }
      if (!ok) {
        diags_->error("dts-parse", "invalid hex byte in '" + text + "'",
                      t.location);
      }
    }
    return Chunk::make_bytes(std::move(bytes));
  }

  void expect(TokenKind kind, const char* what) {
    Token t = lexer_.next();
    if (t.kind != kind) {
      diags_->error("dts-parse", std::string("expected ") + what, t.location);
    }
  }

  void recover_to_semi() {
    while (true) {
      const Token& t = lexer_.peek();
      if (t.kind == TokenKind::kEnd) return;
      if (t.kind == TokenKind::kSemi) {
        lexer_.next();
        return;
      }
      if (t.kind == TokenKind::kRBrace) return;  // let caller close the node
      lexer_.next();
    }
  }

  Lexer& lexer_;
  support::DiagnosticEngine* diags_;
  std::vector<support::Atom> pending_labels_;
};

}  // namespace

std::unique_ptr<Tree> parse_dts(std::string_view source, std::string filename,
                                const SourceManager& sources,
                                support::DiagnosticEngine& diags,
                                const ParseOptions& options) {
  auto tree = std::make_unique<Tree>();
  size_t errors_before = diags.error_count();
  Lexer lexer(source, std::move(filename), diags, &sources,
              options.max_include_depth);
  Parser parser(lexer, diags);
  parser.parse_file(*tree);
  if (options.resolve_references) {
    tree->resolve_references(diags);
  }
  if (diags.error_count() > errors_before && tree->root().children().empty() &&
      tree->root().properties().empty()) {
    return nullptr;  // nothing usable was produced
  }
  return tree;
}

std::unique_ptr<Tree> parse_dts(std::string_view source, std::string filename,
                                support::DiagnosticEngine& diags) {
  SourceManager empty;
  return parse_dts(source, std::move(filename), empty, diags);
}

bool parse_node_body_into(Node& node, Lexer& lexer,
                          support::DiagnosticEngine& diags) {
  size_t errors_before = diags.error_count();
  Parser parser(lexer, diags);
  parser.parse_body(node);
  return diags.error_count() == errors_before;
}

}  // namespace llhsc::dts

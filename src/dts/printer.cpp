#include "dts/printer.hpp"

#include <sstream>

#include "support/strings.hpp"

namespace llhsc::dts {

namespace {

void print_chunk(std::ostringstream& os, const Chunk& chunk,
                 const PrintOptions& options) {
  switch (chunk.kind) {
    case ChunkKind::kCells: {
      if (chunk.element_bits != 32) {
        os << "/bits/ " << static_cast<int>(chunk.element_bits) << ' ';
      }
      os << '<';
      for (size_t i = 0; i < chunk.cells.size(); ++i) {
        if (i > 0) os << ' ';
        const Cell& c = chunk.cells[i];
        if (c.is_ref) {
          os << '&' << c.ref;
        } else if (options.hex_cells) {
          os << support::hex(c.value);
        } else {
          os << c.value;
        }
      }
      os << '>';
      break;
    }
    case ChunkKind::kString: {
      os << '"';
      for (char ch : chunk.text) {
        switch (ch) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default: os << ch; break;
        }
      }
      os << '"';
      break;
    }
    case ChunkKind::kBytes: {
      os << '[';
      for (size_t i = 0; i < chunk.bytes.size(); ++i) {
        if (i > 0) os << ' ';
        static const char* digits = "0123456789abcdef";
        os << digits[chunk.bytes[i] >> 4] << digits[chunk.bytes[i] & 0xf];
      }
      os << ']';
      break;
    }
    case ChunkKind::kRef:
      os << '&' << chunk.text;
      break;
  }
}

void print_property_impl(std::ostringstream& os, const Property& p,
                         const PrintOptions& options) {
  os << p.name;
  if (!p.chunks.empty()) {
    os << " = ";
    for (size_t i = 0; i < p.chunks.size(); ++i) {
      if (i > 0) os << ", ";
      print_chunk(os, p.chunks[i], options);
    }
  }
  os << ';';
  if (options.provenance_comments && !p.provenance.empty()) {
    os << " /* delta: " << p.provenance << " */";
  }
}

void print_node_impl(std::ostringstream& os, const Node& node, int depth,
                     const PrintOptions& options) {
  std::string pad(static_cast<size_t>(depth) * options.indent, ' ');
  os << pad;
  for (support::Atom label : node.labels()) os << label << ": ";
  os << node.name() << " {";
  if (options.provenance_comments && !node.provenance().empty()) {
    os << " /* delta: " << node.provenance() << " */";
  }
  os << '\n';
  std::string inner_pad(static_cast<size_t>(depth + 1) * options.indent, ' ');
  for (const Property& p : node.properties()) {
    os << inner_pad;
    print_property_impl(os, p, options);
    os << '\n';
  }
  if (!node.properties().empty() && !node.children().empty()) os << '\n';
  for (size_t i = 0; i < node.children().size(); ++i) {
    if (i > 0) os << '\n';
    print_node_impl(os, *node.children()[i], depth + 1, options);
  }
  os << pad << "};\n";
}

}  // namespace

std::string print_property(const Property& property,
                           const PrintOptions& options) {
  std::ostringstream os;
  print_property_impl(os, property, options);
  return os.str();
}

std::string print_node(const Node& node, int depth, const PrintOptions& options) {
  std::ostringstream os;
  print_node_impl(os, node, depth, options);
  return os.str();
}

std::string print_dts(const Tree& tree, const PrintOptions& options) {
  std::ostringstream os;
  if (options.emit_version_header) os << "/dts-v1/;\n\n";
  for (const MemReserve& mr : tree.memreserves()) {
    os << "/memreserve/ " << support::hex(mr.address) << ' '
       << support::hex(mr.size) << ";\n";
  }
  print_node_impl(os, tree.root(), 0, options);
  return os.str();
}

}  // namespace llhsc::dts

#include "dts/tree.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>

#include "support/strings.hpp"

namespace llhsc::dts {

// ---- Property ----

Property Property::boolean(Atom name) {
  Property p;
  p.name = name;
  return p;
}

Property Property::cells(Atom name, std::vector<uint64_t> values) {
  Property p;
  p.name = name;
  std::vector<Cell> cs;
  cs.reserve(values.size());
  for (uint64_t v : values) cs.push_back(Cell::literal(v));
  p.chunks.push_back(Chunk::make_cells(std::move(cs)));
  return p;
}

Property Property::string(Atom name, Atom value) {
  Property p;
  p.name = name;
  p.chunks.push_back(Chunk::make_string(value));
  return p;
}

Property Property::strings(Atom name, std::vector<std::string> values) {
  Property p;
  p.name = name;
  for (auto& v : values) p.chunks.push_back(Chunk::make_string(v));
  return p;
}

std::optional<std::vector<uint64_t>> Property::as_cells() const {
  std::vector<uint64_t> out;
  for (const Chunk& c : chunks) {
    if (c.kind != ChunkKind::kCells) return std::nullopt;
    for (const Cell& cell : c.cells) {
      if (cell.is_ref) return std::nullopt;
      out.push_back(cell.value);
    }
  }
  if (chunks.empty()) return std::nullopt;
  return out;
}

std::optional<std::string> Property::as_string() const {
  if (chunks.size() != 1 || chunks[0].kind != ChunkKind::kString) {
    return std::nullopt;
  }
  return chunks[0].text.str();
}

std::optional<std::vector<std::string>> Property::as_string_list() const {
  if (chunks.empty()) return std::nullopt;
  std::vector<std::string> out;
  for (const Chunk& c : chunks) {
    if (c.kind != ChunkKind::kString) return std::nullopt;
    out.push_back(c.text.str());
  }
  return out;
}

std::optional<uint32_t> Property::as_u32() const {
  auto cells = as_cells();
  if (!cells || cells->size() != 1 || (*cells)[0] > UINT32_MAX) {
    return std::nullopt;
  }
  return static_cast<uint32_t>((*cells)[0]);
}

// ---- Node ----

std::string_view Node::base_name() const {
  std::string_view n = name_.view();
  size_t at = n.find('@');
  return at == std::string_view::npos ? n : n.substr(0, at);
}

std::string_view Node::unit_address() const {
  std::string_view n = name_.view();
  size_t at = n.find('@');
  return at == std::string_view::npos ? std::string_view{} : n.substr(at + 1);
}

const Property* Node::find_property(std::string_view name) const {
  for (const Property& p : properties_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

Property* Node::find_property(std::string_view name) {
  return const_cast<Property*>(std::as_const(*this).find_property(name));
}

Property& Node::set_property(Property p) {
  for (Property& existing : properties_) {
    if (existing.name == p.name) {
      existing = std::move(p);
      return existing;
    }
  }
  properties_.push_back(std::move(p));
  return properties_.back();
}

bool Node::remove_property(std::string_view name) {
  auto it = std::find_if(properties_.begin(), properties_.end(),
                         [&](const Property& p) { return p.name == name; });
  if (it == properties_.end()) return false;
  properties_.erase(it);
  return true;
}

const Node* Node::find_child(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

Node* Node::find_child(std::string_view name) {
  return const_cast<Node*>(std::as_const(*this).find_child(name));
}

Node* Node::find_child_fuzzy(std::string_view name) {
  if (Node* exact = find_child(name)) return exact;
  Node* match = nullptr;
  for (const auto& c : children_) {
    if (c->base_name() == name) {
      if (match != nullptr) return nullptr;  // ambiguous
      match = c.get();
    }
  }
  return match;
}

Node& Node::add_child(std::unique_ptr<Node> child) {
  assert(child != nullptr);
  children_.push_back(std::move(child));
  return *children_.back();
}

Node& Node::get_or_create_child(std::string_view name) {
  if (Node* existing = find_child(name)) return *existing;
  return add_child(std::make_unique<Node>(Atom(name)));
}

bool Node::remove_child(std::string_view name) {
  auto it = std::find_if(
      children_.begin(), children_.end(),
      [&](const std::unique_ptr<Node>& c) { return c->name() == name; });
  if (it == children_.end()) return false;
  children_.erase(it);
  return true;
}

void Node::add_label(Atom label) {
  if (std::find(labels_.begin(), labels_.end(), label) == labels_.end()) {
    labels_.push_back(label);
  }
}

void Node::merge_from(Node&& other) {
  for (Property& p : other.properties_) {
    set_property(std::move(p));
  }
  for (auto& child : other.children_) {
    if (Node* existing = find_child(child->name())) {
      existing->merge_from(std::move(*child));
    } else {
      children_.push_back(std::move(child));
    }
  }
  for (Atom l : other.labels_) add_label(l);
  if (!other.provenance_.empty()) provenance_ = other.provenance_;
}

std::unique_ptr<Node> Node::clone() const {
  auto out = std::make_unique<Node>(name_);
  out->properties_ = properties_;
  out->labels_ = labels_;
  out->location_ = location_;
  out->provenance_ = provenance_;
  out->children_.reserve(children_.size());
  for (const auto& c : children_) out->children_.push_back(c->clone());
  return out;
}

uint32_t Node::address_cells_or_default() const {
  const Property* p = find_property("#address-cells");
  if (p) {
    if (auto v = p->as_u32()) return *v;
  }
  return 2;  // DT spec v0.4 §2.3.5 default
}

uint32_t Node::size_cells_or_default() const {
  const Property* p = find_property("#size-cells");
  if (p) {
    if (auto v = p->as_u32()) return *v;
  }
  return 1;  // DT spec v0.4 §2.3.5 default
}

size_t Node::subtree_size() const {
  size_t n = 1;
  for (const auto& c : children_) n += c->subtree_size();
  return n;
}

// ---- Tree ----

Node* Tree::find(std::string_view path) {
  return const_cast<Node*>(std::as_const(*this).find(path));
}

const Node* Tree::find(std::string_view path) const {
  if (path.empty() || path[0] != '/') return nullptr;
  const Node* cur = root_.get();
  size_t pos = 1;
  while (pos < path.size()) {
    size_t next = path.find('/', pos);
    std::string_view segment = path.substr(
        pos, next == std::string_view::npos ? std::string_view::npos : next - pos);
    if (segment.empty()) break;
    const Node* child =
        const_cast<Node*>(cur)->find_child_fuzzy(segment);
    if (child == nullptr) return nullptr;
    cur = child;
    if (next == std::string_view::npos) break;
    pos = next + 1;
  }
  return cur;
}

Node* Tree::find_label(std::string_view label) {
  Node* found = nullptr;
  visit([&](const std::string&, Node& n) {
    if (found != nullptr) return;
    for (Atom l : n.labels()) {
      if (l == label) {
        found = &n;
        return;
      }
    }
  });
  return found;
}

std::pair<uint32_t, uint32_t> Tree::applicable_cells(
    std::string_view path) const {
  uint32_t ac = 2, sc = 1;  // DT spec v0.4 defaults
  if (path.empty() || path[0] != '/') return {ac, sc};
  const Node* cur = root_.get();
  size_t pos = 1;
  // Walk every ancestor of the target (excluding the target itself), letting
  // deeper declarations override shallower ones.
  while (true) {
    if (const Property* p = cur->find_property("#address-cells")) {
      if (auto v = p->as_u32()) ac = *v;
    }
    if (const Property* p = cur->find_property("#size-cells")) {
      if (auto v = p->as_u32()) sc = *v;
    }
    if (pos >= path.size()) break;
    size_t next = path.find('/', pos);
    std::string_view segment = path.substr(
        pos, next == std::string_view::npos ? std::string_view::npos
                                            : next - pos);
    if (segment.empty()) break;
    if (next == std::string_view::npos) break;  // segment is the target
    const Node* child = const_cast<Node*>(cur)->find_child_fuzzy(segment);
    if (child == nullptr) break;
    cur = child;
    pos = next + 1;
  }
  return {ac, sc};
}

std::string Tree::path_of(const Node& node) const {
  std::string result;
  std::function<bool(const Node&, const std::string&)> walk =
      [&](const Node& cur, const std::string& path) {
        if (&cur == &node) {
          result = path;
          return true;
        }
        for (const auto& c : cur.children()) {
          std::string child_path =
              path == "/" ? "/" + c->name() : path + "/" + c->name();
          if (walk(*c, child_path)) return true;
        }
        return false;
      };
  walk(*root_, "/");
  return result;
}

bool Tree::resolve_references(support::DiagnosticEngine& diags) {
  bool ok = true;
  // Pass 1: index every explicit phandle so auto-assignment can never alias
  // one, and diagnose the aliasing dtc rejects: two nodes carrying the same
  // explicit value, and phandle properties that are not a single u32 (which
  // assignment used to silently overwrite).
  std::map<uint32_t, std::string> explicit_phandles;  // value -> first holder
  visit([&](const std::string& path, Node& n) {
    const Property* p = n.find_property("phandle");
    if (p == nullptr) return;
    auto v = p->as_u32();
    if (!v) {
      diags.error("dts-bad-phandle",
                  "phandle property of node " + path +
                      " is not a single u32 cell",
                  p->location);
      ok = false;
      return;
    }
    auto [it, inserted] = explicit_phandles.emplace(*v, path);
    if (!inserted) {
      diags.error("dts-duplicate-phandle",
                  "phandle value " + std::to_string(*v) + " of node " + path +
                      " is already carried by " + it->second,
                  p->location);
      ok = false;
    }
  });
  uint32_t next_phandle = 1;
  auto fresh_phandle = [&] {
    while (explicit_phandles.count(next_phandle) > 0) ++next_phandle;
    return next_phandle++;
  };
  visit([&](const std::string& path, Node& n) {
    for (Property& p : n.properties()) {
      for (Chunk& chunk : p.chunks) {
        if (chunk.kind == ChunkKind::kCells) {
          for (Cell& cell : chunk.cells) {
            if (!cell.is_ref) continue;
            Node* target = find_label(cell.ref);
            if (target == nullptr) {
              diags.error("dts-unresolved-ref",
                          "unresolved reference &" + cell.ref + " in property '" +
                              p.name + "' of node " + path,
                          p.location);
              ok = false;
              continue;
            }
            const Property* ph = target->find_property("phandle");
            uint32_t phandle;
            if (ph != nullptr && ph->as_u32()) {
              phandle = *ph->as_u32();
            } else if (ph != nullptr) {
              // Malformed phandle already diagnosed in pass 1; don't make it
              // worse by overwriting the property.
              continue;
            } else {
              phandle = fresh_phandle();
              explicit_phandles.emplace(phandle, path_of(*target));
              target->set_property(Property::cells("phandle", {phandle}));
            }
            cell = Cell::literal(phandle);
          }
        } else if (chunk.kind == ChunkKind::kRef) {
          // &label outside cells expands to the full node path string.
          Node* target = find_label(chunk.text);
          if (target == nullptr) {
            diags.error("dts-unresolved-ref",
                        "unresolved reference &" + chunk.text + " in property '" +
                            p.name + "' of node " + path,
                        p.location);
            ok = false;
            continue;
          }
          chunk = Chunk::make_string(path_of(*target));
        }
      }
    }
  });
  return ok;
}

std::unique_ptr<Tree> Tree::clone() const {
  auto out = std::make_unique<Tree>();
  out->root_ = root_->clone();
  out->memreserves_ = memreserves_;
  return out;
}

}  // namespace llhsc::dts

// DeviceTree overlays (dtc -@ / /plugin/): the mainline kernel's runtime
// variability mechanism, implemented alongside the paper's delta modules so
// the two composition styles can be compared (see bench_delta and
// EXPERIMENTS.md). Supported:
//
//   /dts-v1/;
//   /plugin/;
//   &uart0 { status = "okay"; };            // label-target sugar
//   / {
//       fragment@0 {
//           target-path = "/soc";           // or: target = <&label>;
//           __overlay__ {
//               newdev@1000 { ... };
//           };
//       };
//   };
//
// plus __symbols__ generation on base trees (label -> path), which is what
// makes label-targeted overlays resolvable against a compiled base blob.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dts/parser.hpp"
#include "dts/tree.hpp"

namespace llhsc::dts {

struct OverlayFragment {
  /// Exactly one of these identifies the target in the base tree.
  std::string target_label;
  std::string target_path;
  /// The __overlay__ body to merge into the target.
  std::unique_ptr<Node> content;
  support::SourceLocation location;
};

struct Overlay {
  std::string name;
  std::vector<OverlayFragment> fragments;
};

/// Parses an overlay source (must carry the /plugin/ directive). Label
/// references inside fragment bodies stay symbolic — they resolve against
/// the *base* tree at application time.
[[nodiscard]] std::optional<Overlay> parse_overlay(
    std::string_view source, std::string filename,
    const SourceManager& sources, support::DiagnosticEngine& diags);

/// Applies an overlay to a base tree: resolves each fragment's target
/// (label via the base tree's labels / __symbols__, or path), merges the
/// fragment content (dtc semantics), then re-resolves references so
/// cross-tree phandles connect. Fragment provenance is stamped as
/// "overlay:<name>". Returns false when any fragment failed.
bool apply_overlay(Tree& base, const Overlay& overlay,
                   support::DiagnosticEngine& diags);

/// Adds the /__symbols__ node (label -> full path) that makes a base tree
/// overlay-capable (dtc -@). Idempotent.
void add_symbols_node(Tree& tree);

}  // namespace llhsc::dts

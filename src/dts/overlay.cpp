#include "dts/overlay.hpp"

#include <functional>

#include "dts/lexer.hpp"

namespace llhsc::dts {

namespace {

/// Post-processes a node parsed from "/ { fragment@N { ... } }" form into
/// an OverlayFragment. Returns false on shape errors.
bool fragment_from_node(Node&& node, OverlayFragment& out,
                        support::DiagnosticEngine& diags) {
  out.location = node.location();
  if (const Property* target = node.find_property("target")) {
    // target = <&label>; the reference is still symbolic here.
    if (target->chunks.size() == 1 &&
        target->chunks[0].kind == ChunkKind::kCells &&
        target->chunks[0].cells.size() == 1 &&
        target->chunks[0].cells[0].is_ref) {
      out.target_label = target->chunks[0].cells[0].ref;
    } else {
      diags.error("overlay-parse",
                  "fragment target must be a single <&label> reference",
                  target->location);
      return false;
    }
  }
  if (const Property* path = node.find_property("target-path")) {
    auto s = path->as_string();
    if (!s) {
      diags.error("overlay-parse", "target-path must be a string",
                  path->location);
      return false;
    }
    out.target_path = *s;
  }
  if (out.target_label.empty() == out.target_path.empty()) {
    diags.error("overlay-parse",
                "fragment needs exactly one of target / target-path",
                node.location());
    return false;
  }
  Node* body = node.find_child("__overlay__");
  if (body == nullptr) {
    diags.error("overlay-parse", "fragment has no __overlay__ node",
                node.location());
    return false;
  }
  out.content = body->clone();
  out.content->set_name("__overlay__");
  return true;
}

}  // namespace

std::optional<Overlay> parse_overlay(std::string_view source,
                                     std::string filename,
                                     const SourceManager& sources,
                                     support::DiagnosticEngine& diags) {
  size_t errors_before = diags.error_count();
  Overlay overlay;
  overlay.name = filename;
  Lexer lexer(source, std::move(filename), diags, &sources);

  bool plugin_seen = false;
  while (true) {
    Token t = lexer.next();
    if (t.kind == TokenKind::kEnd) break;
    if (t.kind == TokenKind::kDirective) {
      if (t.text == "dts-v1") {
        Token semi = lexer.next();
        if (semi.kind != TokenKind::kSemi) {
          diags.error("overlay-parse", "expected ';' after /dts-v1/",
                      semi.location);
        }
      } else if (t.text == "plugin") {
        plugin_seen = true;
        Token semi = lexer.next();
        if (semi.kind != TokenKind::kSemi) {
          diags.error("overlay-parse", "expected ';' after /plugin/",
                      semi.location);
        }
      } else {
        diags.error("overlay-parse", "unexpected directive /" + t.text + "/",
                    t.location);
      }
      continue;
    }
    if (t.kind == TokenKind::kRef) {
      // Sugar: &label { body };  ==  one fragment targeting the label.
      Token open = lexer.next();
      if (open.kind != TokenKind::kLBrace) {
        diags.error("overlay-parse", "expected '{' after &" + t.text,
                    open.location);
        break;
      }
      Node body("__overlay__");
      parse_node_body_into(body, lexer, diags);
      Token semi = lexer.next();
      if (semi.kind != TokenKind::kSemi) {
        diags.error("overlay-parse", "expected ';' after fragment body",
                    semi.location);
      }
      OverlayFragment frag;
      frag.target_label = t.text;
      frag.location = t.location;
      frag.content = body.clone();
      overlay.fragments.push_back(std::move(frag));
      continue;
    }
    if (t.kind == TokenKind::kSlash) {
      // Explicit form: / { fragment@N { ... }; ... };
      Token open = lexer.next();
      if (open.kind != TokenKind::kLBrace) {
        diags.error("overlay-parse", "expected '{' after '/'", open.location);
        break;
      }
      Node root("/");
      parse_node_body_into(root, lexer, diags);
      Token semi = lexer.next();
      if (semi.kind != TokenKind::kSemi) {
        diags.error("overlay-parse", "expected ';' after root node",
                    semi.location);
      }
      for (const auto& child : root.children()) {
        if (child->base_name() != "fragment") {
          diags.error("overlay-parse",
                      "overlay root children must be fragment@N nodes, found '" +
                          child->name() + "'",
                      child->location());
          continue;
        }
        OverlayFragment frag;
        if (fragment_from_node(std::move(*child->clone()), frag, diags)) {
          overlay.fragments.push_back(std::move(frag));
        }
      }
      continue;
    }
    diags.error("overlay-parse", "unexpected token '" + t.text + "'",
                t.location);
    break;
  }

  if (!plugin_seen) {
    diags.error("overlay-parse", "overlay source is missing /plugin/");
  }
  if (diags.error_count() > errors_before) return std::nullopt;
  return overlay;
}

bool apply_overlay(Tree& base, const Overlay& overlay,
                   support::DiagnosticEngine& diags) {
  bool ok = true;
  for (const OverlayFragment& frag : overlay.fragments) {
    Node* target = nullptr;
    if (!frag.target_path.empty()) {
      target = base.find(frag.target_path);
    } else {
      target = base.find_label(frag.target_label);
      if (target == nullptr) {
        // Fall back to __symbols__ (compiled base blobs carry labels there).
        if (const Node* symbols = base.find("/__symbols__")) {
          if (const Property* entry =
                  symbols->find_property(frag.target_label)) {
            if (auto path = entry->as_string()) target = base.find(*path);
          }
        }
      }
    }
    if (target == nullptr) {
      diags.error("overlay-apply",
                  "cannot resolve overlay target " +
                      (frag.target_path.empty() ? "&" + frag.target_label
                                                : frag.target_path),
                  frag.location);
      ok = false;
      continue;
    }
    auto content = frag.content->clone();
    // Stamp provenance so checker findings name the overlay.
    std::function<void(Node&)> stamp = [&](Node& n) {
      n.set_provenance("overlay:" + overlay.name);
      for (Property& p : n.properties()) {
        p.provenance = "overlay:" + overlay.name;
      }
      for (const auto& c : n.children()) stamp(*c);
    };
    stamp(*content);
    content->set_name(target->name());
    target->merge_from(std::move(*content));
  }
  // Connect any symbolic references the overlay brought along.
  if (!base.resolve_references(diags)) ok = false;
  return ok;
}

void add_symbols_node(Tree& tree) {
  // Collect labels before touching the tree (visit while mutating the
  // /__symbols__ node we add would self-reference).
  std::vector<std::pair<std::string, std::string>> symbols;
  tree.visit([&](const std::string& path, const Node& node) {
    if (path == "/__symbols__") return;
    for (support::Atom label : node.labels()) {
      symbols.emplace_back(label.str(), path);
    }
  });
  Node& sym = tree.root().get_or_create_child("__symbols__");
  for (auto& [label, path] : symbols) {
    sym.set_property(Property::string(label, path));
  }
}

}  // namespace llhsc::dts

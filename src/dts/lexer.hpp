// Lexer for the DeviceTree source (DTS) language, dtc-compatible for the
// constructs llhsc consumes: nodes, properties, labels, references, cell
// lists with C-style integer expressions, byte strings, strings, and the
// /dts-v1/, /memreserve/, /delete-node/, /delete-property/ directives.
// Comments (// and /* */) are skipped.
//
// /include/ "file" is handled here, textually, exactly as dtc does: the
// included buffer is spliced into the token stream at the directive site, so
// includes are legal anywhere (the paper's Listing 1 includes "cpus.dtsi"
// inside the root node body).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/diagnostics.hpp"

namespace llhsc::dts {

class SourceManager;  // parser.hpp; lexer only needs load()

enum class TokenKind : uint8_t {
  kEnd,
  kLBrace,      // {
  kRBrace,      // }
  kSemi,        // ;
  kLAngle,      // <
  kRAngle,      // >
  kLBracket,    // [
  kRBracket,    // ]
  kLParen,      // (
  kRParen,      // )
  kEquals,      // =
  kComma,       // ,
  kSlash,       // / (root node)
  kIdent,       // node/property name (may contain @ # , . _ + - ?)
  kLabel,       // ident:
  kRef,         // &label or &{/path}
  kString,      // "..."
  kInt,         // integer literal
  kDirective,   // /dts-v1/ /memreserve/ /delete-node/ /delete-property/
  kArith,       // + - * % << >> | & ^ ~ (inside expressions)
};

/// Trivially copyable: `text` is an interned atom (ident names, string
/// payloads and directives repeat massively across a corpus) and the
/// location's file name is interned too, so producing and copying tokens
/// allocates nothing.
struct Token {
  TokenKind kind = TokenKind::kEnd;
  support::Atom text;     // raw text (ident name, string payload, directive)
  uint64_t value = 0;     // kInt
  support::SourceLocation location;
};

class Lexer {
 public:
  /// Without a SourceManager, /include/ directives are reported as errors.
  Lexer(std::string_view source, std::string filename,
        support::DiagnosticEngine& diags,
        const SourceManager* sources = nullptr, int max_include_depth = 32);

  /// Returns the next token, advancing. kEnd is sticky.
  Token next();
  /// One-token lookahead.
  [[nodiscard]] const Token& peek();

  /// Lexes the remainder as a token vector (testing convenience).
  std::vector<Token> tokenize_all();

 private:
  struct Buffer {
    // Heap-allocated storage for included files: `src` views into it, and the
    // indirection keeps the view stable when buffers_ reallocates.
    std::unique_ptr<std::string> owned;
    std::string_view src;
    support::Atom filename;  // interned once, so here() allocates nothing
    size_t pos = 0;
    uint32_t line = 1;
    uint32_t column = 1;
  };

  void skip_trivia();
  Token lex_token();
  Token make(TokenKind kind, support::Atom text = {});
  /// Advances while `pred(cur())` holds inside the current buffer and returns
  /// the consumed span as a view into the buffer (no copy).
  template <typename Pred>
  std::string_view take_while(Pred pred);
  void handle_include(const support::SourceLocation& loc);
  [[nodiscard]] Buffer& top() { return buffers_.back(); }
  [[nodiscard]] char cur() const;
  [[nodiscard]] char ahead(size_t n = 1) const;
  void advance();
  [[nodiscard]] support::SourceLocation here() const;
  [[nodiscard]] bool at_end_of_buffer() const;

  std::vector<Buffer> buffers_;
  support::DiagnosticEngine* diags_;
  const SourceManager* sources_;
  int max_include_depth_;
  Token lookahead_;
  bool has_lookahead_ = false;
};

}  // namespace llhsc::dts

// DTS pretty-printer: renders a Tree back to DeviceTree source. Output is
// stable (property and child order preserved) and round-trips through the
// parser — the product-line engine emits its generated DTSs through this.
#pragma once

#include <string>

#include "dts/tree.hpp"

namespace llhsc::dts {

struct PrintOptions {
  /// Emit the /dts-v1/; header line.
  bool emit_version_header = true;
  /// Spaces per indent level.
  int indent = 4;
  /// Emit cells in hexadecimal (dtc's convention for addresses).
  bool hex_cells = true;
  /// Annotate nodes/properties carrying provenance with a trailing comment
  /// naming the delta module that produced them.
  bool provenance_comments = false;
};

[[nodiscard]] std::string print_dts(const Tree& tree,
                                    const PrintOptions& options = {});
[[nodiscard]] std::string print_node(const Node& node, int depth = 0,
                                     const PrintOptions& options = {});
[[nodiscard]] std::string print_property(const Property& property,
                                         const PrintOptions& options = {});

}  // namespace llhsc::dts

// Chrome trace-event exporter: serialises an event stream as a JSON object
// with a "traceEvents" array, loadable in Perfetto (ui.perfetto.dev) and
// chrome://tracing. Spans become "X" (complete) events, counters become "C"
// events; see docs/observability.md for the key schema.
#pragma once

#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace llhsc::obs {

[[nodiscard]] std::string chrome_trace_json(const std::vector<Event>& events);

/// Writes chrome_trace_json(events) to `path`; false on I/O failure.
bool write_chrome_trace(const std::string& path,
                        const std::vector<Event>& events);

}  // namespace llhsc::obs

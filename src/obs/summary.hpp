// The aggregated-summary reduction over a raw event stream. This is the
// single source behind every numeric observability surface: core::
// PipelineTrace rows, `check --stats`, and the daemon's per-check counters
// are all built from `reduce()` output (asserted by tests/obs/obs_test.cpp),
// so the CLI and the daemon cannot disagree by construction.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"

namespace llhsc::obs {

/// One row per span in category "stage" (name "stage.<x>"), in stream
/// order. Counter attribution assumes at most one stage span per
/// (unit, stage) pair within the reduced stream — true for a pipeline
/// unit's stream and for a single check request.
struct StageSummary {
  std::string unit;
  std::string stage;
  double wall_ms = 0.0;
  size_t findings = 0;          // "stage.findings" counters in this scope
  uint64_t solver_checks = 0;   // "solver.checks"
  uint64_t queries_issued = 0;  // "planner.queries_issued"
  uint64_t queries_pruned = 0;  // "planner.queries_pruned"
  uint64_t cache_hits = 0;      // "planner.cache_hits"
  uint64_t cache_errors = 0;    // "planner.cache_errors"
};

struct Summary {
  std::vector<StageSummary> stages;

  /// Stream-wide counter totals by name.
  std::map<std::string, int64_t, std::less<>> counters;

  /// Counter total restricted to events recorded under `scope`.
  [[nodiscard]] int64_t scoped(std::string_view scope,
                               std::string_view name) const;
  /// Stream-wide total for `name` (0 when never recorded).
  [[nodiscard]] int64_t counter(std::string_view name) const;

  /// (unit, scope, name) -> total; the finest attribution the reduction
  /// keeps. Exposed so tests can assert the reduction against the raw
  /// stream without re-implementing it.
  std::map<std::string, int64_t, std::less<>> scoped_counters;

  /// The internal attribution key ('\x1f'-joined, no ambiguity: unit and
  /// scope names never contain control bytes).
  [[nodiscard]] static std::string key(std::string_view unit,
                                       std::string_view scope,
                                       std::string_view name);
};

[[nodiscard]] Summary reduce(const std::vector<Event>& events);

}  // namespace llhsc::obs

#include "obs/summary.hpp"

namespace llhsc::obs {

namespace {

constexpr char kSep = '\x1f';
constexpr std::string_view kStagePrefix = "stage.";

uint64_t non_negative(int64_t v) {
  return v > 0 ? static_cast<uint64_t>(v) : 0;
}

}  // namespace

std::string Summary::key(std::string_view unit, std::string_view scope,
                         std::string_view name) {
  std::string k;
  k.reserve(unit.size() + scope.size() + name.size() + 2);
  k.append(unit);
  k.push_back(kSep);
  k.append(scope);
  k.push_back(kSep);
  k.append(name);
  return k;
}

int64_t Summary::scoped(std::string_view scope, std::string_view name) const {
  int64_t total = 0;
  for (const auto& [k, v] : scoped_counters) {
    const size_t first = k.find(kSep);
    const size_t second = k.find(kSep, first + 1);
    std::string_view key_view(k);
    if (key_view.substr(first + 1, second - first - 1) == scope &&
        key_view.substr(second + 1) == name) {
      total += v;
    }
  }
  return total;
}

int64_t Summary::counter(std::string_view name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

Summary reduce(const std::vector<Event>& events) {
  Summary out;
  for (const Event& e : events) {
    if (e.kind == Event::Kind::kCounter) {
      out.counters[e.name] += e.delta;
      out.scoped_counters[Summary::key(e.unit, e.scope, e.name)] += e.delta;
      continue;
    }
    if (e.category == "stage" && e.name.starts_with(kStagePrefix)) {
      StageSummary row;
      row.unit = e.unit;
      row.stage = e.name.substr(kStagePrefix.size());
      row.wall_ms = static_cast<double>(e.dur_us) / 1000.0;
      out.stages.push_back(std::move(row));
    }
  }
  for (StageSummary& row : out.stages) {
    auto total = [&](const char* name) {
      auto it = out.scoped_counters.find(Summary::key(row.unit, row.stage, name));
      return it == out.scoped_counters.end() ? int64_t{0} : it->second;
    };
    row.findings = static_cast<size_t>(non_negative(total("stage.findings")));
    row.solver_checks = non_negative(total("solver.checks"));
    row.queries_issued = non_negative(total("planner.queries_issued"));
    row.queries_pruned = non_negative(total("planner.queries_pruned"));
    row.cache_hits = non_negative(total("planner.cache_hits"));
    row.cache_errors = non_negative(total("planner.cache_errors"));
  }
  return out;
}

}  // namespace llhsc::obs

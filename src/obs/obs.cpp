#include "obs/obs.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

namespace llhsc::obs {

namespace {

std::atomic<bool> g_span_capture{true};
std::atomic<uint64_t> g_next_seq{0};
std::atomic<uint64_t> g_next_tid{1};

using Clock = std::chrono::steady_clock;

Clock::time_point process_epoch() {
  // First use wins; every sink measures against the same zero, so event
  // streams from different sinks (pipeline units, daemon requests) merge by
  // concatenation without timestamp translation.
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

struct ThreadContext {
  TraceSink* sink = nullptr;
  std::string unit;
  std::string scope;
};

ThreadContext& context() {
  thread_local ThreadContext ctx;
  return ctx;
}

}  // namespace

void set_enabled(bool on) {
  g_span_capture.store(on, std::memory_order_relaxed);
}

bool enabled() { return g_span_capture.load(std::memory_order_relaxed); }

uint64_t now_us() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            process_epoch())
          .count());
}

uint64_t thread_id() {
  thread_local const uint64_t id =
      g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void TraceSink::record(Event e) {
  Shard& shard = shards_[thread_id() % kShardCount];
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.events.push_back(std::move(e));
}

void TraceSink::extend(std::vector<Event> events) {
  if (events.empty()) return;
  Shard& shard = shards_[thread_id() % kShardCount];
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.events.insert(shard.events.end(),
                      std::make_move_iterator(events.begin()),
                      std::make_move_iterator(events.end()));
}

std::vector<Event> TraceSink::snapshot() const {
  std::vector<Event> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    out.insert(out.end(), shard.events.begin(), shard.events.end());
  }
  std::stable_sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    return a.ts_us != b.ts_us ? a.ts_us < b.ts_us : a.seq < b.seq;
  });
  return out;
}

std::vector<Event> TraceSink::take() {
  std::vector<Event> out;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    out.insert(out.end(), std::make_move_iterator(shard.events.begin()),
               std::make_move_iterator(shard.events.end()));
    shard.events.clear();
  }
  std::stable_sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    return a.ts_us != b.ts_us ? a.ts_us < b.ts_us : a.seq < b.seq;
  });
  return out;
}

TraceSink* current_sink() { return context().sink; }

const std::string& current_unit() { return context().unit; }

const std::string& current_scope() { return context().scope; }

ScopedSink::ScopedSink(TraceSink* sink) : prev_(context().sink) {
  context().sink = sink;
}

ScopedSink::~ScopedSink() { context().sink = prev_; }

ScopedUnit::ScopedUnit(std::string unit) : prev_(std::move(context().unit)) {
  context().unit = std::move(unit);
}

ScopedUnit::~ScopedUnit() { context().unit = std::move(prev_); }

ScopedScope::ScopedScope(std::string scope)
    : prev_(std::move(context().scope)) {
  context().scope = std::move(scope);
}

ScopedScope::~ScopedScope() { context().scope = std::move(prev_); }

Span::Span(const char* name, const char* category) {
  if (!enabled()) return;
  sink_ = context().sink;
  if (sink_ == nullptr) return;
  name_ = name;
  category_ = category;
  start_us_ = now_us();
}

void Span::arg(const char* key, std::string value) {
  if (sink_ == nullptr) return;
  args_.emplace_back(key, std::move(value));
}

Span::~Span() {
  if (sink_ == nullptr) return;
  const uint64_t end_us = now_us();
  Event e;
  e.kind = Event::Kind::kSpan;
  e.name = name_;
  e.category = category_;
  e.unit = context().unit;
  e.scope = context().scope;
  e.tid = thread_id();
  e.ts_us = start_us_;
  e.dur_us = end_us - start_us_;
  e.args = std::move(args_);
  e.seq = g_next_seq.fetch_add(1, std::memory_order_relaxed);
  sink_->record(std::move(e));
}

void count(const char* name, const char* category, int64_t delta) {
  if (delta == 0) return;
  TraceSink* sink = context().sink;
  if (sink == nullptr) return;
  Event e;
  e.kind = Event::Kind::kCounter;
  e.name = name;
  e.category = category;
  e.unit = context().unit;
  e.scope = context().scope;
  e.tid = thread_id();
  e.ts_us = now_us();
  e.delta = delta;
  e.seq = g_next_seq.fetch_add(1, std::memory_order_relaxed);
  sink->record(std::move(e));
}

void record_span(TraceSink& sink, const char* name, const char* category,
                 uint64_t start_us, uint64_t dur_us,
                 std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled()) return;
  Event e;
  e.kind = Event::Kind::kSpan;
  e.name = name;
  e.category = category;
  e.unit = context().unit;
  e.scope = context().scope;
  e.tid = thread_id();
  e.ts_us = start_us;
  e.dur_us = dur_us;
  e.args = std::move(args);
  e.seq = g_next_seq.fetch_add(1, std::memory_order_relaxed);
  sink.record(std::move(e));
}

}  // namespace llhsc::obs

#include "obs/chrome_trace.hpp"

#include <fstream>

#include "support/json.hpp"

namespace llhsc::obs {

using support::Json;

std::string chrome_trace_json(const std::vector<Event>& events) {
  Json trace_events = Json::array();
  for (const Event& e : events) {
    Json ev = Json::object();
    ev.set("name", Json::string(e.name));
    ev.set("cat", Json::string(e.category));
    ev.set("ph", Json::string(e.kind == Event::Kind::kSpan ? "X" : "C"));
    ev.set("ts", Json::unsigned_integer(e.ts_us));
    if (e.kind == Event::Kind::kSpan) {
      ev.set("dur", Json::unsigned_integer(e.dur_us));
    }
    ev.set("pid", Json::integer(1));
    ev.set("tid", Json::unsigned_integer(e.tid));
    Json args = Json::object();
    if (e.kind == Event::Kind::kCounter) {
      // The counter's own name keys its value, so Perfetto plots one
      // series per counter.
      args.set(e.name, Json::integer(e.delta));
    }
    if (!e.unit.empty()) args.set("unit", Json::string(e.unit));
    if (!e.scope.empty()) args.set("scope", Json::string(e.scope));
    for (const auto& [k, v] : e.args) args.set(k, Json::string(v));
    ev.set("args", std::move(args));
    trace_events.push(std::move(ev));
  }
  Json doc = Json::object();
  doc.set("schema_version", Json::integer(1));
  doc.set("displayTimeUnit", Json::string("ms"));
  doc.set("traceEvents", std::move(trace_events));
  return doc.dump(Json::Style::kPretty) + "\n";
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<Event>& events) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << chrome_trace_json(events);
  return static_cast<bool>(out);
}

}  // namespace llhsc::obs

// Structured tracing/metrics substrate (docs/observability.md). One event
// stream feeds every observability surface: the Chrome-trace profile
// (--profile), the pipeline trace (--trace-json / --verbose), the CLI
// `check --stats` line and the daemon `stats` reply are all reductions of
// the same spans and counters, so the numbers cannot drift by construction.
//
// Two event kinds:
//   * Span    — a named timed interval (RAII `Span`, or `record_span` for
//               externally-timed intervals like daemon admission wait).
//   * Counter — a named integer delta (`count`), stamped with the ambient
//               unit/scope so reductions can attribute it to a stage.
//
// Events land in the thread-ambient `TraceSink` (installed with
// `ScopedSink`); with no sink installed, recording is a cheap no-op, so
// library code can instrument unconditionally.
//
// `set_enabled(false)` is a kill switch for *span* capture (the timing
// layer, benchmarked by tools/bench_pr5.sh). Counter events are always
// recorded: they are the accounting substrate behind check verdict counters
// and must not change with profiling preferences.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace llhsc::obs {

/// Span-capture kill switch (process global; counters are unaffected).
void set_enabled(bool on);
[[nodiscard]] bool enabled();

/// Microseconds since the process-wide steady-clock epoch. All sinks share
/// the epoch, so event streams from different sinks merge by concatenation.
[[nodiscard]] uint64_t now_us();

/// Small dense id for the calling thread (stable for the thread's life).
[[nodiscard]] uint64_t thread_id();

struct Event {
  enum class Kind : uint8_t { kSpan, kCounter };
  Kind kind = Kind::kSpan;
  std::string name;      // "stage.semantic", "solver.check", "qcache.hit" …
  std::string category;  // "stage" | "solver" | "planner" | "qcache" |
                         // "store" | "request" | "client"
  std::string unit;      // VM name, "platform", "*", or "" (ambient)
  std::string scope;     // enclosing stage name, or "" (ambient)
  uint64_t tid = 0;
  uint64_t ts_us = 0;    // event start, relative to the process epoch
  uint64_t dur_us = 0;   // spans only
  int64_t delta = 0;     // counters only
  std::vector<std::pair<std::string, std::string>> args;
  /// Global monotone sequence number; ties on ts_us sort by seq.
  uint64_t seq = 0;
};

/// An append-only event buffer. Sharded by thread id so concurrent workers
/// rarely contend on the same mutex ("lock-free enough" for per-query
/// recording); snapshots merge the shards sorted by (ts_us, seq).
class TraceSink {
 public:
  TraceSink() = default;
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  void record(Event e);
  /// Appends a batch (e.g. a nested sink's events) in one lock.
  void extend(std::vector<Event> events);

  /// All events so far, sorted by (ts_us, seq).
  [[nodiscard]] std::vector<Event> snapshot() const;
  /// Like snapshot(), but moves the events out and clears the sink.
  std::vector<Event> take();

 private:
  static constexpr size_t kShardCount = 8;
  struct Shard {
    mutable std::mutex mutex;
    std::vector<Event> events;
  };
  std::array<Shard, kShardCount> shards_;
};

/// The sink events are currently recorded into (nullptr = recording off).
[[nodiscard]] TraceSink* current_sink();
[[nodiscard]] const std::string& current_unit();
[[nodiscard]] const std::string& current_scope();

/// Installs `sink` as the calling thread's recording target (RAII; restores
/// the previous sink on destruction, so sinks nest).
class ScopedSink {
 public:
  explicit ScopedSink(TraceSink* sink);
  ~ScopedSink();
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

 private:
  TraceSink* prev_;
};

/// Sets the ambient unit (VM name / "platform" / "*") for the thread.
class ScopedUnit {
 public:
  explicit ScopedUnit(std::string unit);
  ~ScopedUnit();
  ScopedUnit(const ScopedUnit&) = delete;
  ScopedUnit& operator=(const ScopedUnit&) = delete;

 private:
  std::string prev_;
};

/// Sets the ambient scope (stage name) for the thread.
class ScopedScope {
 public:
  explicit ScopedScope(std::string scope);
  ~ScopedScope();
  ScopedScope(const ScopedScope&) = delete;
  ScopedScope& operator=(const ScopedScope&) = delete;

 private:
  std::string prev_;
};

/// RAII span: starts timing at construction, records one kSpan event at
/// destruction. Inactive (and allocation-free) when span capture is
/// disabled or no sink is installed — check active() before building
/// expensive arg strings.
class Span {
 public:
  Span(const char* name, const char* category);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  [[nodiscard]] bool active() const { return sink_ != nullptr; }
  void arg(const char* key, std::string value);

 private:
  TraceSink* sink_ = nullptr;
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  uint64_t start_us_ = 0;
  std::vector<std::pair<std::string, std::string>> args_;
};

/// Records a counter delta into the current sink, stamped with the ambient
/// unit/scope. Zero deltas are dropped (they carry no information and would
/// make event streams input-dependent in trivial ways). Counters ignore the
/// span kill switch — see the header comment.
void count(const char* name, const char* category, int64_t delta);

/// Records an externally-timed span directly into `sink` (used for
/// intervals measured across threads, e.g. daemon admission wait). Subject
/// to the span kill switch like `Span`.
void record_span(TraceSink& sink, const char* name, const char* category,
                 uint64_t start_us, uint64_t dur_us,
                 std::vector<std::pair<std::string, std::string>> args = {});

}  // namespace llhsc::obs

#include "logic/cnf.hpp"

#include <cassert>

namespace llhsc::logic {

sat::Var CnfEncoder::sat_var(BoolVar v) {
  auto it = var_map_.find(v.index);
  if (it != var_map_.end()) return it->second;
  sat::Var sv = solver_->new_var();
  var_map_.emplace(v.index, sv);
  return sv;
}

bool CnfEncoder::model_value(BoolVar v) const {
  auto it = var_map_.find(v.index);
  if (it == var_map_.end()) return false;
  return solver_->model_bool(it->second);
}

sat::Lit CnfEncoder::encode(Formula f) {
  auto it = cache_.find(f.id());
  if (it != cache_.end()) return it->second;
  sat::Lit l = encode_node(f);
  cache_.emplace(f.id(), l);
  return l;
}

sat::Lit CnfEncoder::encode_node(Formula f) {
  using sat::Lit;
  switch (arena_->op(f)) {
    case Op::kTrue: {
      sat::Var v = solver_->new_var();
      solver_->add_clause(Lit::positive(v));
      return Lit::positive(v);
    }
    case Op::kFalse: {
      sat::Var v = solver_->new_var();
      solver_->add_clause(Lit::negative(v));
      return Lit::positive(v);
    }
    case Op::kVar:
      return Lit::positive(sat_var(arena_->var_of(f)));
    case Op::kBvAtom: {
      assert(bitvectors_ != nullptr &&
             "bit-vector atom encountered without a BvArena");
      return encode(bitvectors_->blast_atom(arena_->bv_atom(f)));
    }
    case Op::kNot:
      return ~encode(arena_->operands(f)[0]);
    case Op::kAnd: {
      // operands() spans the arena's operand pool; encoding children can
      // create new nodes (bit-vector atoms blast lazily) and reallocate the
      // pool, so copy the operand list before recursing.
      std::vector<Formula> ops(arena_->operands(f).begin(),
                               arena_->operands(f).end());
      std::vector<Lit> lits;
      lits.reserve(ops.size());
      for (Formula g : ops) lits.push_back(encode(g));
      sat::Var v = solver_->new_var();
      Lit out = Lit::positive(v);
      // out -> each lit; (all lits) -> out
      std::vector<Lit> long_clause;
      long_clause.reserve(lits.size() + 1);
      for (Lit l : lits) {
        solver_->add_clause(~out, l);
        long_clause.push_back(~l);
      }
      long_clause.push_back(out);
      solver_->add_clause(std::move(long_clause));
      return out;
    }
    case Op::kOr: {
      std::vector<Formula> ops(arena_->operands(f).begin(),
                               arena_->operands(f).end());
      std::vector<Lit> lits;
      lits.reserve(ops.size());
      for (Formula g : ops) lits.push_back(encode(g));
      sat::Var v = solver_->new_var();
      Lit out = Lit::positive(v);
      std::vector<Lit> long_clause;
      long_clause.reserve(lits.size() + 1);
      for (Lit l : lits) {
        solver_->add_clause(out, ~l);
        long_clause.push_back(l);
      }
      long_clause.push_back(~out);
      solver_->add_clause(std::move(long_clause));
      return out;
    }
    case Op::kXor: {
      auto span = arena_->operands(f);
      assert(span.size() == 2);
      Formula fa = span[0], fb = span[1];  // copy before pool reallocation
      Lit a = encode(fa);
      Lit b = encode(fb);
      sat::Var v = solver_->new_var();
      Lit out = Lit::positive(v);
      solver_->add_clause(~out, a, b);
      solver_->add_clause(~out, ~a, ~b);
      solver_->add_clause(out, ~a, b);
      solver_->add_clause(out, a, ~b);
      return out;
    }
    case Op::kImplies: {
      auto span = arena_->operands(f);
      Formula fa = span[0], fb = span[1];
      Lit a = encode(fa);
      Lit b = encode(fb);
      sat::Var v = solver_->new_var();
      Lit out = Lit::positive(v);
      solver_->add_clause(~out, ~a, b);
      solver_->add_clause(out, a);
      solver_->add_clause(out, ~b);
      return out;
    }
    case Op::kIff: {
      auto span = arena_->operands(f);
      Formula fa = span[0], fb = span[1];
      Lit a = encode(fa);
      Lit b = encode(fb);
      sat::Var v = solver_->new_var();
      Lit out = Lit::positive(v);
      solver_->add_clause(~out, ~a, b);
      solver_->add_clause(~out, a, ~b);
      solver_->add_clause(out, a, b);
      solver_->add_clause(out, ~a, ~b);
      return out;
    }
  }
  assert(false && "unreachable");
  return Lit::positive(0);
}

void CnfEncoder::assert_formula(Formula f) {
  // Top-level conjunctions assert each conjunct directly — avoids gate vars
  // for the common "big AND of axioms" shape. Copy the operand list: the
  // recursion may grow the arena's operand pool.
  if (arena_->op(f) == Op::kAnd) {
    std::vector<Formula> ops(arena_->operands(f).begin(),
                             arena_->operands(f).end());
    for (Formula g : ops) assert_formula(g);
    return;
  }
  solver_->add_clause(encode(f));
}

}  // namespace llhsc::logic

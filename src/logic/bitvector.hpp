// Bit-vector term language and bit-blaster. The paper's semantic checker
// (§IV-C) encodes memory addresses as bit-vectors which Z3 bit-blasts into
// SAT; the builtin backend does the same here: every BvTerm lowers to a
// vector of propositional formulas (LSB first) over the shared FormulaArena,
// and predicates lower to a single Formula handed to the CnfEncoder.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "logic/formula.hpp"

namespace llhsc::logic {

enum class BvOp : uint8_t {
  kConst,
  kVar,
  kAdd,
  kSub,
  kMul,
  kAnd,
  kOr,
  kXor,
  kNot,
  kShlConst,   // shift left by immediate
  kLshrConst,  // logical shift right by immediate
  kZeroExt,
  kExtract,    // [hi:lo]
  kConcat,     // hi ++ lo
  kIte,        // cond ? a : b  (cond is a Formula)
};

/// Handle into a BvArena.
class BvTerm {
 public:
  BvTerm() = default;
  [[nodiscard]] uint32_t id() const { return id_; }
  [[nodiscard]] bool valid() const { return id_ != UINT32_MAX; }
  /// Rehydrates a handle from an id previously obtained via id() (used by
  /// backends that store term ids in atoms).
  [[nodiscard]] static BvTerm from_id(uint32_t id) { return BvTerm(id); }
  friend bool operator==(BvTerm a, BvTerm b) { return a.id_ == b.id_; }
  friend bool operator!=(BvTerm a, BvTerm b) { return a.id_ != b.id_; }

 private:
  friend class BvArena;
  explicit BvTerm(uint32_t id) : id_(id) {}
  uint32_t id_ = UINT32_MAX;
};

/// Builds and bit-blasts bit-vector terms. Owns term storage; formulas for
/// blasted bits live in the FormulaArena passed at construction.
class BvArena {
 public:
  explicit BvArena(FormulaArena& formulas) : formulas_(&formulas) {}

  // -- construction --
  BvTerm bv_const(uint64_t value, uint32_t width);
  BvTerm bv_var(std::string name, uint32_t width);
  BvTerm bv_add(BvTerm a, BvTerm b);
  BvTerm bv_sub(BvTerm a, BvTerm b);
  BvTerm bv_mul(BvTerm a, BvTerm b);
  BvTerm bv_and(BvTerm a, BvTerm b);
  BvTerm bv_or(BvTerm a, BvTerm b);
  BvTerm bv_xor(BvTerm a, BvTerm b);
  BvTerm bv_not(BvTerm a);
  BvTerm bv_shl(BvTerm a, uint32_t amount);
  BvTerm bv_lshr(BvTerm a, uint32_t amount);
  BvTerm bv_zero_extend(BvTerm a, uint32_t new_width);
  BvTerm bv_extract(BvTerm a, uint32_t hi, uint32_t lo);
  BvTerm bv_concat(BvTerm hi, BvTerm lo);
  BvTerm bv_ite(Formula cond, BvTerm a, BvTerm b);

  [[nodiscard]] uint32_t width(BvTerm t) const;
  [[nodiscard]] const std::string& var_name(BvTerm t) const;

  // -- predicates --
  // These return symbolic kBvAtom leaves: the builtin backend blasts them via
  // blast_atom(); the Z3 backend maps them onto native bit-vector theory.
  [[nodiscard]] Formula eq(BvTerm a, BvTerm b);
  [[nodiscard]] Formula ne(BvTerm a, BvTerm b) {
    return formulas_->mk_not(eq(a, b));
  }
  [[nodiscard]] Formula ult(BvTerm a, BvTerm b);
  [[nodiscard]] Formula ule(BvTerm a, BvTerm b);
  [[nodiscard]] Formula ugt(BvTerm a, BvTerm b) { return ult(b, a); }
  [[nodiscard]] Formula uge(BvTerm a, BvTerm b) { return ule(b, a); }
  /// True iff unsigned a + b overflows its width.
  [[nodiscard]] Formula uadd_overflow(BvTerm a, BvTerm b);

  /// Lowers a predicate atom to a pure Boolean formula (ripple comparators /
  /// adders over blasted bits). Memoised.
  [[nodiscard]] Formula blast_atom(const BvAtom& atom);

  /// The blasted bit i (LSB = 0) of a term.
  [[nodiscard]] Formula bit(BvTerm t, uint32_t i);

  /// Reconstructs a term's value from a Boolean variable assignment
  /// (indexed by BoolVar::index). Width must be <= 64.
  [[nodiscard]] uint64_t evaluate(BvTerm t, const std::vector<bool>& assignment);

  /// Atom evaluator hook for FormulaArena::evaluate.
  [[nodiscard]] FormulaArena::AtomEvaluator atom_evaluator();

  /// The BoolVars backing bit i of a variable term (for model extraction).
  [[nodiscard]] const std::vector<BoolVar>& var_bits(BvTerm t) const;

  /// Term structure access (used by the Z3 backend's translator).
  [[nodiscard]] BvOp term_op(BvTerm t) const;
  [[nodiscard]] uint64_t const_value(BvTerm t) const;
  [[nodiscard]] BvTerm operand_a(BvTerm t) const;
  [[nodiscard]] BvTerm operand_b(BvTerm t) const;
  [[nodiscard]] uint32_t immediate(BvTerm t) const;
  [[nodiscard]] uint32_t immediate2(BvTerm t) const;
  [[nodiscard]] Formula ite_condition(BvTerm t) const;
  [[nodiscard]] size_t num_terms() const { return nodes_.size(); }

 private:
  struct Node {
    BvOp op;
    uint32_t width;
    uint64_t constant = 0;          // kConst
    uint32_t a = UINT32_MAX;        // operand ids
    uint32_t b = UINT32_MAX;
    uint32_t imm = 0;               // shift amount / extract lo
    uint32_t imm2 = 0;              // extract hi
    Formula cond;                   // kIte
    std::string name;               // kVar
    std::vector<BoolVar> bits_vars; // kVar: backing BoolVars
  };

  const std::vector<Formula>& blast(BvTerm t);
  std::vector<Formula> blast_node(const Node& n);

  FormulaArena* formulas_;
  std::vector<Node> nodes_;
  std::unordered_map<uint32_t, std::vector<Formula>> blasted_;
  struct AtomKey {
    BvPred pred;
    uint32_t a;
    uint32_t b;
    friend bool operator==(const AtomKey&, const AtomKey&) = default;
  };
  std::vector<std::pair<AtomKey, Formula>> blasted_atoms_;
};

}  // namespace llhsc::logic

// Propositional formula layer. Formulas are hash-consed into a FormulaArena:
// structurally identical subterms share one node, so feature-model encodings
// (paper §IV-A) and schema axioms (§IV-B) stay compact, and Tseitin CNF
// conversion introduces one auxiliary SAT variable per distinct gate.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace llhsc::logic {

enum class Op : uint8_t {
  kTrue,
  kFalse,
  kVar,
  kBvAtom,   // bit-vector predicate leaf (see BvAtom)
  kNot,
  kAnd,
  kOr,
  kXor,      // n-ary parity for n>=2; binary in practice
  kImplies,  // binary
  kIff,      // binary
};

/// Bit-vector predicate kinds referenced by kBvAtom leaves. The operand ids
/// index into the companion BvArena. Keeping predicates symbolic (instead of
/// eagerly bit-blasting) lets the Z3 backend use native bit-vector theory
/// while the builtin backend blasts on demand.
enum class BvPred : uint8_t { kEq, kUlt, kUle, kUaddOverflow };

struct BvAtom {
  BvPred pred;
  uint32_t lhs_term;  // BvTerm id
  uint32_t rhs_term;  // BvTerm id
  friend bool operator==(const BvAtom&, const BvAtom&) = default;
};

/// Opaque handle into a FormulaArena. Value-semantic and cheap to copy.
class Formula {
 public:
  Formula() = default;
  [[nodiscard]] uint32_t id() const { return id_; }
  [[nodiscard]] bool valid() const { return id_ != UINT32_MAX; }
  friend bool operator==(Formula a, Formula b) { return a.id_ == b.id_; }
  friend bool operator!=(Formula a, Formula b) { return a.id_ != b.id_; }

 private:
  friend class FormulaArena;
  explicit Formula(uint32_t id) : id_(id) {}
  uint32_t id_ = UINT32_MAX;
};

/// A named Boolean variable. Arena-scoped dense index.
struct BoolVar {
  uint32_t index = UINT32_MAX;
  friend bool operator==(const BoolVar&, const BoolVar&) = default;
};

class FormulaArena {
 public:
  FormulaArena();

  // -- leaf construction --
  [[nodiscard]] Formula make_true() const { return true_; }
  [[nodiscard]] Formula make_false() const { return false_; }
  BoolVar new_bool_var(std::string name);
  [[nodiscard]] Formula var(BoolVar v);
  [[nodiscard]] const std::string& var_name(BoolVar v) const;
  [[nodiscard]] uint32_t num_bool_vars() const {
    return static_cast<uint32_t>(var_names_.size());
  }

  // -- connectives (all perform local simplification) --
  [[nodiscard]] Formula mk_not(Formula f);
  [[nodiscard]] Formula mk_and(Formula a, Formula b);
  [[nodiscard]] Formula mk_or(Formula a, Formula b);
  [[nodiscard]] Formula mk_xor(Formula a, Formula b);
  [[nodiscard]] Formula mk_implies(Formula a, Formula b);
  [[nodiscard]] Formula mk_iff(Formula a, Formula b);
  [[nodiscard]] Formula mk_ite(Formula c, Formula t, Formula e);
  [[nodiscard]] Formula mk_and(std::span<const Formula> fs);
  [[nodiscard]] Formula mk_or(std::span<const Formula> fs);
  /// Exactly-one over fs. Dispatches on arity: pairwise for small groups,
  /// sequential-counter (linear, with auxiliary variables) beyond
  /// kAtMostOnePairwiseLimit.
  [[nodiscard]] Formula mk_exactly_one(std::span<const Formula> fs);
  [[nodiscard]] Formula mk_at_most_one(std::span<const Formula> fs);
  /// The quadratic pairwise encoding, regardless of arity.
  [[nodiscard]] Formula mk_at_most_one_pairwise(std::span<const Formula> fs);
  /// Sinz's sequential-counter encoding: O(n) clauses via n-1 auxiliary
  /// "prefix contains a true" variables. Equisatisfiable and — because the
  /// auxiliaries are functionally defined — model-count preserving over the
  /// original variables.
  [[nodiscard]] Formula mk_at_most_one_sequential(std::span<const Formula> fs);

  /// Groups up to this size use the pairwise at-most-one encoding.
  static constexpr size_t kAtMostOnePairwiseLimit = 8;

  /// Interns a bit-vector predicate leaf (used by BvArena).
  [[nodiscard]] Formula mk_bv_atom(BvPred pred, uint32_t lhs_term,
                                   uint32_t rhs_term);

  // -- inspection --
  [[nodiscard]] Op op(Formula f) const;
  [[nodiscard]] BoolVar var_of(Formula f) const;
  [[nodiscard]] const BvAtom& bv_atom(Formula f) const;
  [[nodiscard]] std::span<const Formula> operands(Formula f) const;
  [[nodiscard]] size_t size() const { return nodes_.size(); }

  /// Evaluates under a full assignment (indexed by BoolVar::index).
  /// `atom_eval`, when provided, evaluates kBvAtom leaves (the BvArena
  /// supplies one); without it, atoms evaluate to false.
  using AtomEvaluator =
      std::function<bool(const BvAtom&, const std::vector<bool>&)>;
  [[nodiscard]] bool evaluate(Formula f, const std::vector<bool>& assignment,
                              const AtomEvaluator& atom_eval = {}) const;

  /// Debug rendering (s-expression style).
  [[nodiscard]] std::string to_string(Formula f) const;

 private:
  struct Node {
    Op op;
    uint32_t var = UINT32_MAX;       // for kVar
    uint32_t operands_begin = 0;     // into operand_pool_
    uint32_t operands_count = 0;
  };

  Formula intern(Op op, uint32_t var, std::span<const Formula> operands);

  std::vector<Node> nodes_;
  std::vector<Formula> operand_pool_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets_;
  std::vector<std::string> var_names_;
  std::vector<BvAtom> atoms_;
  Formula true_;
  Formula false_;
  uint32_t vars_created_ = 0;  // uniquifies auxiliary encoding variables
};

}  // namespace llhsc::logic

// Tseitin transformation from a FormulaArena DAG to CNF clauses over
// sat::Solver literals. Because formulas are hash-consed, each distinct gate
// gets exactly one auxiliary variable regardless of how many times it is
// shared, keeping the CNF linear in the DAG size.
#pragma once

#include <unordered_map>
#include <vector>

#include "logic/bitvector.hpp"
#include "logic/formula.hpp"
#include "sat/solver.hpp"

namespace llhsc::logic {

/// Bridges one FormulaArena and one sat::Solver. Stateless between calls
/// except for memoisation; asserting the same formula twice is idempotent
/// at the clause level (the gate variables are reused). When a BvArena is
/// supplied, kBvAtom leaves are bit-blasted through it; without one they are
/// rejected (feature-model workloads are purely propositional).
class CnfEncoder {
 public:
  CnfEncoder(const FormulaArena& arena, sat::Solver& solver,
             BvArena* bitvectors = nullptr)
      : arena_(&arena), solver_(&solver), bitvectors_(bitvectors) {}

  /// Returns the SAT literal equivalent to `f`, adding defining clauses.
  sat::Lit encode(Formula f);

  /// Asserts `f` as a top-level constraint.
  void assert_formula(Formula f);

  /// The SAT variable backing a Boolean formula variable (creates on demand).
  sat::Var sat_var(BoolVar v);

  /// Reads a BoolVar from the solver model after a kSat result.
  [[nodiscard]] bool model_value(BoolVar v) const;

 private:
  sat::Lit encode_node(Formula f);

  const FormulaArena* arena_;
  sat::Solver* solver_;
  BvArena* bitvectors_;
  std::unordered_map<uint32_t, sat::Lit> cache_;       // formula id -> lit
  std::unordered_map<uint32_t, sat::Var> var_map_;     // BoolVar -> sat var
};

}  // namespace llhsc::logic

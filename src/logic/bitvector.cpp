#include "logic/bitvector.hpp"

#include <cassert>

namespace llhsc::logic {

uint32_t BvArena::width(BvTerm t) const { return nodes_.at(t.id()).width; }

const std::string& BvArena::var_name(BvTerm t) const {
  const Node& n = nodes_.at(t.id());
  assert(n.op == BvOp::kVar);
  return n.name;
}

const std::vector<BoolVar>& BvArena::var_bits(BvTerm t) const {
  const Node& n = nodes_.at(t.id());
  assert(n.op == BvOp::kVar);
  return n.bits_vars;
}

BvTerm BvArena::bv_const(uint64_t value, uint32_t width) {
  assert(width >= 1 && width <= 64);
  Node n;
  n.op = BvOp::kConst;
  n.width = width;
  n.constant = width == 64 ? value : (value & ((1ULL << width) - 1));
  nodes_.push_back(std::move(n));
  return BvTerm(static_cast<uint32_t>(nodes_.size() - 1));
}

BvTerm BvArena::bv_var(std::string name, uint32_t width) {
  assert(width >= 1 && width <= 64);
  Node n;
  n.op = BvOp::kVar;
  n.width = width;
  n.name = name;
  n.bits_vars.reserve(width);
  for (uint32_t i = 0; i < width; ++i) {
    n.bits_vars.push_back(
        formulas_->new_bool_var(name + "[" + std::to_string(i) + "]"));
  }
  nodes_.push_back(std::move(n));
  return BvTerm(static_cast<uint32_t>(nodes_.size() - 1));
}

#define LLHSC_BV_BINARY(NAME, OP)                          \
  BvTerm BvArena::NAME(BvTerm a, BvTerm b) {               \
    assert(width(a) == width(b));                          \
    Node n;                                                \
    n.op = OP;                                             \
    n.width = width(a);                                    \
    n.a = a.id();                                          \
    n.b = b.id();                                          \
    nodes_.push_back(std::move(n));                        \
    return BvTerm(static_cast<uint32_t>(nodes_.size() - 1)); \
  }

LLHSC_BV_BINARY(bv_add, BvOp::kAdd)
LLHSC_BV_BINARY(bv_sub, BvOp::kSub)
LLHSC_BV_BINARY(bv_mul, BvOp::kMul)
LLHSC_BV_BINARY(bv_and, BvOp::kAnd)
LLHSC_BV_BINARY(bv_or, BvOp::kOr)
LLHSC_BV_BINARY(bv_xor, BvOp::kXor)
#undef LLHSC_BV_BINARY

BvTerm BvArena::bv_not(BvTerm a) {
  Node n;
  n.op = BvOp::kNot;
  n.width = width(a);
  n.a = a.id();
  nodes_.push_back(std::move(n));
  return BvTerm(static_cast<uint32_t>(nodes_.size() - 1));
}

BvTerm BvArena::bv_shl(BvTerm a, uint32_t amount) {
  Node n;
  n.op = BvOp::kShlConst;
  n.width = width(a);
  n.a = a.id();
  n.imm = amount;
  nodes_.push_back(std::move(n));
  return BvTerm(static_cast<uint32_t>(nodes_.size() - 1));
}

BvTerm BvArena::bv_lshr(BvTerm a, uint32_t amount) {
  Node n;
  n.op = BvOp::kLshrConst;
  n.width = width(a);
  n.a = a.id();
  n.imm = amount;
  nodes_.push_back(std::move(n));
  return BvTerm(static_cast<uint32_t>(nodes_.size() - 1));
}

BvTerm BvArena::bv_zero_extend(BvTerm a, uint32_t new_width) {
  assert(new_width >= width(a) && new_width <= 64);
  Node n;
  n.op = BvOp::kZeroExt;
  n.width = new_width;
  n.a = a.id();
  nodes_.push_back(std::move(n));
  return BvTerm(static_cast<uint32_t>(nodes_.size() - 1));
}

BvTerm BvArena::bv_extract(BvTerm a, uint32_t hi, uint32_t lo) {
  assert(hi >= lo && hi < width(a));
  Node n;
  n.op = BvOp::kExtract;
  n.width = hi - lo + 1;
  n.a = a.id();
  n.imm = lo;
  n.imm2 = hi;
  nodes_.push_back(std::move(n));
  return BvTerm(static_cast<uint32_t>(nodes_.size() - 1));
}

BvTerm BvArena::bv_concat(BvTerm hi, BvTerm lo) {
  assert(width(hi) + width(lo) <= 64);
  Node n;
  n.op = BvOp::kConcat;
  n.width = width(hi) + width(lo);
  n.a = hi.id();
  n.b = lo.id();
  nodes_.push_back(std::move(n));
  return BvTerm(static_cast<uint32_t>(nodes_.size() - 1));
}

BvTerm BvArena::bv_ite(Formula cond, BvTerm a, BvTerm b) {
  assert(width(a) == width(b));
  Node n;
  n.op = BvOp::kIte;
  n.width = width(a);
  n.a = a.id();
  n.b = b.id();
  n.cond = cond;
  nodes_.push_back(std::move(n));
  return BvTerm(static_cast<uint32_t>(nodes_.size() - 1));
}

const std::vector<Formula>& BvArena::blast(BvTerm t) {
  auto it = blasted_.find(t.id());
  if (it != blasted_.end()) return it->second;
  // blast_node may recurse and mutate blasted_, so compute before inserting.
  std::vector<Formula> bits = blast_node(nodes_.at(t.id()));
  auto [pos, inserted] = blasted_.emplace(t.id(), std::move(bits));
  (void)inserted;
  return pos->second;
}

std::vector<Formula> BvArena::blast_node(const Node& n) {
  FormulaArena& fa = *formulas_;
  std::vector<Formula> out(n.width);
  switch (n.op) {
    case BvOp::kConst: {
      for (uint32_t i = 0; i < n.width; ++i) {
        out[i] = ((n.constant >> i) & 1) ? fa.make_true() : fa.make_false();
      }
      return out;
    }
    case BvOp::kVar: {
      for (uint32_t i = 0; i < n.width; ++i) out[i] = fa.var(n.bits_vars[i]);
      return out;
    }
    case BvOp::kAdd: {
      auto a = blast(BvTerm(n.a));
      auto b = blast(BvTerm(n.b));
      Formula carry = fa.make_false();
      for (uint32_t i = 0; i < n.width; ++i) {
        Formula s = fa.mk_xor(fa.mk_xor(a[i], b[i]), carry);
        Formula c = fa.mk_or(fa.mk_and(a[i], b[i]),
                             fa.mk_and(carry, fa.mk_xor(a[i], b[i])));
        out[i] = s;
        carry = c;
      }
      return out;
    }
    case BvOp::kSub: {
      // a - b = a + ~b + 1
      auto a = blast(BvTerm(n.a));
      auto b = blast(BvTerm(n.b));
      Formula carry = fa.make_true();
      for (uint32_t i = 0; i < n.width; ++i) {
        Formula nb = fa.mk_not(b[i]);
        Formula s = fa.mk_xor(fa.mk_xor(a[i], nb), carry);
        Formula c = fa.mk_or(fa.mk_and(a[i], nb),
                             fa.mk_and(carry, fa.mk_xor(a[i], nb)));
        out[i] = s;
        carry = c;
      }
      return out;
    }
    case BvOp::kMul: {
      // Shift-and-add multiplier.
      auto a = blast(BvTerm(n.a));
      auto b = blast(BvTerm(n.b));
      for (uint32_t i = 0; i < n.width; ++i) out[i] = fa.make_false();
      for (uint32_t i = 0; i < n.width; ++i) {
        // partial = (b[i] ? a << i : 0); out += partial
        Formula carry = fa.make_false();
        for (uint32_t j = i; j < n.width; ++j) {
          Formula p = fa.mk_and(b[i], a[j - i]);
          Formula s = fa.mk_xor(fa.mk_xor(out[j], p), carry);
          Formula c = fa.mk_or(fa.mk_and(out[j], p),
                               fa.mk_and(carry, fa.mk_xor(out[j], p)));
          out[j] = s;
          carry = c;
        }
      }
      return out;
    }
    case BvOp::kAnd: {
      auto a = blast(BvTerm(n.a));
      auto b = blast(BvTerm(n.b));
      for (uint32_t i = 0; i < n.width; ++i) out[i] = fa.mk_and(a[i], b[i]);
      return out;
    }
    case BvOp::kOr: {
      auto a = blast(BvTerm(n.a));
      auto b = blast(BvTerm(n.b));
      for (uint32_t i = 0; i < n.width; ++i) out[i] = fa.mk_or(a[i], b[i]);
      return out;
    }
    case BvOp::kXor: {
      auto a = blast(BvTerm(n.a));
      auto b = blast(BvTerm(n.b));
      for (uint32_t i = 0; i < n.width; ++i) out[i] = fa.mk_xor(a[i], b[i]);
      return out;
    }
    case BvOp::kNot: {
      auto a = blast(BvTerm(n.a));
      for (uint32_t i = 0; i < n.width; ++i) out[i] = fa.mk_not(a[i]);
      return out;
    }
    case BvOp::kShlConst: {
      auto a = blast(BvTerm(n.a));
      for (uint32_t i = 0; i < n.width; ++i) {
        out[i] = i >= n.imm ? a[i - n.imm] : fa.make_false();
      }
      return out;
    }
    case BvOp::kLshrConst: {
      auto a = blast(BvTerm(n.a));
      for (uint32_t i = 0; i < n.width; ++i) {
        out[i] = (i + n.imm) < n.width ? a[i + n.imm] : fa.make_false();
      }
      return out;
    }
    case BvOp::kZeroExt: {
      auto a = blast(BvTerm(n.a));
      for (uint32_t i = 0; i < n.width; ++i) {
        out[i] = i < a.size() ? a[i] : fa.make_false();
      }
      return out;
    }
    case BvOp::kExtract: {
      auto a = blast(BvTerm(n.a));
      for (uint32_t i = 0; i < n.width; ++i) out[i] = a[n.imm + i];
      return out;
    }
    case BvOp::kConcat: {
      auto hi = blast(BvTerm(n.a));
      auto lo = blast(BvTerm(n.b));
      for (uint32_t i = 0; i < lo.size(); ++i) out[i] = lo[i];
      for (uint32_t i = 0; i < hi.size(); ++i) out[lo.size() + i] = hi[i];
      return out;
    }
    case BvOp::kIte: {
      auto a = blast(BvTerm(n.a));
      auto b = blast(BvTerm(n.b));
      for (uint32_t i = 0; i < n.width; ++i) {
        out[i] = fa.mk_ite(n.cond, a[i], b[i]);
      }
      return out;
    }
  }
  assert(false && "unreachable");
  return out;
}

Formula BvArena::eq(BvTerm a, BvTerm b) {
  assert(width(a) == width(b));
  if (a == b) return formulas_->make_true();
  return formulas_->mk_bv_atom(BvPred::kEq, a.id(), b.id());
}

Formula BvArena::ult(BvTerm a, BvTerm b) {
  assert(width(a) == width(b));
  if (a == b) return formulas_->make_false();
  return formulas_->mk_bv_atom(BvPred::kUlt, a.id(), b.id());
}

Formula BvArena::ule(BvTerm a, BvTerm b) {
  assert(width(a) == width(b));
  if (a == b) return formulas_->make_true();
  return formulas_->mk_bv_atom(BvPred::kUle, a.id(), b.id());
}

Formula BvArena::uadd_overflow(BvTerm a, BvTerm b) {
  assert(width(a) == width(b));
  return formulas_->mk_bv_atom(BvPred::kUaddOverflow, a.id(), b.id());
}

Formula BvArena::blast_atom(const BvAtom& atom) {
  AtomKey key{atom.pred, atom.lhs_term, atom.rhs_term};
  for (const auto& [k, f] : blasted_atoms_) {
    if (k == key) return f;
  }
  FormulaArena& fa = *formulas_;
  const auto& ba = blast(BvTerm(atom.lhs_term));
  const auto& bb = blast(BvTerm(atom.rhs_term));
  assert(ba.size() == bb.size());
  Formula result = fa.make_false();
  switch (atom.pred) {
    case BvPred::kEq: {
      Formula acc = fa.make_true();
      for (size_t i = 0; i < ba.size(); ++i) {
        acc = fa.mk_and(acc, fa.mk_iff(ba[i], bb[i]));
      }
      result = acc;
      break;
    }
    case BvPred::kUlt:
    case BvPred::kUle: {
      // Ripple from LSB: lt_i = (~a_i & b_i) | (a_i<=>b_i) & lt_{i-1}.
      // For <=, seed the recurrence with true.
      Formula lt = atom.pred == BvPred::kUle ? fa.make_true() : fa.make_false();
      for (size_t i = 0; i < ba.size(); ++i) {
        Formula bit_lt = fa.mk_and(fa.mk_not(ba[i]), bb[i]);
        Formula bit_eq = fa.mk_iff(ba[i], bb[i]);
        lt = fa.mk_or(bit_lt, fa.mk_and(bit_eq, lt));
      }
      result = lt;
      break;
    }
    case BvPred::kUaddOverflow: {
      Formula carry = fa.make_false();
      for (size_t i = 0; i < ba.size(); ++i) {
        carry = fa.mk_or(fa.mk_and(ba[i], bb[i]),
                         fa.mk_and(carry, fa.mk_xor(ba[i], bb[i])));
      }
      result = carry;  // final carry-out == unsigned overflow
      break;
    }
  }
  blasted_atoms_.emplace_back(key, result);
  return result;
}

FormulaArena::AtomEvaluator BvArena::atom_evaluator() {
  return [this](const BvAtom& atom, const std::vector<bool>& assignment) {
    uint64_t a = evaluate(BvTerm(atom.lhs_term), assignment);
    uint64_t b = evaluate(BvTerm(atom.rhs_term), assignment);
    switch (atom.pred) {
      case BvPred::kEq: return a == b;
      case BvPred::kUlt: return a < b;
      case BvPred::kUle: return a <= b;
      case BvPred::kUaddOverflow: {
        uint32_t w = width(BvTerm(atom.lhs_term));
        unsigned __int128 sum =
            static_cast<unsigned __int128>(a) + static_cast<unsigned __int128>(b);
        return w == 64 ? sum > UINT64_MAX : sum >= (1ULL << w);
      }
    }
    return false;
  };
}

Formula BvArena::bit(BvTerm t, uint32_t i) {
  const auto& bits = blast(t);
  assert(i < bits.size());
  return bits[i];
}

uint64_t BvArena::evaluate(BvTerm t, const std::vector<bool>& assignment) {
  const auto& bits = blast(t);
  // ite conditions inside a term may themselves contain predicate atoms, so
  // thread the atom evaluator through (the term DAG is acyclic by
  // construction, which bounds the recursion).
  auto ae = atom_evaluator();
  uint64_t value = 0;
  for (size_t i = 0; i < bits.size(); ++i) {
    if (formulas_->evaluate(bits[i], assignment, ae)) value |= 1ULL << i;
  }
  return value;
}

BvOp BvArena::term_op(BvTerm t) const { return nodes_.at(t.id()).op; }
uint64_t BvArena::const_value(BvTerm t) const {
  assert(term_op(t) == BvOp::kConst);
  return nodes_.at(t.id()).constant;
}
BvTerm BvArena::operand_a(BvTerm t) const { return BvTerm(nodes_.at(t.id()).a); }
BvTerm BvArena::operand_b(BvTerm t) const { return BvTerm(nodes_.at(t.id()).b); }
uint32_t BvArena::immediate(BvTerm t) const { return nodes_.at(t.id()).imm; }
uint32_t BvArena::immediate2(BvTerm t) const { return nodes_.at(t.id()).imm2; }
Formula BvArena::ite_condition(BvTerm t) const { return nodes_.at(t.id()).cond; }

}  // namespace llhsc::logic

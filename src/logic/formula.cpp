#include "logic/formula.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace llhsc::logic {

namespace {
uint64_t hash_node(Op op, uint32_t var, std::span<const Formula> operands) {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ static_cast<uint64_t>(op);
  h = h * 0x100000001b3ULL ^ var;
  for (Formula f : operands) {
    h = h * 0x100000001b3ULL ^ f.id();
  }
  return h;
}
}  // namespace

FormulaArena::FormulaArena() {
  true_ = intern(Op::kTrue, UINT32_MAX, {});
  false_ = intern(Op::kFalse, UINT32_MAX, {});
}

Formula FormulaArena::intern(Op op, uint32_t var,
                             std::span<const Formula> operands) {
  uint64_t h = hash_node(op, var, operands);
  auto& bucket = buckets_[h];
  for (uint32_t id : bucket) {
    const Node& n = nodes_[id];
    if (n.op != op || n.var != var || n.operands_count != operands.size()) continue;
    bool same = true;
    for (size_t i = 0; i < operands.size(); ++i) {
      if (operand_pool_[n.operands_begin + i] != operands[i]) {
        same = false;
        break;
      }
    }
    if (same) return Formula(id);
  }
  Node n;
  n.op = op;
  n.var = var;
  n.operands_begin = static_cast<uint32_t>(operand_pool_.size());
  n.operands_count = static_cast<uint32_t>(operands.size());
  operand_pool_.insert(operand_pool_.end(), operands.begin(), operands.end());
  uint32_t id = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(n);
  bucket.push_back(id);
  return Formula(id);
}

BoolVar FormulaArena::new_bool_var(std::string name) {
  BoolVar v{static_cast<uint32_t>(var_names_.size())};
  var_names_.push_back(std::move(name));
  return v;
}

Formula FormulaArena::var(BoolVar v) {
  assert(v.index < var_names_.size());
  return intern(Op::kVar, v.index, {});
}

const std::string& FormulaArena::var_name(BoolVar v) const {
  return var_names_.at(v.index);
}

Formula FormulaArena::mk_not(Formula f) {
  if (f == true_) return false_;
  if (f == false_) return true_;
  if (op(f) == Op::kNot) return operands(f)[0];  // double negation
  Formula ops[1] = {f};
  return intern(Op::kNot, UINT32_MAX, ops);
}

Formula FormulaArena::mk_and(Formula a, Formula b) {
  if (a == false_ || b == false_) return false_;
  if (a == true_) return b;
  if (b == true_) return a;
  if (a == b) return a;
  if (mk_not(a) == b) return false_;
  if (a.id() > b.id()) std::swap(a, b);  // canonical order
  Formula ops[2] = {a, b};
  return intern(Op::kAnd, UINT32_MAX, ops);
}

Formula FormulaArena::mk_or(Formula a, Formula b) {
  if (a == true_ || b == true_) return true_;
  if (a == false_) return b;
  if (b == false_) return a;
  if (a == b) return a;
  if (mk_not(a) == b) return true_;
  if (a.id() > b.id()) std::swap(a, b);
  Formula ops[2] = {a, b};
  return intern(Op::kOr, UINT32_MAX, ops);
}

Formula FormulaArena::mk_xor(Formula a, Formula b) {
  if (a == false_) return b;
  if (b == false_) return a;
  if (a == true_) return mk_not(b);
  if (b == true_) return mk_not(a);
  if (a == b) return false_;
  if (mk_not(a) == b) return true_;
  if (a.id() > b.id()) std::swap(a, b);
  Formula ops[2] = {a, b};
  return intern(Op::kXor, UINT32_MAX, ops);
}

Formula FormulaArena::mk_implies(Formula a, Formula b) {
  return mk_or(mk_not(a), b);
}

Formula FormulaArena::mk_iff(Formula a, Formula b) {
  if (a == true_) return b;
  if (b == true_) return a;
  if (a == false_) return mk_not(b);
  if (b == false_) return mk_not(a);
  if (a == b) return true_;
  if (mk_not(a) == b) return false_;
  if (a.id() > b.id()) std::swap(a, b);
  Formula ops[2] = {a, b};
  return intern(Op::kIff, UINT32_MAX, ops);
}

Formula FormulaArena::mk_ite(Formula c, Formula t, Formula e) {
  if (c == true_) return t;
  if (c == false_) return e;
  if (t == e) return t;
  return mk_or(mk_and(c, t), mk_and(mk_not(c), e));
}

Formula FormulaArena::mk_and(std::span<const Formula> fs) {
  Formula acc = true_;
  for (Formula f : fs) acc = mk_and(acc, f);
  return acc;
}

Formula FormulaArena::mk_or(std::span<const Formula> fs) {
  Formula acc = false_;
  for (Formula f : fs) acc = mk_or(acc, f);
  return acc;
}

Formula FormulaArena::mk_at_most_one_pairwise(std::span<const Formula> fs) {
  Formula acc = true_;
  for (size_t i = 0; i < fs.size(); ++i) {
    for (size_t j = i + 1; j < fs.size(); ++j) {
      acc = mk_and(acc, mk_not(mk_and(fs[i], fs[j])));
    }
  }
  return acc;
}

Formula FormulaArena::mk_at_most_one_sequential(std::span<const Formula> fs) {
  if (fs.size() <= 1) return true_;
  // s_i == "some f_0..f_i is true". Constraints:
  //   s_i <- f_i, s_i <- s_{i-1}, and ~(s_{i-1} & f_i).
  // The s_i are one-directionally constrained, so any model extends
  // uniquely once we also force s_i -> (f_i | s_{i-1}) — include both
  // directions to keep model counting exact over the original variables.
  std::vector<Formula> ops(fs.begin(), fs.end());
  Formula acc = true_;
  Formula prev = ops[0];
  for (size_t i = 1; i < ops.size(); ++i) {
    acc = mk_and(acc, mk_not(mk_and(prev, ops[i])));
    if (i + 1 < ops.size()) {
      BoolVar sv = new_bool_var("$amo" + std::to_string(vars_created_++));
      Formula s = var(sv);
      acc = mk_and(acc, mk_iff(s, mk_or(prev, ops[i])));
      prev = s;
    }
  }
  return acc;
}

Formula FormulaArena::mk_at_most_one(std::span<const Formula> fs) {
  return fs.size() <= kAtMostOnePairwiseLimit ? mk_at_most_one_pairwise(fs)
                                              : mk_at_most_one_sequential(fs);
}

Formula FormulaArena::mk_exactly_one(std::span<const Formula> fs) {
  return mk_and(mk_or(fs), mk_at_most_one(fs));
}

Formula FormulaArena::mk_bv_atom(BvPred pred, uint32_t lhs_term,
                                 uint32_t rhs_term) {
  // Encode the atom payload in `var`: index into atoms_. Interning keyed on
  // the payload so identical predicates share one node.
  for (uint32_t i = 0; i < atoms_.size(); ++i) {
    if (atoms_[i] == BvAtom{pred, lhs_term, rhs_term}) {
      return intern(Op::kBvAtom, i, {});
    }
  }
  atoms_.push_back(BvAtom{pred, lhs_term, rhs_term});
  return intern(Op::kBvAtom, static_cast<uint32_t>(atoms_.size() - 1), {});
}

const BvAtom& FormulaArena::bv_atom(Formula f) const {
  const Node& n = nodes_.at(f.id());
  assert(n.op == Op::kBvAtom);
  return atoms_.at(n.var);
}

Op FormulaArena::op(Formula f) const { return nodes_.at(f.id()).op; }

BoolVar FormulaArena::var_of(Formula f) const {
  const Node& n = nodes_.at(f.id());
  assert(n.op == Op::kVar);
  return BoolVar{n.var};
}

std::span<const Formula> FormulaArena::operands(Formula f) const {
  const Node& n = nodes_.at(f.id());
  return {operand_pool_.data() + n.operands_begin, n.operands_count};
}

bool FormulaArena::evaluate(Formula f, const std::vector<bool>& assignment,
                            const AtomEvaluator& atom_eval) const {
  const Node& n = nodes_.at(f.id());
  switch (n.op) {
    case Op::kTrue: return true;
    case Op::kFalse: return false;
    case Op::kVar: return assignment.at(n.var);
    case Op::kBvAtom:
      return atom_eval ? atom_eval(atoms_.at(n.var), assignment) : false;
    case Op::kNot: return !evaluate(operands(f)[0], assignment, atom_eval);
    case Op::kAnd: {
      for (Formula g : operands(f)) {
        if (!evaluate(g, assignment, atom_eval)) return false;
      }
      return true;
    }
    case Op::kOr: {
      for (Formula g : operands(f)) {
        if (evaluate(g, assignment, atom_eval)) return true;
      }
      return false;
    }
    case Op::kXor: {
      bool acc = false;
      for (Formula g : operands(f)) acc ^= evaluate(g, assignment, atom_eval);
      return acc;
    }
    case Op::kImplies: {
      auto ops = operands(f);
      return !evaluate(ops[0], assignment, atom_eval) ||
             evaluate(ops[1], assignment, atom_eval);
    }
    case Op::kIff: {
      auto ops = operands(f);
      return evaluate(ops[0], assignment, atom_eval) ==
             evaluate(ops[1], assignment, atom_eval);
    }
  }
  return false;
}

std::string FormulaArena::to_string(Formula f) const {
  const Node& n = nodes_.at(f.id());
  switch (n.op) {
    case Op::kTrue: return "true";
    case Op::kFalse: return "false";
    case Op::kVar: return var_names_.at(n.var);
    case Op::kBvAtom: {
      const BvAtom& a = atoms_.at(n.var);
      const char* p = a.pred == BvPred::kEq    ? "bv="
                      : a.pred == BvPred::kUlt ? "bv<"
                      : a.pred == BvPred::kUle ? "bv<="
                                               : "bv-addo";
      std::ostringstream os;
      os << '(' << p << " t" << a.lhs_term << " t" << a.rhs_term << ')';
      return os.str();
    }
    default: break;
  }
  const char* name = "?";
  switch (n.op) {
    case Op::kNot: name = "not"; break;
    case Op::kAnd: name = "and"; break;
    case Op::kOr: name = "or"; break;
    case Op::kXor: name = "xor"; break;
    case Op::kImplies: name = "=>"; break;
    case Op::kIff: name = "<=>"; break;
    default: break;
  }
  std::ostringstream os;
  os << '(' << name;
  for (Formula g : operands(f)) os << ' ' << to_string(g);
  os << ')';
  return os.str();
}

}  // namespace llhsc::logic
